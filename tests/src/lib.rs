//! Test-support crate: shared instance builders for the integration suite.

#![forbid(unsafe_code)]

use mc2ls::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a deterministic random MC2LS instance for cross-algorithm checks.
pub fn random_problem(
    seed: u64,
    n_users: usize,
    n_facilities: usize,
    n_candidates: usize,
    k: usize,
    tau: f64,
) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = 30.0;
    let users: Vec<MovingUser> = (0..n_users)
        .map(|_| {
            let cx = rng.gen::<f64>() * span;
            let cy = rng.gen::<f64>() * span;
            let r = 1 + rng.gen_range(0..12);
            MovingUser::new(
                (0..r)
                    .map(|_| {
                        Point::new(
                            (cx + rng.gen::<f64>() * 4.0 - 2.0).clamp(0.0, span),
                            (cy + rng.gen::<f64>() * 4.0 - 2.0).clamp(0.0, span),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let site = |rng: &mut StdRng| Point::new(rng.gen::<f64>() * span, rng.gen::<f64>() * span);
    let facilities: Vec<Point> = (0..n_facilities).map(|_| site(&mut rng)).collect();
    let candidates: Vec<Point> = (0..n_candidates).map(|_| site(&mut rng)).collect();
    Problem::new(
        users,
        facilities,
        candidates,
        k,
        tau,
        Sigmoid::paper_default(),
    )
}
