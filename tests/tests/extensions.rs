//! Integration tests across the extension crates: geo-social, road-network
//! and temporal variants plugged into the calibrated datasets, plus the
//! analysis/budgeted layers over real influence sets.

use mc2ls::core::algorithms::budgeted::{solve_budgeted, solve_budgeted_exact};
use mc2ls::core::{analysis, sketch};
use mc2ls::prelude::*;
use mc2ls::roadnet::{solve_network, NetworkProblem, RoadNetwork};
use mc2ls::social::{solve_social, PropagationModel, SocialGraph, SocialProblem};
use mc2ls::temporal::{solve_temporal, TemporalProblem, TimedUser};

fn dataset() -> Dataset {
    presets::new_york_scaled(0.08).generate()
}

fn base_problem(d: &Dataset, k: usize) -> Problem {
    let (c, f) = d.sample_sites_disjoint(25, 40, 3);
    Problem::new(d.users.clone(), f, c, k, 0.6, Sigmoid::paper_default())
}

#[test]
fn social_extension_on_calibrated_dataset() {
    let d = dataset();
    let n = d.users.len();
    let p = base_problem(&d, 4);
    let graph = SocialGraph::small_world(n, 4, 0.2, (0.1, 0.6), 5);
    let sp = SocialProblem::new(
        p.clone(),
        graph,
        vec![],
        PropagationModel::IndependentCascade {
            samples: 8,
            seed: 1,
        },
    );
    let social = solve_social(&sp);
    let plain = solve(&p, Method::Iqt(IqtConfig::default()));
    // Social reach can only add to the same set's geo value.
    assert!(social.scinf >= social.geo_cinf - 1e-9);
    // Both pick k sites.
    assert_eq!(social.selected.len(), 4);
    assert_eq!(plain.solution.selected.len(), 4);
}

#[test]
fn network_variant_on_calibrated_dataset() {
    let d = dataset();
    let extent = d.extent();
    // A road grid spanning the dataset extent.
    let spacing = extent.width().max(extent.height()) / 24.0;
    let network = RoadNetwork::city_grid(25, 25, spacing, 9);
    let (c, f) = d.sample_sites_disjoint(15, 20, 3);
    let np = NetworkProblem::snap(&network, &d.users, &f, &c, 3, 0.6, Sigmoid::paper_default());
    let sol = solve_network(&network, &np);
    assert_eq!(sol.selected.len(), 3);
    assert!(sol.cinf >= 0.0);
    // The network objective never exceeds the Euclidean one's ceiling on
    // total demand (distances only grow).
    assert!(sol.cinf <= d.users.len() as f64);
}

#[test]
fn temporal_variant_from_generated_traces() {
    let traces = mc2ls::data::trajectory::TrajectoryConfig {
        n_users: 300,
        region_km: 25.0,
        slots_per_day: 3,
        days: 5,
        dwell_spread_km: 0.5,
        record_rate: 0.8,
        seed: 17,
    }
    .generate();
    let users: Vec<TimedUser> = traces.into_iter().map(TimedUser::new).collect();
    // Candidates in a grid over the region.
    let candidates: Vec<Point> = (0..9)
        .map(|i| Point::new(4.0 + (i % 3) as f64 * 8.0, 4.0 + (i / 3) as f64 * 8.0))
        .collect();
    let problem = TemporalProblem {
        users,
        facilities: vec![Point::new(12.0, 12.0)],
        candidates,
        k: 3,
        tau: 0.5,
        pf: Sigmoid::paper_default(),
        n_slots: 3,
        slot_weights: vec![0.3, 0.4, 0.3],
    };
    let sol = solve_temporal(&problem);
    assert_eq!(sol.selected.len(), 3);
    for w in sol.marginal_gains.windows(2) {
        assert!(w[0] >= w[1] - 1e-9, "temporal gains must be non-increasing");
    }
}

#[test]
fn analysis_layers_agree_with_solution() {
    let d = dataset();
    let p = base_problem(&d, 5);
    let (sets, _, _) =
        mc2ls::core::algorithms::influence_sets(&p, Method::Iqt(IqtConfig::default()));
    let sol = solve(&p, Method::Iqt(IqtConfig::default())).solution;

    let curve = analysis::coverage_curve(&sets, 5);
    assert!((curve[4] - sol.cinf).abs() < 1e-9);

    let reports = analysis::site_reports(&sets, &sol);
    assert_eq!(reports.len(), 5);
    let exclusive_total: f64 = reports.iter().map(|r| r.exclusive_weight).sum();
    assert!(exclusive_total <= sol.cinf + 1e-9);

    let demand = analysis::demand_summary(&sets);
    assert!(demand.total_addressable_weight >= sol.cinf - 1e-9);
    assert!(demand.addressable_users <= p.n_users());
}

#[test]
fn budgeted_selection_on_real_sets() {
    let d = dataset();
    let p = base_problem(&d, 5);
    let (sets, _, _) =
        mc2ls::core::algorithms::influence_sets(&p, Method::Iqt(IqtConfig::default()));
    // Costs grow with candidate id; a budget of 6 units.
    let costs: Vec<f64> = (0..sets.n_candidates())
        .map(|c| 1.0 + (c % 4) as f64)
        .collect();
    let sol = solve_budgeted(&sets, &costs, 6.0);
    let spent: f64 = sol.selected.iter().map(|&c| costs[c as usize]).sum();
    assert!(spent <= 6.0 + 1e-9);
    // Compare to the exact optimum on a trimmed instance.
    let trimmed =
        mc2ls::core::InfluenceSets::new(sets.to_nested()[..12].to_vec(), sets.f_count.clone());
    let g = solve_budgeted(&trimmed, &costs[..12], 6.0);
    let opt = solve_budgeted_exact(&trimmed, &costs[..12], 6.0);
    assert!(g.cinf >= (1.0 - (-0.5f64).exp()) * opt.cinf - 1e-9);
}

#[test]
fn sketch_greedy_close_to_exact_on_real_sets() {
    let d = dataset();
    let p = base_problem(&d, 5);
    let (sets, _, _) =
        mc2ls::core::algorithms::influence_sets(&p, Method::Iqt(IqtConfig::default()));
    let exact = mc2ls::core::greedy::select(&sets, 5);
    let approx = sketch::select_sketched(&sets, 5, 48);
    assert!(
        approx.cinf >= 0.6 * exact.cinf,
        "sketched {} vs exact {}",
        approx.cinf,
        exact.cinf
    );
}

#[test]
fn svg_scene_for_a_solved_instance() {
    let d = dataset();
    let p = base_problem(&d, 3);
    let sol = solve(&p, Method::Iqt(IqtConfig::default())).solution;
    let svg = mc2ls::viz::render_scene(&p, Some(&sol), &mc2ls::viz::RenderOptions::default());
    assert!(svg.starts_with("<svg"));
    assert_eq!(svg.matches("<polygon").count(), 3); // 3 selected diamonds
}
