//! Property-based cross-crate tests: random instances through the full
//! pipeline, checking algorithm agreement and ledger invariants.

use mc2ls::prelude::*;
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        1u64..10_000,
        5usize..40,   // users
        0usize..10,   // facilities
        2usize..10,   // candidates
        0.15f64..0.9, // tau
    )
        .prop_map(|(seed, n_u, n_f, n_c, tau)| {
            let k = 1 + (seed as usize % n_c);
            mc2ls_integration::random_problem(seed, n_u, n_f, n_c, k, tau)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn iqt_matches_baseline(p in arb_problem()) {
        let a = solve(&p, Method::Baseline);
        let b = solve(&p, Method::Iqt(IqtConfig::default()));
        prop_assert!(a.solution.equivalent(&b.solution),
            "IQT {:?} vs Baseline {:?}", b.solution.selected_sorted(), a.solution.selected_sorted());
    }

    #[test]
    fn kcifp_matches_baseline(p in arb_problem()) {
        let a = solve(&p, Method::Baseline);
        let b = solve(&p, Method::KCifp);
        prop_assert!(a.solution.equivalent(&b.solution));
    }

    #[test]
    fn iqt_pino_matches_iqt_c(p in arb_problem()) {
        let a = solve(&p, Method::Iqt(IqtConfig::iqt_c(1.5)));
        let b = solve(&p, Method::Iqt(IqtConfig::iqt_pino(2.5)));
        prop_assert!(a.solution.equivalent(&b.solution));
    }

    #[test]
    fn cinf_never_exceeds_total_demand(p in arb_problem()) {
        // cinf(G) ≤ Σ_o 1/(|F_o|+1) ≤ |Ω|.
        let report = solve(&p, Method::Iqt(IqtConfig::default()));
        prop_assert!(report.solution.cinf <= p.n_users() as f64 + 1e-9);
        prop_assert!(report.solution.cinf >= 0.0);
    }

    #[test]
    fn marginal_gains_non_increasing(p in arb_problem()) {
        let report = solve(&p, Method::Iqt(IqtConfig::default()));
        for w in report.solution.marginal_gains.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn pair_ledger_balances(p in arb_problem()) {
        for m in [Method::Baseline, Method::KCifp, Method::Iqt(IqtConfig::default())] {
            let r = solve(&p, m);
            prop_assert_eq!(
                r.stats.is_decided + r.stats.nir_decided + r.stats.ia_decided
                    + r.stats.nib_decided + r.stats.irrelevant + r.stats.verified,
                r.stats.pairs_total
            );
        }
    }
}
