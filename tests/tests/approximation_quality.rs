//! Quality guarantees: on exhaustively solvable instances the greedy
//! solution must achieve at least `(1 − 1/e)` of the exact optimum
//! (paper Theorem 2), and in practice far more.

use mc2ls::prelude::*;
use mc2ls_integration::random_problem;

const APPROX: f64 = 1.0 - 1.0 / std::f64::consts::E;

#[test]
fn greedy_meets_theorem2_bound_on_small_instances() {
    let mut worst_ratio = f64::INFINITY;
    for seed in 1..=20u64 {
        let p = random_problem(seed * 7, 40, 8, 10, 3, 0.5);
        let report = solve(&p, Method::Iqt(IqtConfig::default()));
        let (sets, _, _) =
            mc2ls::core::algorithms::influence_sets(&p, Method::Iqt(IqtConfig::default()));
        let opt = solve_exact(&sets, p.k);
        assert!(
            opt.cinf >= report.solution.cinf - 1e-9,
            "exact optimum below greedy (seed={seed})"
        );
        if opt.cinf > 0.0 {
            let ratio = report.solution.cinf / opt.cinf;
            worst_ratio = worst_ratio.min(ratio);
            assert!(
                ratio >= APPROX - 1e-9,
                "approximation bound violated: ratio={ratio} (seed={seed})"
            );
        }
    }
    // Greedy is typically near-optimal; make sure the suite would notice a
    // catastrophic regression in selection quality.
    assert!(
        worst_ratio > 0.85,
        "greedy quality collapsed: {worst_ratio}"
    );
}

#[test]
fn exact_and_greedy_agree_when_candidates_are_disjoint() {
    // Disjoint influence sets make greedy provably optimal.
    let users: Vec<MovingUser> = (0..30)
        .map(|i| {
            let cx = (i % 6) as f64 * 10.0;
            let cy = (i / 6) as f64 * 10.0;
            MovingUser::new(vec![
                Point::new(cx, cy),
                Point::new(cx + 0.2, cy + 0.1),
                Point::new(cx + 0.1, cy + 0.2),
            ])
        })
        .collect();
    // One candidate per cluster (distance 10 km apart ⇒ disjoint).
    let candidates: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 10.0, 0.1)).collect();
    let facilities = vec![Point::new(0.0, 0.2)];
    let p = Problem::new(
        users,
        facilities,
        candidates,
        3,
        0.5,
        Sigmoid::paper_default(),
    );
    let report = solve(&p, Method::Baseline);
    let (sets, _, _) = mc2ls::core::algorithms::influence_sets(&p, Method::Baseline);
    let opt = solve_exact(&sets, 3);
    assert!((report.solution.cinf - opt.cinf).abs() < 1e-9);
}

#[test]
fn increasing_k_never_decreases_cinf() {
    let p0 = random_problem(3, 80, 12, 15, 1, 0.6);
    let mut last = 0.0;
    for k in 1..=10 {
        let mut p = p0.clone();
        p.k = k;
        let report = solve(&p, Method::Iqt(IqtConfig::default()));
        assert!(
            report.solution.cinf >= last - 1e-9,
            "cinf decreased at k={k}"
        );
        last = report.solution.cinf;
    }
}

#[test]
fn more_competitors_never_increase_cinf() {
    // Adding facilities can only split demand further — provided the
    // facility sets are nested, so grow one pool by prefixes.
    let base = random_problem(11, 60, 0, 12, 4, 0.5);
    let pool = random_problem(1000, 1, 30, 1, 1, 0.5).facilities;
    let mut last = f64::INFINITY;
    for n_f in [0usize, 5, 15, 30] {
        let p = Problem::new(
            base.users.clone(),
            pool[..n_f].to_vec(),
            base.candidates.clone(),
            base.k,
            base.tau,
            Sigmoid::paper_default(),
        );
        // Use the exact optimum: it is provably monotone under nested
        // facility sets, whereas the greedy heuristic could fluctuate.
        let (sets, _, _) = mc2ls::core::algorithms::influence_sets(&p, Method::Baseline);
        let opt = solve_exact(&sets, p.k);
        assert!(
            opt.cinf <= last + 1e-9,
            "optimal cinf grew when adding competitors (|F|={n_f})"
        );
        last = opt.cinf;
    }
}

#[test]
fn raising_tau_never_increases_cinf() {
    // A stricter threshold shrinks every Ω_c and every F_o... the weight of
    // a user may *rise* when facilities lose it, so monotonicity holds for
    // the influenced-user sets, not cinf itself; check the set sizes.
    let p = random_problem(17, 70, 10, 12, 4, 0.3);
    let mut last_sizes = usize::MAX;
    for tau in [0.3, 0.5, 0.7, 0.9] {
        let mut q = p.clone();
        q.tau = tau;
        let (sets, _, _) =
            mc2ls::core::algorithms::influence_sets(&q, Method::Iqt(IqtConfig::default()));
        let covered: usize = sets
            .omega_of_set(&(0..q.n_candidates() as u32).collect::<Vec<_>>())
            .len();
        assert!(
            covered <= last_sizes,
            "coverage grew with stricter tau={tau}"
        );
        last_sizes = covered;
    }
}
