//! Cross-algorithm agreement: every solution algorithm must return the same
//! selected set and the same cinf on the same instance, because all pruning
//! is lossless. This is the workspace's strongest end-to-end invariant.

use mc2ls::prelude::*;
use mc2ls_integration::random_problem;

fn all_methods() -> Vec<Method> {
    vec![
        Method::Baseline,
        Method::KCifp,
        Method::Iqt(IqtConfig::iqt_c(2.0)),
        Method::Iqt(IqtConfig::iqt(2.0)),
        Method::Iqt(IqtConfig::iqt_pino(2.0)),
        Method::Iqt(IqtConfig::iqt_c(1.0)),
        Method::Iqt(IqtConfig::iqt(3.0)),
    ]
}

#[test]
fn all_algorithms_agree_across_seeds_and_taus() {
    for seed in 1..=8u64 {
        for tau in [0.2, 0.5, 0.7, 0.9] {
            let p = random_problem(seed, 80, 15, 15, 4, tau);
            let reference = solve(&p, Method::Baseline);
            for m in all_methods() {
                let got = solve(&p, m);
                assert!(
                    reference.solution.equivalent(&got.solution),
                    "{} diverged from Baseline (seed={seed}, tau={tau}): {:?} vs {:?}",
                    m.name(),
                    got.solution.selected_sorted(),
                    reference.solution.selected_sorted(),
                );
            }
        }
    }
}

#[test]
fn lazy_greedy_matches_standard_end_to_end() {
    for seed in 1..=6u64 {
        let p = random_problem(seed * 31, 100, 20, 25, 8, 0.6);
        let a = solve_with(&p, Method::Iqt(IqtConfig::default()), Selector::Greedy);
        let b = solve_with(&p, Method::Iqt(IqtConfig::default()), Selector::LazyGreedy);
        assert_eq!(a.solution.selected, b.solution.selected, "seed={seed}");
        assert!((a.solution.cinf - b.solution.cinf).abs() < 1e-9);
    }
}

#[test]
fn every_selector_matches_standard_end_to_end() {
    // The decremental selector (and Auto, whichever way it resolves) must
    // reproduce the rescan greedy bit for bit through the full pipeline.
    for seed in 1..=6u64 {
        let p = random_problem(seed * 17, 100, 20, 25, 8, 0.6);
        let reference = solve_with(&p, Method::Iqt(IqtConfig::default()), Selector::Greedy);
        for selector in [Selector::Decremental, Selector::Auto] {
            let got = solve_with(&p, Method::Iqt(IqtConfig::default()), selector);
            assert_eq!(
                reference.solution.selected, got.solution.selected,
                "seed={seed} selector={selector:?}"
            );
            assert_eq!(
                reference.solution.cinf.to_bits(),
                got.solution.cinf.to_bits(),
                "seed={seed} selector={selector:?}"
            );
        }
    }
}

#[test]
fn pair_accounting_balances_for_every_method() {
    let p = random_problem(99, 120, 25, 25, 5, 0.6);
    for m in all_methods() {
        let report = solve(&p, m);
        let s = report.stats;
        assert_eq!(
            s.is_decided + s.nir_decided + s.ia_decided + s.nib_decided + s.irrelevant + s.verified,
            s.pairs_total,
            "pair ledger broken for {}",
            m.name()
        );
    }
}

#[test]
fn solutions_have_k_distinct_candidates_and_consistent_cinf() {
    let p = random_problem(5, 60, 10, 12, 6, 0.5);
    for m in all_methods() {
        let report = solve(&p, m);
        let sol = &report.solution;
        assert_eq!(sol.selected.len(), 6);
        let mut uniq = sol.selected.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 6, "duplicate candidates from {}", m.name());
        let sum: f64 = sol.marginal_gains.iter().sum();
        assert!((sum - sol.cinf).abs() < 1e-9);
        // Re-evaluate the set from scratch via the influence sets.
        let (sets, _, _) = mc2ls::core::algorithms::influence_sets(&p, m);
        assert!((cinf_of_set(&sets, &sol.selected) - sol.cinf).abs() < 1e-9);
    }
}

#[test]
fn degenerate_instances_are_handled() {
    // One user, one candidate, far apart: empty influence everywhere.
    let users = vec![MovingUser::new(vec![
        Point::new(0.0, 0.0),
        Point::new(0.1, 0.0),
    ])];
    let p = Problem::new(
        users,
        vec![Point::new(500.0, 500.0)],
        vec![Point::new(900.0, 900.0)],
        1,
        0.7,
        Sigmoid::paper_default(),
    );
    for m in all_methods() {
        let report = solve(&p, m);
        assert_eq!(report.solution.selected.len(), 1);
        assert_eq!(report.solution.cinf, 0.0, "method {}", m.name());
    }
}

#[test]
fn single_position_users_under_high_tau_are_never_influenced() {
    // PF(0) = 0.5 < τ = 0.7: r = 1 users are uninfluenceable; algorithms
    // must not crash and must agree.
    let users: Vec<MovingUser> = (0..20)
        .map(|i| MovingUser::new(vec![Point::new(i as f64, 0.0)]))
        .collect();
    let p = Problem::new(
        users,
        vec![Point::new(1.0, 0.0)],
        vec![Point::new(2.0, 0.0), Point::new(3.0, 0.0)],
        1,
        0.7,
        Sigmoid::paper_default(),
    );
    for m in all_methods() {
        let report = solve(&p, m);
        assert_eq!(report.solution.cinf, 0.0, "method {}", m.name());
    }
}
