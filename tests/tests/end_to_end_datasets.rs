//! End-to-end runs on the calibrated datasets at reduced scale: the whole
//! pipeline (generate → sample sites → prune → verify → select) and the
//! qualitative properties the paper reports.

use mc2ls::prelude::*;

fn problem_from(dataset: Dataset, n_c: usize, n_f: usize, k: usize, tau: f64) -> Problem {
    let (candidates, facilities) = dataset.sample_sites_disjoint(n_c, n_f, 1234);
    Problem::new(
        dataset.users,
        facilities,
        candidates,
        k,
        tau,
        Sigmoid::paper_default(),
    )
}

#[test]
fn california_like_pipeline_end_to_end() {
    let dataset = presets::california_scaled(0.03).generate();
    let p = problem_from(dataset, 40, 80, 10, 0.7);
    let base = solve(&p, Method::Baseline);
    let iqt = solve(&p, Method::Iqt(IqtConfig::default()));
    assert!(base.solution.equivalent(&iqt.solution));
    assert!(
        iqt.solution.cinf > 0.0,
        "nobody influenced at California scale?"
    );
    // The paper: NIR prunes the vast majority of users in C.
    assert!(
        iqt.stats.nir_fraction() > 0.5,
        "NIR fraction {} too low for the uniform dataset",
        iqt.stats.nir_fraction()
    );
    // And pruning slashes verification versus Baseline.
    assert!(iqt.stats.verified * 2 < base.stats.verified);
}

#[test]
fn new_york_like_pipeline_end_to_end() {
    let dataset = presets::new_york_scaled(0.15).generate();
    let p = problem_from(dataset, 30, 60, 5, 0.7);
    let base = solve(&p, Method::Baseline);
    let iqt = solve(&p, Method::Iqt(IqtConfig::default()));
    assert!(base.solution.equivalent(&iqt.solution));
    // Skewed data weakens NIR (paper Fig. 7): it must prune less here than
    // on the California-like dataset at comparable settings.
    let cal = presets::california_scaled(0.03).generate();
    let pc = problem_from(cal, 30, 60, 5, 0.7);
    let iqt_c = solve(&pc, Method::Iqt(IqtConfig::default()));
    assert!(
        iqt.stats.nir_fraction() < iqt_c.stats.nir_fraction(),
        "NY NIR {} should trail California NIR {}",
        iqt.stats.nir_fraction(),
        iqt_c.stats.nir_fraction()
    );
}

#[test]
fn loader_roundtrip_through_solver() {
    // Synthesise a check-in file, load it, and solve on it.
    let mut lines = String::new();
    for u in 0..25 {
        let base_lat = 40.5 + (u % 5) as f64 * 0.05;
        let base_lon = -74.0 + (u / 5) as f64 * 0.05;
        for i in 0..6 {
            lines.push_str(&format!(
                "{u}\t2010-10-1{i}T10:00:00Z\t{:.5}\t{:.5}\t{}\n",
                base_lat + i as f64 * 0.002,
                base_lon + i as f64 * 0.002,
                u * 10 + i
            ));
        }
    }
    let dataset = loader::load_checkins(lines.as_bytes(), "synthetic", None, 2).unwrap();
    assert_eq!(dataset.users.len(), 25);
    let n_pois = dataset.pois.len().min(20);
    let sites = dataset.sample_sites(n_pois, 3);
    let (c, f) = sites.split_at(n_pois / 2);
    let p = Problem::new(
        dataset.users,
        f.to_vec(),
        c.to_vec(),
        3.min(c.len()),
        0.5,
        Sigmoid::paper_default(),
    );
    let report = solve(&p, Method::Iqt(IqtConfig::iqt(1.0)));
    assert_eq!(report.solution.selected.len(), p.k);
    assert!(report.solution.cinf > 0.0);
}

#[test]
fn position_resampling_experiment_protocol() {
    // The Fig. 15/16 protocol: filter users with > 12 positions, resample
    // r ∈ {4, 8, 12}; verification cost must grow with r.
    let dataset = presets::california_scaled(0.02).generate();
    let (candidates, facilities) = dataset.sample_sites_disjoint(20, 40, 5);
    let mut last_evals = 0u64;
    for r in [4usize, 8, 12] {
        let users = sampler::resample_positions(&dataset.users, 12, r, 77);
        assert!(!users.is_empty());
        let p = Problem::new(
            users,
            facilities.clone(),
            candidates.clone(),
            5,
            0.7,
            Sigmoid::paper_default(),
        );
        let report = solve(&p, Method::Iqt(IqtConfig::default()));
        assert!(
            report.stats.prob_evals >= last_evals,
            "verification cost should grow with r (r={r})"
        );
        last_evals = report.stats.prob_evals;
    }
}

#[test]
fn user_scaling_experiment_protocol() {
    // The Fig. 10 protocol: runtime-relevant work grows with |Ω|.
    let dataset = presets::california_scaled(0.03).generate();
    let (candidates, facilities) = dataset.sample_sites_disjoint(20, 40, 5);
    let mut last_pairs = 0u64;
    for frac in [0.25, 0.5, 1.0] {
        let n = (dataset.users.len() as f64 * frac) as usize;
        let users = sampler::subset_users(&dataset.users, n, 42);
        let p = Problem::new(
            users,
            facilities.clone(),
            candidates.clone(),
            5,
            0.7,
            Sigmoid::paper_default(),
        );
        let report = solve(&p, Method::Iqt(IqtConfig::default()));
        assert!(report.stats.pairs_total > last_pairs);
        last_pairs = report.stats.pairs_total;
    }
}
