//! Offline stand-in for `proptest`.
//!
//! Provides the strategy/runner surface this workspace's property tests use:
//! range and tuple strategies, `prop_map`, `prop::collection::vec`, `any`,
//! simple string patterns, the `proptest!` macro with optional
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, deliberately accepted:
//! - **no shrinking** — a failing case reports its inputs via `Debug` in the
//!   panic message but is not minimized;
//! - **deterministic seeds** — cases are derived from the test name, so runs
//!   are reproducible without a persistence file;
//! - string "regex" strategies support the `.{a,b}` shape used here, falling
//!   back to emitting the pattern itself as a literal.

#![forbid(unsafe_code)]

use rand::prelude::*;

/// A generator of values for property tests. (The real crate's value trees
/// and shrinking machinery are collapsed into plain generation.)
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMapStrategy<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

/// Strategy for any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// String-literal strategies: supports the `.{a,b}` pattern (any characters
/// except newline, length in `[a, b]`); any other pattern generates itself.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| {
                    // Mostly ASCII with occasional wider code points, like
                    // real regex-char generation exercises parsers.
                    if rng.gen_range(0u32..8) == 0 {
                        char::from_u32(rng.gen_range(0x80u32..0x2FFF)).unwrap_or('\u{FFFD}')
                    } else {
                        rng.gen_range(0x20u8..0x7F) as char
                    }
                })
                .collect()
        } else {
            (*self).to_owned()
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Vec strategy with length drawn from `range`.
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, range }
    }

    pub struct VecStrategy<S> {
        element: S,
        range: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.range.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property is violated.
        Fail(String),
        /// The inputs were unsuitable; doesn't count against the property.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

#[doc(hidden)]
pub mod macro_support {
    use super::test_runner::{Config, TestCaseError};
    use rand::{SeedableRng, StdRng};

    /// FNV-1a so each test gets a distinct but reproducible seed stream.
    fn fnv(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    pub fn run<F>(config: Config, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv(name);
        let mut rejected = 0u32;
        let mut ran = 0u32;
        let mut i = 0u64;
        while ran < config.cases {
            let mut rng = StdRng::seed_from_u64(base.wrapping_add(i));
            i += 1;
            match case(&mut rng) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < config.cases.saturating_mul(16).max(256),
                        "proptest `{name}`: too many rejected cases"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case #{ran} (seed {i}): {msg}")
                }
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! {
            cfg = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                $crate::macro_support::run($cfg, stringify!($name), |__rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), __rng); )+
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r);
    }};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(s in ".{0,16}") {
            prop_assert!(s.chars().count() <= 16);
        }
    }
}
