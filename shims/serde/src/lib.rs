//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real serde cannot be fetched. This shim keeps the exact surface the
//! workspace uses — `Serialize`/`Deserialize` traits plus the derive macros —
//! while collapsing serde's data-model machinery into a single JSON-shaped
//! [`Value`] tree. `serde_json` (also shimmed) re-exports the tree and adds
//! text encoding/decoding on top.
//!
//! The API is intentionally narrow: enough for every call site in this
//! workspace, nothing more. Swapping the real crates back in later only
//! requires deleting `crates/shims` and restoring the registry versions in
//! the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Insertion-ordered string-keyed map, mirroring `serde_json::Map` with the
/// `preserve_order` feature (the bench harness derives table column order
/// from the first row's key order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts, replacing in place (keeps the original position) like the
    /// real `preserve_order` Map.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON number: integer-preserving like the real `serde_json::Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        })
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number::Float(f))
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }

    pub fn is_u64(&self) -> bool {
        matches!(self, Number::PosInt(_))
    }

    pub fn is_i64(&self) -> bool {
        !matches!(self, Number::Float(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip repr; integral floats keep
                    // a ".0" so they re-parse as floats.
                    if x == x.trunc() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

/// The serde data model, collapsed to a JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&String> for Value {
    type Output = Value;
    fn index(&self, key: &String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render::compact(self))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the collapsed data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the collapsed data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

pub(crate) fn mismatch(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {}", type_name(got)))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // The macro instantiates identity casts (u64 as u64) too.
            #[allow(trivial_numeric_casts)]
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| mismatch("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // The macro instantiates identity casts (i64 as i64) too.
            #[allow(trivial_numeric_casts)]
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| mismatch("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| mismatch("number", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| mismatch("array", v))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".into(), self.as_secs().to_value());
        m.insert("nanos".into(), self.subsec_nanos().to_value());
        Value::Object(m)
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| mismatch("object", v))?;
        let secs = u64::from_value(obj.get("secs").unwrap_or(&Value::Null))?;
        let nanos = u32::from_value(obj.get("nanos").unwrap_or(&Value::Null))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object().cloned().ok_or_else(|| mismatch("object", v))
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| mismatch("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

pub mod parse;
pub mod render;

// Conversions mirroring `serde_json::Value: From<_>`.
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::PosInt(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        if n >= 0 {
            Value::Number(Number::PosInt(n as u64))
        } else {
            Value::Number(Number::NegInt(n))
        }
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(Number::PosInt(n as u64))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
