//! A small recursive-descent JSON parser producing [`Value`] trees.
//!
//! Handles the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, literals) with a depth limit so malformed or adversarial input
//! fails with an error instead of blowing the stack.

use crate::{Error, Map, Number, Value};

const MAX_DEPTH: usize = 128;

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let next = rest
                .iter()
                .position(|&b| b == b'"' || b == b'\\')
                .ok_or_else(|| Error::msg("unterminated string"))?;
            s.push_str(
                std::str::from_utf8(&rest[..next])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            self.pos += next;
            if self.bytes[self.pos] == b'"' {
                self.pos += 1;
                return Ok(s);
            }
            // Escape sequence.
            self.pos += 1;
            let esc = self
                .peek()
                .ok_or_else(|| Error::msg("unterminated escape"))?;
            self.pos += 1;
            match esc {
                b'"' => s.push('"'),
                b'\\' => s.push('\\'),
                b'/' => s.push('/'),
                b'b' => s.push('\u{8}'),
                b'f' => s.push('\u{c}'),
                b'n' => s.push('\n'),
                b'r' => s.push('\r'),
                b't' => s.push('\t'),
                b'u' => {
                    let hi = self.hex4()?;
                    let code = if (0xD800..0xDC00).contains(&hi) {
                        // Surrogate pair: expect \uXXXX low surrogate.
                        if self.peek() == Some(b'\\') {
                            self.pos += 1;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                        } else {
                            return Err(Error::msg("lone surrogate in string"));
                        }
                    } else {
                        hi
                    };
                    s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                other => return Err(Error::msg(format!("invalid escape '\\{}'", other as char))),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::msg(format!("invalid number at byte {start}")))
    }
}
