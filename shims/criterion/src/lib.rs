//! Offline stand-in for `criterion`.
//!
//! Supports the benchmarking surface this workspace uses — groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `sample_size`,
//! `measurement_time` — with a simple measurement loop: warm up once, then
//! time `sample_size` iterations (bounded by `measurement_time`) and print
//! the mean. No statistics, plots, or report files; good enough to compare
//! runs by eye and to keep `cargo bench` working offline.

#![forbid(unsafe_code)]
// Reporting bench timings on stdout is this shim's entire purpose.
#![allow(clippy::print_stdout)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque black box: defeats constant-folding of benchmark inputs/outputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    budget: Duration,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        let start = Instant::now();
        let mut done = 0u64;
        for _ in 0..self.iters {
            black_box(f());
            done += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.elapsed = start.elapsed() / done.max(1) as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: u64,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this shim runs a fixed number of
    /// iterations and does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size,
            budget: self.measurement_time,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: {:>12.3} ms/iter",
            self.name,
            id,
            b.elapsed.as_secs_f64() * 1000.0
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 10,
            budget: Duration::from_secs(2),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}: {:>12.3} ms/iter",
            id.id,
            b.elapsed.as_secs_f64() * 1000.0
        );
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
