//! Offline stand-in for `serde_json`.
//!
//! Re-exports the JSON-shaped data model from the shim `serde` crate (which
//! defines it so derived impls can target it without a circular dependency)
//! and adds text encoding/decoding plus the `json!` macro. Insertion order
//! of object keys is preserved, matching the real crate's `preserve_order`
//! feature that the bench harness relies on for table column order.

#![forbid(unsafe_code)]

pub use serde::{Error, Map, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::render::compact(&value.to_value()))
}

/// Pretty JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::render::pretty(&value.to_value()))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    T::from_value(&serde::parse::parse(text)?)
}

/// Builds a [`Value`] from JSON-ish syntax. Supports the shapes used in this
/// workspace: scalar expressions, arrays of expressions, and objects with
/// string-literal keys and expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}
