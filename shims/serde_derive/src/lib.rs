//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! shim `serde` crate's collapsed data model (`to_value`/`from_value`) by
//! hand-parsing the item's token stream — no `syn`/`quote`, so it builds
//! with zero dependencies in the offline environment.
//!
//! Supported shapes (everything this workspace derives):
//! - non-generic structs with named fields, honoring `#[serde(skip)]` and
//!   `#[serde(default)]`;
//! - non-generic enums with unit, one-field tuple, and struct variants,
//!   externally tagged like real serde.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item.kind {
        ItemKind::Struct(fields) => struct_serialize(&item.name, fields),
        ItemKind::Enum(variants) => enum_serialize(&item.name, variants),
    };
    src.parse()
        .expect("serde_derive: generated code must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item.kind {
        ItemKind::Struct(fields) => struct_deserialize(&item.name, fields),
        ItemKind::Enum(variants) => enum_deserialize(&item.name, variants),
    };
    src.parse()
        .expect("serde_derive: generated code must parse")
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (doc comments arrive as attributes too) and
    // visibility modifiers.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    // Generics are not supported; the next brace group is the body.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive: {name}: no body found (tuple structs unsupported)"),
        }
    };
    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_fields(body)),
        "enum" => ItemKind::Enum(parse_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Splits a brace-group body at top-level commas.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().unwrap().push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Consumes leading attributes from a chunk, returning (skip, default) from
/// any `#[serde(...)]` among them, and the index of the first non-attribute
/// token.
fn eat_attrs(chunk: &[TokenTree]) -> (bool, bool, usize) {
    let (mut skip, mut default) = (false, false);
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = chunk.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = chunk.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for tt in args.stream() {
                            if let TokenTree::Ident(flag) = tt {
                                match flag.to_string().as_str() {
                                    "skip" => skip = true,
                                    "default" => default = true,
                                    other => panic!(
                                        "serde_derive: unsupported serde attribute `{other}`"
                                    ),
                                }
                            }
                        }
                    }
                }
            }
            i += 2;
        } else {
            break;
        }
    }
    (skip, default, i)
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            let (skip, default, mut i) = eat_attrs(&chunk);
            if let Some(TokenTree::Ident(id)) = chunk.get(i) {
                if id.to_string() == "pub" {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = chunk.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
            }
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            };
            Field {
                name,
                skip,
                default,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            let (_, _, mut i) = eat_attrs(&chunk);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = split_commas(g.stream()).len();
                    assert!(
                        n == 1,
                        "serde_derive: tuple variant {name} must have exactly one field"
                    );
                    VariantKind::Newtype
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_fields(g.stream()))
                }
                // `= discriminant` and anything else is unsupported.
                other => panic!("serde_derive: unsupported variant shape: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::from("let mut m = ::serde::Map::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "m.insert(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
            n = f.name
        ));
    }
    body.push_str("::serde::Value::Object(m)\n");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

fn field_expr(owner: &str, f: &Field) -> String {
    if f.skip {
        return format!("{}: ::core::default::Default::default()", f.name);
    }
    if f.default {
        return format!(
            "{n}: match obj.get(\"{n}\") {{\n\
             Some(v) => ::serde::Deserialize::from_value(v)?,\n\
             None => ::core::default::Default::default(),\n}}",
            n = f.name
        );
    }
    format!(
        "{n}: ::serde::Deserialize::from_value(obj.get(\"{n}\").ok_or_else(|| \
         ::serde::Error::msg(\"missing field `{n}` in {owner}\"))?)?",
        n = f.name
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let assigns: Vec<String> = fields.iter().map(|f| field_expr(name, f)).collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         let obj = v.as_object().ok_or_else(|| \
         ::serde::Error::msg(\"expected object for {name}\"))?;\n\
         ::core::result::Result::Ok({name} {{\n{}\n}})\n}}\n}}\n",
        assigns.join(",\n")
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                v = v.name
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "{name}::{v}(inner) => {{\n\
                 let mut m = ::serde::Map::new();\n\
                 m.insert(\"{v}\".to_string(), ::serde::Serialize::to_value(inner));\n\
                 ::serde::Value::Object(m)\n}}\n",
                v = v.name
            )),
            VariantKind::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                for f in fields.iter().filter(|f| !f.skip) {
                    inner.push_str(&format!(
                        "fm.insert(\"{n}\".to_string(), ::serde::Serialize::to_value({n}));\n",
                        n = f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {} }} => {{\n{inner}\
                     let mut m = ::serde::Map::new();\n\
                     m.insert(\"{v}\".to_string(), ::serde::Value::Object(fm));\n\
                     ::serde::Value::Object(m)\n}}\n",
                    binds.join(", "),
                    v = v.name
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut object_arms = String::new();
    for v in variants {
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{v}\" => return ::core::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )),
            VariantKind::Newtype => object_arms.push_str(&format!(
                "if let Some(inner) = m.get(\"{v}\") {{\n\
                 return ::core::result::Result::Ok({name}::{v}(\
                 ::serde::Deserialize::from_value(inner)?));\n}}\n",
                v = v.name
            )),
            VariantKind::Struct(fields) => {
                let assigns: Vec<String> = fields
                    .iter()
                    .map(|f| field_expr(&format!("{name}::{}", v.name), f))
                    .collect();
                object_arms.push_str(&format!(
                    "if let Some(inner) = m.get(\"{v}\") {{\n\
                     let obj = inner.as_object().ok_or_else(|| \
                     ::serde::Error::msg(\"expected object for {name}::{v}\"))?;\n\
                     return ::core::result::Result::Ok({name}::{v} {{\n{}\n}});\n}}\n",
                    assigns.join(",\n"),
                    v = v.name
                ));
            }
        }
    }
    let mut arms = String::new();
    if !unit_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}_ => {{}}\n}},\n"
        ));
    }
    if !object_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::Object(m) => {{\n{object_arms}}}\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         match v {{\n\
         {arms}\
         _ => {{}}\n\
         }}\n\
         ::core::result::Result::Err(::serde::Error::msg(\
         \"unknown variant for {name}\"))\n\
         }}\n}}\n"
    )
}
