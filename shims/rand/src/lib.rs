//! Offline stand-in for `rand` 0.8.
//!
//! Deterministic, seedable, statistically-decent randomness with the exact
//! API surface this workspace touches: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle,
//! choose}`. The generator is xoshiro256++ seeded via SplitMix64 — *not*
//! bit-compatible with the real `StdRng` (ChaCha12), so synthetic datasets
//! differ from ones generated under the real crate, but every use in this
//! repo only requires determinism for a fixed seed, which this provides.

#![forbid(unsafe_code)]

/// Low-level entropy source; object-safe.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

pub mod rngs {
    pub use crate::StdRng;
    /// Alias: the shim needs no separate small generator.
    pub type SmallRng = StdRng;
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            // The macro instantiates identity casts (u64 as u64) too.
            #[allow(trivial_numeric_casts)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift keeps uniformity to ~2^-64, ample for this workspace.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            // The macro instantiates identity casts (u64 as u64) too.
            #[allow(trivial_numeric_casts)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            // The macro instantiates identity casts (u64 as u64) too.
            #[allow(trivial_numeric_casts)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            // The macro instantiates identity casts (u64 as u64) too.
            #[allow(trivial_numeric_casts)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    use crate::RngCore;

    /// Random slice operations.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching rand's visitation order (high to low).
            for i in (1..self.len()).rev() {
                let j = crate::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(crate::uniform_u64(rng, self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&m));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
