//! The `mc2ls` binary: see `mc2ls help`.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(mc2ls_cli::run(&args, &mut stdout));
}
