//! Subcommand implementations.

use crate::args::{ArgError, Parsed, USAGE};
use mc2ls::prelude::*;
use mc2ls_viz::{render_scene, RenderOptions};
use std::error::Error;
use std::io::Write;

type CmdResult = Result<(), Box<dyn Error>>;

/// Routes a parsed command line to its implementation.
pub fn dispatch<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    match parsed.command.as_str() {
        "generate" => generate(parsed, out),
        "stats" => stats(parsed, out),
        "solve" => solve_cmd(parsed, out),
        "analyze" => analyze(parsed, out),
        "convert" => convert(parsed, out),
        "candgen" => candgen_cmd(parsed, out),
        "snapshot" => snapshot_cmd(parsed, out),
        "serve" => serve_cmd(parsed, out),
        "query" => query_cmd(parsed, out),
        "update" => update_cmd(parsed, out),
        "help" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => unreachable!("parser admitted unknown command {other}"),
    }
}

fn preset_config(parsed: &Parsed) -> Result<DatasetConfig, Box<dyn Error>> {
    let name = parsed.require("preset")?;
    let scale: f64 = parsed.get_or("scale", 1.0)?;
    let mut cfg = match name {
        "california" | "ca" => presets::california_scaled(scale),
        "new-york" | "new_york" | "ny" => presets::new_york_scaled(scale),
        other => return Err(Box::new(ArgError::BadValue("preset".into(), other.into()))),
    };
    cfg.seed = parsed.get_or("seed", cfg.seed)?;
    Ok(cfg)
}

/// Loads the dataset from `--data FILE` or generates it from `--preset`.
fn obtain_dataset(parsed: &Parsed) -> Result<Dataset, Box<dyn Error>> {
    if let Some(path) = parsed.get("data") {
        let file = std::fs::File::open(path)?;
        return Ok(mc2ls::data::serialize::load_json(file)?);
    }
    Ok(preset_config(parsed)?.generate())
}

fn generate<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let cfg = preset_config(parsed)?;
    let path = parsed.require("out")?;
    let dataset = cfg.generate();
    let file = std::fs::File::create(path)?;
    mc2ls::data::serialize::save_json(&dataset, std::io::BufWriter::new(file))?;
    let s = dataset.stats();
    writeln!(
        out,
        "wrote {} ({} users, {} positions) to {path}",
        dataset.name, s.n_users, s.n_positions
    )?;
    Ok(())
}

fn stats<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let dataset = obtain_dataset(parsed)?;
    let s = dataset.stats();
    writeln!(out, "dataset:           {}", dataset.name)?;
    writeln!(out, "users:             {}", s.n_users)?;
    writeln!(out, "positions:         {}", s.n_positions)?;
    writeln!(out, "mean r:            {:.2}", s.mean_positions)?;
    writeln!(out, "r_max:             {}", s.r_max)?;
    writeln!(out, "MBR area ratio:    {:.4}", s.mean_mbr_area_ratio)?;
    writeln!(out, "hotspot share:     {:.3}", s.hotspot_share)?;
    writeln!(out, "POIs:              {}", dataset.pois.len())?;
    Ok(())
}

fn parse_method(name: &str) -> Result<Method, ArgError> {
    Ok(match name {
        "baseline" => Method::Baseline,
        "kcifp" | "k-cifp" => Method::KCifp,
        "iqt" => Method::Iqt(IqtConfig::iqt(2.0)),
        "iqt-c" => Method::Iqt(IqtConfig::iqt_c(2.0)),
        "iqt-pino" => Method::Iqt(IqtConfig::iqt_pino(2.0)),
        other => return Err(ArgError::BadValue("method".into(), other.into())),
    })
}

/// Parses a `--selector` value (shared by `solve` and `query`).
fn parse_selector(name: &str) -> Result<Selector, ArgError> {
    Ok(match name {
        "rescan" => Selector::Greedy,
        "celf" => Selector::LazyGreedy,
        "decremental" => Selector::Decremental,
        "auto" => Selector::Auto,
        other => return Err(ArgError::BadValue("selector".into(), other.into())),
    })
}

/// Parses a `--model` value (shared by `solve`, `snapshot save` and
/// `query`): the competition model `cinf` is computed under.
fn parse_model(name: &str) -> Result<Model, ArgError> {
    Model::parse(name).ok_or_else(|| ArgError::BadValue("model".into(), name.into()))
}

/// Parses a `--block-size` value (shared by `solve`, `analyze`, `snapshot
/// save` and `query`): `auto` (the default, also spelled `0`) derives the
/// size per dataset from the density probe, `plain` disables blocking and
/// runs the per-position kernel, a number fixes the size.
fn parse_block_size(value: Option<&str>) -> Result<usize, ArgError> {
    match value {
        None | Some("auto") => Ok(BLOCK_SIZE_AUTO),
        Some("plain") => Ok(BLOCK_SIZE_PLAIN),
        Some(v) => v
            .parse()
            .map_err(|_| ArgError::BadValue("block-size".into(), v.into())),
    }
}

/// Renders a stored `block_size` for humans, naming the sentinels.
fn show_block_size(block_size: usize) -> String {
    match block_size {
        BLOCK_SIZE_AUTO => "auto".to_string(),
        BLOCK_SIZE_PLAIN => "plain".to_string(),
        b => b.to_string(),
    }
}

/// Builds the MC²LS instance shared by `solve`, `analyze` and `snapshot
/// save`: dataset (file or preset), disjoint site sampling, and the
/// standard instance flags. Returns the dataset name alongside.
fn problem_from_flags(parsed: &Parsed) -> Result<(Problem<Sigmoid>, String), Box<dyn Error>> {
    let dataset = obtain_dataset(parsed)?;
    let n_c: usize = parsed.get_or("candidates", 100)?;
    let n_f: usize = parsed.get_or("facilities", 200)?;
    let k: usize = parsed.get_or("k", 10)?;
    let tau: f64 = parsed.get_or("tau", 0.7)?;
    let seed: u64 = parsed.get_or("site-seed", 42)?;
    let block_size = parse_block_size(parsed.get("block-size"))?;
    let model = parse_model(parsed.get("model").unwrap_or("cumulative"))?;
    let name = dataset.name.clone();
    let (sampled, facilities) = dataset.sample_sites_disjoint(n_c, n_f, seed);
    // `--candidates-file` swaps the sampled candidate sites for the ones a
    // `candgen` sweep proposed; facilities stay sampled from the dataset.
    let candidates = match parsed.get("candidates-file") {
        None => sampled,
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            let proposal: mc2ls_candgen::Proposal = serde_json::from_str(&text)?;
            if proposal.sites.is_empty() {
                return Err(Box::new(ArgError::BadValue(
                    "candidates-file".into(),
                    format!("{path} proposes no sites"),
                )));
            }
            proposal.sites.iter().map(|s| s.center).collect()
        }
    };
    let problem = Problem::new(
        dataset.users,
        facilities,
        candidates,
        k,
        tau,
        Sigmoid::paper_default(),
    )
    .with_block_size(block_size)
    .with_pf_exact(parsed.switch("pf-exact"))
    .with_model(model);
    Ok((problem, name))
}

fn solve_cmd<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let method = parse_method(parsed.get("method").unwrap_or("iqt"))?;
    let threads: usize = parsed.get_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError::BadValue("threads".into(), "0".into())));
    }
    // All selectors return byte-identical solutions; `--selector` picks how
    // the greedy rounds are computed (`auto` chooses decremental vs CELF
    // from the instance shape). The older `--lazy-greedy true|false` flag
    // remains as a fallback when `--selector` is absent.
    let selector = match parsed.get("selector") {
        Some(name) => parse_selector(name)?,
        None if parsed.get_or("lazy-greedy", true)? => Selector::LazyGreedy,
        None => Selector::Greedy,
    };

    let (problem, _name) = problem_from_flags(parsed)?;
    // The influence phases fan out over `threads` workers; the result is
    // bit-identical to the serial run for any thread count.
    let report = solve_threaded(&problem, method, selector, threads);

    if let Some(path) = parsed.get("svg") {
        let svg = render_scene(&problem, Some(&report.solution), &RenderOptions::default());
        std::fs::write(path, svg)?;
        writeln!(out, "map written to {path}")?;
    }

    if parsed.switch("json") {
        writeln!(out, "{}", serde_json::to_string_pretty(&report)?)?;
        return Ok(());
    }

    writeln!(out, "method:   {}", method.name())?;
    writeln!(out, "model:    {}", problem.model)?;
    writeln!(out, "selected: {:?}", report.solution.selected)?;
    writeln!(out, "cinf(G):  {:.4}", report.solution.cinf)?;
    writeln!(
        out,
        "covered:  {} of {} users",
        report.selection.covered_users,
        problem.n_users()
    )?;
    writeln!(
        out,
        "pruned:   {:.1}% of pairs (IS {:.1}%, NIR {:.1}%, NIB {:.1}%, IA {:.1}%)",
        report.stats.pruned_fraction() * 100.0,
        report.stats.is_fraction() * 100.0,
        report.stats.nir_fraction() * 100.0,
        report.stats.nib_fraction() * 100.0,
        report.stats.ia_fraction() * 100.0,
    )?;
    writeln!(out, "time:     {:.1?}", report.times.total())?;
    Ok(())
}

fn analyze<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    use mc2ls::core::analysis;
    let (problem, _name) = problem_from_flags(parsed)?;
    let k = problem.k;
    let (sets, _, _) =
        mc2ls::core::algorithms::influence_sets(&problem, Method::Iqt(IqtConfig::default()));
    let solution = if parsed.get_or("lazy-greedy", true)? {
        mc2ls::core::greedy::select_lazy(&sets, k)
    } else {
        mc2ls::core::greedy::select(&sets, k)
    };

    let demand = analysis::demand_summary(&sets);
    writeln!(out, "demand landscape")?;
    writeln!(out, "  addressable users:   {}", demand.addressable_users)?;
    writeln!(
        out,
        "  addressable weight:  {:.2}",
        demand.total_addressable_weight
    )?;
    writeln!(out, "  contested users:     {}", demand.contested_users)?;
    writeln!(out, "  mean competitors:    {:.2}", demand.mean_competitors)?;

    writeln!(out, "\ncoverage curve (cinf by budget k)")?;
    for (i, v) in analysis::coverage_curve(&sets, k).iter().enumerate() {
        writeln!(out, "  k={:<3} {:.3}", i + 1, v)?;
    }

    writeln!(out, "\nselected sites")?;
    writeln!(
        out,
        "  {:>5}  {:>9}  {:>6}  {:>10}",
        "site", "exclusive", "shared", "at-risk-w"
    )?;
    for r in analysis::site_reports(&sets, &solution) {
        writeln!(
            out,
            "  {:>5}  {:>9}  {:>6}  {:>10.3}",
            r.candidate, r.exclusive_users, r.shared_users, r.exclusive_weight
        )?;
    }
    Ok(())
}

fn convert<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let input = parsed.require("checkins")?;
    let output = parsed.require("out")?;
    let min_positions: usize = parsed.get_or("min-positions", 2)?;
    let bounds = match parsed.get("bounds") {
        None => None,
        Some("ny") => Some(loader::GeoBounds::new_york()),
        Some("ca") => Some(loader::GeoBounds::california()),
        Some(other) => return Err(Box::new(ArgError::BadValue("bounds".into(), other.into()))),
    };
    let dataset = loader::load_checkin_file(input, "converted", bounds, min_positions)?;
    let file = std::fs::File::create(output)?;
    mc2ls::data::serialize::save_json(&dataset, std::io::BufWriter::new(file))?;
    writeln!(
        out,
        "converted {} users / {} positions to {output}",
        dataset.users.len(),
        dataset.stats().n_positions
    )?;
    Ok(())
}

/// Runs the MaxRS-style candidate sweep over a dataset's user positions
/// and writes the proposal as JSON — the file `--candidates-file` consumes.
fn candgen_cmd<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let path = parsed.require("out")?;
    let window: f64 = parsed.get_or("window", f64::NAN)?;
    if !(window > 0.0 && window.is_finite()) {
        return Err(Box::new(ArgError::BadValue(
            "window".into(),
            parsed.get("window").unwrap_or("(missing)").into(),
        )));
    }
    let m: usize = parsed.get_or("m", 100)?;
    if m == 0 {
        return Err(Box::new(ArgError::BadValue("m".into(), "0".into())));
    }
    let threads: usize = parsed.get_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError::BadValue("threads".into(), "0".into())));
    }
    let mut cfg = mc2ls_candgen::SweepConfig::new(window, m).with_threads(threads);
    if let Some(sep) = parsed.get("min-separation") {
        let sep: f64 = sep
            .parse()
            .map_err(|_| ArgError::BadValue("min-separation".into(), sep.into()))?;
        if !(sep >= 0.0 && sep.is_finite()) {
            return Err(Box::new(ArgError::BadValue(
                "min-separation".into(),
                sep.to_string(),
            )));
        }
        cfg = cfg.with_min_separation(sep);
    }

    let dataset = obtain_dataset(parsed)?;
    let points: Vec<Point> = dataset
        .users
        .iter()
        .flat_map(|u| u.positions().iter().copied())
        .collect();
    let proposal = mc2ls_candgen::propose(&points, &cfg);
    std::fs::write(path, serde_json::to_string_pretty(&proposal)?)?;

    if parsed.switch("json") {
        writeln!(out, "{}", serde_json::to_string_pretty(&proposal)?)?;
        return Ok(());
    }
    writeln!(
        out,
        "swept {} positions at depth {} (cell {:.4}, {}x{} cell window)",
        proposal.stats.n_positions,
        proposal.stats.depth,
        proposal.stats.cell,
        proposal.stats.window_cells,
        proposal.stats.window_cells
    )?;
    writeln!(
        out,
        "scored {} anchors over {} non-empty cells",
        proposal.stats.anchors, proposal.stats.nonempty_cells
    )?;
    for (i, site) in proposal.sites.iter().enumerate() {
        writeln!(
            out,
            "  #{:<3} ({:>9.3}, {:>9.3})  score {}",
            i + 1,
            site.center.x,
            site.center.y,
            site.score
        )?;
    }
    writeln!(out, "proposed {} sites to {path}", proposal.sites.len())?;
    Ok(())
}

fn snapshot_cmd<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    match parsed.action.as_deref() {
        Some("save") => snapshot_save(parsed, out),
        Some("load") => snapshot_load(parsed, out),
        Some("diff") => snapshot_diff(parsed, out),
        other => unreachable!("parser admitted snapshot action {other:?}"),
    }
}

fn snapshot_save<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let path = parsed.require("out")?;
    let threads: usize = parsed.get_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError::BadValue("threads".into(), "0".into())));
    }
    let leaf_diagonal: f64 = parsed.get_or("leaf-diagonal", 2.0)?;
    let shards: usize = parsed.get_or("shards", 1)?;
    if shards == 0 {
        return Err(Box::new(ArgError::BadValue("shards".into(), "0".into())));
    }
    let (problem, name) = problem_from_flags(parsed)?;
    let (snapshot, stats) =
        mc2ls_serve::Snapshot::build_sharded(&name, &problem, leaf_diagonal, threads, shards);
    let bytes = snapshot.to_bytes();
    std::fs::write(path, &bytes)?;
    let meta = &snapshot.meta;
    writeln!(
        out,
        "snapshot {}: {} users, {} candidates, {} facilities, {} shards, tau {}, model {}",
        meta.name,
        meta.n_users,
        meta.n_candidates,
        meta.n_facilities,
        snapshot.n_shards(),
        meta.tau,
        meta.model
    )?;
    writeln!(
        out,
        "influences: {} entries ({:.1}% of pairs pruned)",
        snapshot.total_influences(),
        stats.pruned_fraction() * 100.0
    )?;
    writeln!(out, "wrote {} bytes to {path}", bytes.len())?;
    Ok(())
}

fn snapshot_load<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let path = parsed.require("file")?;
    let snapshot = mc2ls_serve::Snapshot::load(std::path::Path::new(path))?;
    let meta = &snapshot.meta;
    writeln!(out, "snapshot:    {}", meta.name)?;
    writeln!(out, "users:       {}", meta.n_users)?;
    writeln!(out, "candidates:  {}", meta.n_candidates)?;
    writeln!(out, "facilities:  {}", meta.n_facilities)?;
    writeln!(out, "tau:         {}", meta.tau)?;
    writeln!(out, "model:       {}", meta.model)?;
    writeln!(out, "block size:  {}", show_block_size(meta.block_size))?;
    writeln!(out, "default k:   {}", meta.default_k)?;
    writeln!(out, "shards:      {}", snapshot.n_shards())?;
    writeln!(out, "influences:  {}", snapshot.total_influences())?;
    writeln!(out, "iqt nodes:   {}", snapshot.tree.stats().nodes)?;
    writeln!(out, "verified OK (magic, version, section checksums)")?;
    Ok(())
}

fn snapshot_diff<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let base_path = parsed.require("base")?;
    let target_path = parsed.require("target")?;
    let out_path = parsed.require("out")?;
    let base = std::fs::read(base_path)?;
    let target = std::fs::read(target_path)?;
    // Validate both endpoints up front so a bad input is a decode error
    // here, not a confusing RELOAD failure later.
    mc2ls_serve::Snapshot::from_bytes(&base)?;
    mc2ls_serve::Snapshot::from_bytes(&target)?;
    let delta = mc2ls_serve::delta::diff(&base, &target)?;
    std::fs::write(out_path, &delta)?;
    writeln!(
        out,
        "delta {}: {} bytes ({} base, {} target)",
        out_path,
        delta.len(),
        base.len(),
        target.len()
    )?;
    Ok(())
}

fn serve_cmd<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let threads: usize = parsed.get_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError::BadValue("threads".into(), "0".into())));
    }
    let config = mc2ls_serve::ServerConfig {
        addr: parsed.get("addr").unwrap_or("127.0.0.1:7171").to_string(),
        workers: parsed.get_or("workers", 4)?,
        max_pending: parsed.get_or("max-pending", 64)?,
        cache_capacity: parsed.get_or("cache", 256)?,
        coalesce_window: std::time::Duration::from_micros(parsed.get_or("coalesce-us", 0u64)?),
        threads,
        ..mc2ls_serve::ServerConfig::default()
    };

    if parsed.switch("live") {
        // Live mode: build the instance in-process (the influence phase
        // runs once, shared between the update engine and the initial
        // snapshot) and accept UPDATE batches with no reload ever.
        let leaf_diagonal: f64 = parsed.get_or("leaf-diagonal", 2.0)?;
        let shards: usize = parsed.get_or("shards", 1)?;
        if shards == 0 {
            return Err(Box::new(ArgError::BadValue("shards".into(), "0".into())));
        }
        let (problem, name) = problem_from_flags(parsed)?;
        let (live, snapshot, _prune) =
            mc2ls_serve::LiveUpdater::new(&name, &problem, leaf_diagonal, threads, shards);
        let engine = mc2ls_serve::QueryEngine::new(snapshot, threads);
        let server = mc2ls_serve::Server::start_live(config, engine, live)?;
        writeln!(
            out,
            "serving live instance {} on {} ({} users, {} shards)",
            name,
            server.addr(),
            problem.n_users(),
            shards
        )?;
        if let Some(port_file) = parsed.get("port-file") {
            std::fs::write(port_file, server.addr().to_string())?;
        }
        out.flush()?;
        server.join();
        writeln!(out, "server stopped")?;
        return Ok(());
    }

    let path = parsed.require("snapshot")?;
    let snapshot = mc2ls_serve::Snapshot::load(std::path::Path::new(path))?;
    // `--shards` is a guard, not a transform: serving always uses the
    // snapshot's own layout, so a mismatch means the operator saved the
    // wrong file for this fleet and deserves a hard error.
    if let Some(want) = parsed.get("shards") {
        let want: usize = want
            .parse()
            .map_err(|_| ArgError::BadValue("shards".into(), want.into()))?;
        if want != snapshot.n_shards() {
            return Err(Box::new(ArgError::BadValue(
                "shards".into(),
                format!("{want} (snapshot has {})", snapshot.n_shards()),
            )));
        }
    }
    let name = snapshot.meta.name.clone();
    let engine = mc2ls_serve::QueryEngine::new(snapshot, threads);
    let server = mc2ls_serve::Server::start(config, engine)?;
    writeln!(out, "serving snapshot {} on {}", name, server.addr())?;
    // Scripts (and the CI smoke job) poll this file to learn the bound
    // port when `--addr` ends in `:0`.
    if let Some(port_file) = parsed.get("port-file") {
        std::fs::write(port_file, server.addr().to_string())?;
    }
    out.flush()?;
    server.join();
    writeln!(out, "server stopped")?;
    Ok(())
}

fn query_cmd<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let addr = parsed.require("addr")?;
    let mut client = mc2ls_serve::Client::connect(addr)?;

    if parsed.switch("shutdown") {
        writeln!(out, "{}", client.shutdown()?)?;
        return Ok(());
    }
    if let Some(path) = parsed.get("reload") {
        writeln!(out, "{}", client.reload(path)?)?;
        return Ok(());
    }
    if parsed.switch("stats") {
        let report = client.stats()?;
        if parsed.switch("json") {
            writeln!(out, "{}", serde_json::to_string_pretty(&report)?)?;
            return Ok(());
        }
        writeln!(out, "snapshot:     {}", report.meta.name)?;
        writeln!(
            out,
            "instance:     {} users, {} candidates, tau {}",
            report.meta.n_users, report.meta.n_candidates, report.meta.tau
        )?;
        writeln!(out, "requests:     {}", report.requests)?;
        writeln!(out, "queries:      {}", report.queries)?;
        writeln!(
            out,
            "cache:        {} hits / {} misses ({} of {} entries)",
            report.cache_hits, report.cache_misses, report.cache_len, report.cache_capacity
        )?;
        writeln!(out, "rejected:     {}", report.rejected)?;
        writeln!(out, "errors:       {}", report.errors)?;
        writeln!(
            out,
            "reloads:      {} ({} via delta)",
            report.reloads, report.delta_reloads
        )?;
        writeln!(
            out,
            "updates:      {} applied ({} flips, {} compactions)",
            report.updates_applied, report.flipped_candidates, report.compactions
        )?;
        writeln!(out, "coalesced:    {}", report.coalesced)?;
        writeln!(out, "shards:       {}", report.shards)?;
        writeln!(out, "queue depth:  {}", report.queue_depth)?;
        writeln!(
            out,
            "latency:      p50 {}us, p99 {}us",
            report.p50_us, report.p99_us
        )?;
        return Ok(());
    }

    if parsed.switch("propose") {
        let window: f64 = parsed
            .require("window")?
            .parse()
            .map_err(|_| ArgError::BadValue("window".into(), "non-numeric".into()))?;
        let min_separation = match parsed.get("min-separation") {
            None => None,
            Some(v) => Some(
                v.parse::<f64>()
                    .map_err(|_| ArgError::BadValue("min-separation".into(), v.into()))?,
            ),
        };
        let proposal = client.propose(&mc2ls_serve::ProposeRequest {
            window,
            m: parsed.get_or("m", 10)?,
            min_separation,
        })?;
        if parsed.switch("json") {
            writeln!(out, "{}", serde_json::to_string_pretty(&proposal)?)?;
            return Ok(());
        }
        for (i, site) in proposal.sites.iter().enumerate() {
            writeln!(
                out,
                "  #{:<3} ({:>9.3}, {:>9.3})  score {}",
                i + 1,
                site.center.x,
                site.center.y,
                site.score
            )?;
        }
        writeln!(
            out,
            "proposed {} sites from {} positions",
            proposal.sites.len(),
            proposal.stats.n_positions
        )?;
        return Ok(());
    }

    // Pull the snapshot's parameters so a plain `query --addr …` just
    // works; explicit flags override (and are validated server-side).
    let meta = client.stats()?.meta;
    let candidates = match parsed.get("candidates") {
        None => None,
        Some(list) => {
            let ids: Result<Vec<u32>, _> = list
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::parse)
                .collect();
            Some(ids.map_err(|_| ArgError::BadValue("candidates".into(), list.into()))?)
        }
    };
    let request = mc2ls_serve::QueryRequest {
        candidates,
        k: parsed.get_or("k", meta.default_k)?,
        tau: parsed.get_or("tau", meta.tau)?,
        block_size: match parsed.get("block-size") {
            None => meta.block_size,
            flag => parse_block_size(flag)?,
        },
        pf_exact: parsed.switch("pf-exact"),
        selector: match parsed.get("selector") {
            Some(name) => parse_selector(name)?,
            None => Selector::Auto,
        },
        // Default to the model the snapshot was built to serve, so a plain
        // `query --addr …` works against any deployment; an explicit flag
        // is validated server-side against the snapshot META.
        model: match parsed.get("model") {
            Some(name) => parse_model(name)?,
            None => meta.model,
        },
    };
    let answer = client.query(&request)?;
    if parsed.switch("json") {
        writeln!(out, "{}", serde_json::to_string_pretty(&answer)?)?;
        return Ok(());
    }
    writeln!(out, "selected: {:?}", answer.solution.selected)?;
    writeln!(out, "cinf(G):  {:.4}", answer.solution.cinf)?;
    writeln!(
        out,
        "covered:  {} of {} users",
        answer.selection.covered_users, meta.n_users
    )?;
    writeln!(
        out,
        "cached:   {} (key {:016x})",
        answer.cached, answer.key_hash
    )?;
    Ok(())
}

/// Replays a timestamped SNAP check-in stream against a live server as
/// UPDATE batches: the first appearance of an external user id becomes an
/// `insert`, every later record a `checkin` appended to that trajectory.
fn update_cmd<W: Write>(parsed: &Parsed, out: &mut W) -> CmdResult {
    let addr = parsed.require("addr")?;
    let input = parsed.require("checkins")?;
    let batch_size: usize = parsed.get_or("batch", 100)?;
    if batch_size == 0 {
        return Err(Box::new(ArgError::BadValue("batch".into(), "0".into())));
    }
    let limit: usize = parsed.get_or("limit", usize::MAX)?;
    let anchor_lat: f64 = parsed.get_or("anchor-lat", 40.7)?;
    let anchor_lon: f64 = parsed.get_or("anchor-lon", -74.0)?;
    let bounds = match parsed.get("bounds") {
        None => None,
        Some("ny") => Some(loader::GeoBounds::new_york()),
        Some("ca") => Some(loader::GeoBounds::california()),
        Some(other) => return Err(Box::new(ArgError::BadValue("bounds".into(), other.into()))),
    };

    // `events` sorts by timestamp, so the replay is the real arrival order.
    let file = std::fs::File::open(input)?;
    let mut events = loader::events(file, bounds)?;
    events.truncate(limit);
    let projection = mc2ls::geo::project::Equirectangular::new(anchor_lat, anchor_lon);

    let mut client = mc2ls_serve::Client::connect(addr)?;
    // External SNAP ids map onto the engine's dense slot space: ids beyond
    // the served instance get fresh slots, numbered from the current count.
    // Replay never deletes, so compaction keeps the numbering stable.
    let mut ext_map: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    let mut next_slot = client.stats()?.meta.n_users as u32;

    let (mut applied, mut flipped, mut compactions, mut batches) = (0u64, 0u64, 0u64, 0u64);
    let mut inserted = 0usize;
    for chunk in events.chunks(batch_size) {
        let mut wire = Vec::with_capacity(chunk.len());
        for ev in chunk {
            let p = projection.project(ev.lat, ev.lon);
            match ext_map.get(&ev.user) {
                Some(&slot) => wire.push(mc2ls_serve::WireEvent {
                    op: "checkin".to_string(),
                    user: slot,
                    xs: vec![p.x],
                    ys: vec![p.y],
                }),
                None => {
                    ext_map.insert(ev.user, next_slot);
                    next_slot += 1;
                    inserted += 1;
                    wire.push(mc2ls_serve::WireEvent {
                        op: "insert".to_string(),
                        user: 0,
                        xs: vec![p.x],
                        ys: vec![p.y],
                    });
                }
            }
        }
        let report = client.update(&wire)?;
        applied += report.applied;
        flipped += report.flipped;
        compactions += report.compactions;
        batches += 1;
        next_slot = report.next_user_id;
    }

    writeln!(
        out,
        "replayed {} events in {} batches ({} new users)",
        applied, batches, inserted
    )?;
    writeln!(
        out,
        "flipped:      {} candidate memberships re-verified",
        flipped
    )?;
    writeln!(out, "compactions:  {}", compactions)?;
    let meta = client.stats()?.meta;
    writeln!(out, "server now:   {} users live", meta.n_users)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn call(line: &str) -> (i32, String) {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        let code = run(&args, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mc2ls-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = call("help");
        assert_eq!(code, 0);
        assert!(out.contains("usage: mc2ls"));
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let (code, out) = call("bogus");
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
        assert!(out.contains("usage"));
    }

    #[test]
    fn generate_stats_solve_pipeline() {
        let data = tmp("pipeline.json");
        let (code, out) = call(&format!(
            "generate --preset new-york --scale 0.05 --out {data}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("users"));

        let (code, out) = call(&format!("stats --data {data}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("hotspot share"));

        let svg = tmp("pipeline.svg");
        let (code, out) = call(&format!(
            "solve --data {data} --candidates 20 --facilities 30 -k 3 --tau 0.6 --method iqt --svg {svg}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("cinf(G)"));
        assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
    }

    #[test]
    fn analyze_prints_reports() {
        let (code, out) =
            call("analyze --preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("demand landscape"));
        assert!(out.contains("coverage curve"));
        assert!(out.contains("selected sites"));
        assert_eq!(out.matches("k=").count(), 3);
    }

    #[test]
    fn solve_json_output_is_machine_readable() {
        let (code, out) = call(
            "solve --preset new-york --scale 0.05 --candidates 10 --facilities 10 -k 2 --json",
        );
        assert_eq!(code, 0, "{out}");
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["solution"]["selected"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn solve_threads_flag_does_not_change_the_answer() {
        let base = "solve --preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let (code, serial) = call(base);
        assert_eq!(code, 0, "{serial}");
        let (code, threaded) = call(&format!("{base} --threads 4"));
        assert_eq!(code, 0, "{threaded}");
        let line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("selected"))
                .unwrap()
                .to_owned()
        };
        assert_eq!(line(&serial), line(&threaded));
    }

    #[test]
    fn lazy_greedy_flag_does_not_change_the_answer() {
        // CELF (the default) and the re-evaluating greedy must select the
        // same sites with the same cinf.
        let base = "solve --preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let (code, lazy) = call(base);
        assert_eq!(code, 0, "{lazy}");
        let (code, eager) = call(&format!("{base} --lazy-greedy false"));
        assert_eq!(code, 0, "{eager}");
        let pick = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .to_owned()
        };
        assert_eq!(pick(&lazy, "selected"), pick(&eager, "selected"));
        assert_eq!(pick(&lazy, "cinf"), pick(&eager, "cinf"));
    }

    #[test]
    fn block_size_flag_does_not_change_the_answer() {
        // A fixed block size, the auto-tuned default and the plain kernel
        // (--block-size plain) make identical decisions, so the solution
        // must match exactly.
        let base = "solve --preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("selected"))
                .unwrap()
                .to_owned()
        };
        let (code, plain) = call(&format!("{base} --block-size plain"));
        assert_eq!(code, 0, "{plain}");
        for flag in ["--block-size 8", "--block-size auto", ""] {
            let (code, got) = call(&format!("{base} {flag}"));
            assert_eq!(code, 0, "{got}");
            assert_eq!(line(&got), line(&plain), "{flag}");
        }
        let (code, out) = call(&format!("{base} --block-size eleven"));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("bad value"), "{out}");
    }

    #[test]
    fn pf_exact_flag_does_not_change_the_answer() {
        // --pf-exact forces the exact exp path; the fast path's error-band
        // fallback guarantees the same decisions, hence the same solution.
        let base = "solve --preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let (code, fast) = call(base);
        assert_eq!(code, 0, "{fast}");
        let (code, exact) = call(&format!("{base} --pf-exact"));
        assert_eq!(code, 0, "{exact}");
        let pick = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .to_owned()
        };
        for prefix in ["selected", "cinf", "covered"] {
            assert_eq!(pick(&fast, prefix), pick(&exact, prefix));
        }
    }

    #[test]
    fn selector_flag_variants_agree() {
        // rescan, celf, decremental and auto must print the exact same
        // selected set, cinf and covered-user count.
        let base = "solve --preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let pick = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .to_owned()
        };
        let (code, reference) = call(&format!("{base} --selector rescan"));
        assert_eq!(code, 0, "{reference}");
        assert!(pick(&reference, "covered:").contains("users"));
        for selector in ["celf", "decremental", "auto"] {
            let (code, got) = call(&format!("{base} --selector {selector}"));
            assert_eq!(code, 0, "{got}");
            for prefix in ["selected", "cinf", "covered"] {
                assert_eq!(
                    pick(&reference, prefix),
                    pick(&got, prefix),
                    "--selector {selector}"
                );
            }
        }
    }

    #[test]
    fn selector_stats_appear_in_json_output() {
        let (code, out) = call(
            "solve --preset new-york --scale 0.05 --candidates 10 --facilities 10 -k 2 \
             --selector decremental --json",
        );
        assert_eq!(code, 0, "{out}");
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["selection"]["covered_users"].as_u64().unwrap() > 0);
        assert!(v["selection"]["inverted_entries"].as_u64().unwrap() > 0);
        assert_eq!(v["selection"]["users_rescanned"].as_u64().unwrap(), 0);
    }

    #[test]
    fn solve_rejects_bad_selector() {
        let (code, out) = call("solve --preset new-york --scale 0.05 --selector quantum");
        assert_eq!(code, 1);
        assert!(out.contains("bad value"));
    }

    #[test]
    fn solve_rejects_zero_threads() {
        let (code, out) = call("solve --preset new-york --scale 0.05 --threads 0");
        assert_eq!(code, 1);
        assert!(out.contains("bad value"));
    }

    #[test]
    fn solve_rejects_bad_method() {
        let (code, out) = call("solve --preset new-york --scale 0.05 --method quantum");
        assert_eq!(code, 1);
        assert!(out.contains("bad value"));
    }

    #[test]
    fn explicit_cumulative_model_matches_the_default() {
        // `--model cumulative` is the default spelled out: identical lines.
        let base = "solve --preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let pick = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .to_owned()
        };
        let (code, default) = call(base);
        assert_eq!(code, 0, "{default}");
        assert!(default.contains("model:    cumulative"), "{default}");
        let (code, explicit) = call(&format!("{base} --model cumulative"));
        assert_eq!(code, 0, "{explicit}");
        for prefix in ["selected", "cinf", "covered"] {
            assert_eq!(pick(&default, prefix), pick(&explicit, prefix));
        }
    }

    #[test]
    fn logit_model_solves_and_reports_itself() {
        let (code, out) = call(
            "solve --preset new-york --scale 0.05 --candidates 12 --facilities 15 -k 3 \
             --model logit",
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("model:    logit"), "{out}");
        assert!(out.contains("cinf(G)"), "{out}");
    }

    #[test]
    fn solve_rejects_bad_model() {
        let (code, out) = call("solve --preset new-york --scale 0.05 --model quantum");
        assert_eq!(code, 1);
        assert!(out.contains("bad value"));
    }

    #[test]
    fn candgen_emits_a_file_the_solve_pipeline_consumes() {
        let sites = tmp("candgen-sites.json");
        let (code, out) = call(&format!(
            "candgen --preset new-york --scale 0.05 --window 2.0 -m 12 --out {sites}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("proposed"), "{out}");
        let proposal: mc2ls_candgen::Proposal =
            serde_json::from_str(&std::fs::read_to_string(&sites).unwrap()).unwrap();
        assert!(!proposal.sites.is_empty());
        assert!(proposal.sites.len() <= 12);

        // The emitted file slots straight into solve as the candidate set.
        let (code, solved) = call(&format!(
            "solve --preset new-york --scale 0.05 --facilities 20 -k 3 \
             --candidates-file {sites}"
        ));
        assert_eq!(code, 0, "{solved}");
        assert!(solved.contains("cinf(G)"), "{solved}");
    }

    #[test]
    fn candgen_is_thread_count_invariant_and_rejects_bad_flags() {
        let a = tmp("candgen-serial.json");
        let b = tmp("candgen-threaded.json");
        let base = "candgen --preset new-york --scale 0.05 --window 1.5 -m 6";
        let (code, out) = call(&format!("{base} --out {a}"));
        assert_eq!(code, 0, "{out}");
        let (code, out) = call(&format!("{base} --threads 4 --out {b}"));
        assert_eq!(code, 0, "{out}");
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
            "sweep output must be byte-identical at any thread count"
        );

        for bad in [
            "candgen --preset new-york --scale 0.05 --out /tmp/x.json",
            "candgen --preset new-york --scale 0.05 --window 0 --out /tmp/x.json",
            "candgen --preset new-york --scale 0.05 --window 2 -m 0 --out /tmp/x.json",
            "candgen --preset new-york --scale 0.05 --window 2 --min-separation -1 --out /tmp/x.json",
        ] {
            let (code, out) = call(bad);
            assert_eq!(code, 1, "{bad} => {out}");
            assert!(out.contains("bad value"), "{bad} => {out}");
        }
    }

    #[test]
    fn convert_roundtrip() {
        // Export a synthetic dataset as check-ins, then convert it back.
        let d = mc2ls::prelude::presets::new_york_scaled(0.02).generate();
        let tsv = tmp("checkins.tsv");
        let mut buf = Vec::new();
        mc2ls::data::serialize::export_checkins(&d, (40.7, -74.0), &mut buf).unwrap();
        std::fs::write(&tsv, buf).unwrap();

        let out_json = tmp("converted.json");
        let (code, out) = call(&format!("convert --checkins {tsv} --out {out_json}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("converted"));
        let back =
            mc2ls::data::serialize::load_json(std::fs::File::open(&out_json).unwrap()).unwrap();
        assert_eq!(back.users.len(), d.users.len());
    }

    #[test]
    fn missing_required_flag_reports_cleanly() {
        let (code, out) = call("generate --preset california");
        assert_eq!(code, 1);
        assert!(out.contains("--out") || out.contains("required"));
    }

    #[test]
    fn snapshot_rejects_bad_actions() {
        let (code, out) = call("snapshot");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("<action>"));
        let (code, out) = call("snapshot frobnicate --out x.mc2s");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("bad value"));
    }

    #[test]
    fn snapshot_save_load_pipeline() {
        let file = tmp("pipeline.mc2s");
        let (code, out) = call(&format!(
            "snapshot save --preset new-york --scale 0.05 --candidates 15 \
             --facilities 20 -k 3 --tau 0.6 --out {file}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote"), "{out}");

        let (code, out) = call(&format!("snapshot load --file {file}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("candidates:  15"), "{out}");
        assert!(out.contains("verified OK"), "{out}");

        // Corrupt one payload byte: load must fail cleanly, not panic.
        let mut bytes = std::fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let bad = tmp("pipeline-bad.mc2s");
        std::fs::write(&bad, bytes).unwrap();
        let (code, out) = call(&format!("snapshot load --file {bad}"));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("error:"), "{out}");
    }

    #[test]
    fn sharded_save_and_diff_pipeline() {
        let instance = "--preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let base = tmp("diff-base.mc2s");
        let (code, out) = call(&format!(
            "snapshot save {instance} --tau 0.6 --shards 3 --out {base}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("3 shards"), "{out}");

        let (code, out) = call(&format!("snapshot load --file {base}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("shards:      3"), "{out}");

        // A target differing only in tau: the delta must be far smaller
        // than the full container (META + ISET groups change; PBLK/IQTR
        // do not).
        let target = tmp("diff-target.mc2s");
        let (code, out) = call(&format!(
            "snapshot save {instance} --tau 0.7 --shards 3 --out {target}"
        ));
        assert_eq!(code, 0, "{out}");

        let delta = tmp("diff-out.mc2d");
        let (code, out) = call(&format!(
            "snapshot diff --base {base} --target {target} --out {delta}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("delta "), "{out}");
        let delta_bytes = std::fs::read(&delta).unwrap();
        let target_bytes = std::fs::read(&target).unwrap();
        assert!(delta_bytes.len() < target_bytes.len(), "delta not smaller");
        let patched =
            mc2ls_serve::delta::apply(&std::fs::read(&base).unwrap(), &delta_bytes).unwrap();
        assert_eq!(patched, target_bytes, "apply(base, diff) != target");

        // The serve-side guard: demanding a different shard layout fails.
        let (code, out) = call(&format!("serve --snapshot {base} --shards 2"));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("snapshot has 3"), "{out}");
    }

    #[test]
    fn serve_query_stats_shutdown_pipeline() {
        // End-to-end through the real binary surface: save a snapshot,
        // serve it on an ephemeral port, and drive it with `query`.
        let instance = "--preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let file = tmp("serve-e2e.mc2s");
        let (code, out) = call(&format!("snapshot save {instance} --out {file}"));
        assert_eq!(code, 0, "{out}");

        let port_file = tmp("serve-e2e.port");
        let _ = std::fs::remove_file(&port_file);
        let serve_line =
            format!("serve --snapshot {file} --addr 127.0.0.1:0 --port-file {port_file}");
        let server = std::thread::spawn(move || call(&serve_line));

        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    break addr;
                }
                assert!(waited < 30_000, "server never wrote its port file");
                std::thread::sleep(std::time::Duration::from_millis(20));
                waited += 20;
            }
        };

        // A served query answers bit-for-bit like the direct solve of the
        // same instance (the snapshot was built from identical flags).
        let (code, direct) = call(&format!("solve {instance} --selector auto"));
        assert_eq!(code, 0, "{direct}");
        let (code, served) = call(&format!("query --addr {addr}"));
        assert_eq!(code, 0, "{served}");
        let pick = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .to_owned()
        };
        for prefix in ["selected", "cinf", "covered"] {
            assert_eq!(pick(&direct, prefix), pick(&served, prefix));
        }

        // Second identical query hits the cache; stats must show it.
        let (code, served2) = call(&format!("query --addr {addr}"));
        assert_eq!(code, 0, "{served2}");
        assert_eq!(pick(&direct, "selected"), pick(&served2, "selected"));
        assert!(served2.contains("cached:   true"), "{served2}");
        let (code, stats) = call(&format!("query --addr {addr} --stats"));
        assert_eq!(code, 0, "{stats}");
        assert!(stats.contains("queries:      2"), "{stats}");
        assert!(stats.contains("1 hits"), "{stats}");

        // PROPOSE answers straight from the served snapshot's positions.
        let (code, proposed) = call(&format!("query --addr {addr} --propose --window 2.0 -m 4"));
        assert_eq!(code, 0, "{proposed}");
        assert!(proposed.contains("proposed 4 sites"), "{proposed}");

        // An explicit matching model is accepted; a mismatch is a typed
        // remote rejection, never a wrong answer.
        let (code, matching) = call(&format!("query --addr {addr} --model cumulative"));
        assert_eq!(code, 0, "{matching}");
        assert_eq!(pick(&direct, "selected"), pick(&matching, "selected"));
        let (code, mismatched) = call(&format!("query --addr {addr} --model logit"));
        assert_eq!(code, 1, "{mismatched}");
        assert!(mismatched.contains("model"), "{mismatched}");

        let (code, bye) = call(&format!("query --addr {addr} --shutdown"));
        assert_eq!(code, 0, "{bye}");
        assert!(bye.contains("shutting down"), "{bye}");
        let (code, out) = server.join().unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("server stopped"), "{out}");
    }

    #[test]
    fn live_serve_absorbs_a_replayed_checkin_stream() {
        // Start a live-mode server (no snapshot file anywhere), replay an
        // exported SNAP check-in stream at it through `update`, and verify
        // the counters — all through the real binary surface, zero reloads.
        let instance = "--preset new-york --scale 0.05 --candidates 15 --facilities 20 -k 3";
        let tsv = tmp("live-replay.tsv");
        let d = mc2ls::prelude::presets::new_york_scaled(0.02).generate();
        let mut buf = Vec::new();
        mc2ls::data::serialize::export_checkins(&d, (40.7, -74.0), &mut buf).unwrap();
        std::fs::write(&tsv, buf).unwrap();

        let port_file = tmp("live-replay.port");
        let _ = std::fs::remove_file(&port_file);
        let serve_line = format!(
            "serve --live {instance} --tau 0.6 --shards 2 --addr 127.0.0.1:0 \
             --port-file {port_file}"
        );
        let server = std::thread::spawn(move || call(&serve_line));

        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    break addr;
                }
                assert!(waited < 60_000, "live server never wrote its port file");
                std::thread::sleep(std::time::Duration::from_millis(20));
                waited += 20;
            }
        };

        let (code, replay) = call(&format!(
            "update --addr {addr} --checkins {tsv} --limit 40 --batch 16"
        ));
        assert_eq!(code, 0, "{replay}");
        assert!(
            replay.contains("replayed 40 events in 3 batches"),
            "{replay}"
        );
        assert!(replay.contains("compactions:  3"), "{replay}");

        // The counters survive into STATS, and nothing was reloaded.
        let (code, stats) = call(&format!("query --addr {addr} --stats"));
        assert_eq!(code, 0, "{stats}");
        assert!(stats.contains("updates:      40 applied"), "{stats}");
        assert!(stats.contains("reloads:      0"), "{stats}");

        // The mutated instance still answers queries.
        let (code, served) = call(&format!("query --addr {addr}"));
        assert_eq!(code, 0, "{served}");
        assert!(served.contains("selected:"), "{served}");

        let (code, bye) = call(&format!("query --addr {addr} --shutdown"));
        assert_eq!(code, 0, "{bye}");
        let (code, out) = server.join().unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("serving live instance"), "{out}");
        assert!(out.contains("server stopped"), "{out}");
    }

    #[test]
    fn update_rejects_bad_flags_cleanly() {
        let (code, out) = call("update --addr 127.0.0.1:1 --checkins nope.tsv --batch 0");
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("bad value"), "{out}");
        let (code, out) = call("update --checkins nope.tsv");
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("--addr") || out.contains("required"), "{out}");
    }

    #[test]
    fn query_reports_connection_failures_cleanly() {
        // Nothing listens on this port; the client must fail with a typed
        // error and exit code 1, never a panic.
        let (code, out) = call("query --addr 127.0.0.1:1 --stats");
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("error:"), "{out}");
    }
}
