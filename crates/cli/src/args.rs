//! Flag parsing for the `mc2ls` tool (plain `std`, no dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// Usage text printed on parse errors and `mc2ls help`.
pub const USAGE: &str = "\
usage: mc2ls <command> [flags]

commands:
  generate   --preset california|new-york [--scale S] [--seed N] --out FILE
  stats      --data FILE | --preset P [--scale S]
  solve      --data FILE | --preset P [--scale S]
             [--candidates N] [--facilities M] [-k K] [--tau T]
             [--method baseline|kcifp|iqt|iqt-c|iqt-pino] [--threads T]
             [--block-size auto|plain|B] [--pf-exact]
             [--model cumulative|logit] [--candidates-file FILE]
             [--lazy-greedy true|false]
             [--selector rescan|celf|decremental|auto]
             [--svg FILE] [--json]
  analyze    --data FILE | --preset P [--scale S]
             [--candidates N] [--facilities M] [-k K] [--tau T]
             [--block-size auto|plain|B] [--pf-exact]
             [--lazy-greedy true|false]
  convert    --checkins FILE --out FILE [--bounds ny|ca] [--min-positions N]
  candgen    --data FILE | --preset P [--scale S] --window W --out FILE
             [-m M] [--min-separation D] [--threads T] [--json]
             (MaxRS-style sweep: proposes top-m candidate sites from the
             users' positions; solve/snapshot consume the emitted file
             via --candidates-file)
  snapshot   save --preset P | --data FILE [--scale S] [--candidates N]
             [--facilities M] [-k K] [--tau T] [--block-size auto|plain|B]
             [--model cumulative|logit] [--candidates-file FILE]
             [--threads T] [--shards N] [--site-seed N] --out FILE.mc2s
             load --file FILE.mc2s  (verify + print metadata)
             diff --base FILE.mc2s --target FILE.mc2s --out FILE.mc2d
  serve      --snapshot FILE.mc2s [--addr HOST:PORT] [--workers N]
             [--threads T] [--shards N] [--cache N] [--max-pending N]
             [--coalesce-us N] [--port-file FILE]
             or: --live --preset P | --data FILE [instance flags]
             [--leaf-diagonal D]  (accepts the UPDATE verb, no snapshot)
  query      --addr HOST:PORT [--candidates 1,2,3] [-k K]
             [--selector rescan|celf|decremental|auto] [--tau T]
             [--block-size auto|plain|B] [--pf-exact] [--json]
             [--model cumulative|logit]  (must match the snapshot)
             [--stats] [--reload FILE.mc2s] [--shutdown]
             [--propose --window W [-m M] [--min-separation D]]
             (PROPOSE: server-side sweep over the snapshot's positions)
  update     --addr HOST:PORT --checkins FILE [--bounds ny|ca]
             [--batch N] [--limit N] [--anchor-lat A] [--anchor-lon B]
             (replays a timestamped SNAP check-in stream as UPDATE batches)
  help";

/// A parsed command line: the subcommand plus flag key/value pairs.
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The subcommand name.
    pub command: String,
    /// The action token of commands that take one (`snapshot save|load`);
    /// `None` for every other command.
    pub action: Option<String>,
    flags: BTreeMap<String, String>,
}

/// Argument-parsing errors.
#[derive(Debug)]
pub enum ArgError {
    /// No subcommand given.
    Missing,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A flag without its value, or a stray positional.
    Malformed(String),
    /// A flag value failed to parse.
    BadValue(String, String),
    /// A mandatory flag is absent.
    Required(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Missing => write!(f, "missing command"),
            ArgError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            ArgError::Malformed(a) => write!(f, "malformed argument '{a}'"),
            ArgError::BadValue(k, v) => write!(f, "bad value '{v}' for --{k}"),
            ArgError::Required(k) => write!(f, "missing required flag --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

const COMMANDS: &[&str] = &[
    "generate", "stats", "solve", "analyze", "convert", "candgen", "snapshot", "serve", "query",
    "update", "help",
];
/// Boolean flags that take no value.
const SWITCHES: &[&str] = &["json", "stats", "shutdown", "pf-exact", "live", "propose"];
/// Commands taking a positional action token before their flags, with the
/// actions each admits.
const ACTIONS: &[(&str, &[&str])] = &[("snapshot", &["save", "load", "diff"])];

impl Parsed {
    /// Parses `args` (without the program name).
    pub fn parse(args: &[String]) -> Result<Parsed, ArgError> {
        let (command, mut rest) = args.split_first().ok_or(ArgError::Missing)?;
        if !COMMANDS.contains(&command.as_str()) {
            return Err(ArgError::UnknownCommand(command.clone()));
        }
        let mut action = None;
        if let Some((_, admitted)) = ACTIONS.iter().find(|(c, _)| c == command) {
            let (token, after) = rest
                .split_first()
                .ok_or_else(|| ArgError::Required("<action>".into()))?;
            if !admitted.contains(&token.as_str()) {
                return Err(ArgError::BadValue("<action>".into(), token.clone()));
            }
            action = Some(token.clone());
            rest = after;
        }
        let mut flags = BTreeMap::new();
        let mut it = rest.iter();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .or_else(|| arg.strip_prefix('-'))
                .ok_or_else(|| ArgError::Malformed(arg.clone()))?;
            if key.is_empty() {
                return Err(ArgError::Malformed(arg.clone()));
            }
            if SWITCHES.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| ArgError::Malformed(format!("--{key} needs a value")))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Parsed {
            command: command.clone(),
            action,
            flags,
        })
    }

    /// The raw string value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A mandatory string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Required(key.into()))
    }

    /// An optional typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(key.into(), v.into())),
        }
    }

    /// A boolean switch.
    pub fn switch(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let p = Parsed::parse(&to_args("solve --data x.json -k 5 --json")).unwrap();
        assert_eq!(p.command, "solve");
        assert_eq!(p.get("data"), Some("x.json"));
        assert_eq!(p.get_or("k", 1usize).unwrap(), 5);
        assert!(p.switch("json"));
        assert!(!p.switch("svg"));
    }

    #[test]
    fn rejects_unknown_command() {
        assert!(matches!(
            Parsed::parse(&to_args("frobnicate --x 1")),
            Err(ArgError::UnknownCommand(_))
        ));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(matches!(
            Parsed::parse(&to_args("solve --data")),
            Err(ArgError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(matches!(
            Parsed::parse(&to_args("solve stray")),
            Err(ArgError::Malformed(_))
        ));
    }

    #[test]
    fn typed_defaults_and_errors() {
        let p = Parsed::parse(&to_args("solve --tau 0.7")).unwrap();
        assert_eq!(p.get_or("tau", 0.5f64).unwrap(), 0.7);
        assert_eq!(p.get_or("k", 10usize).unwrap(), 10);
        let bad = Parsed::parse(&to_args("solve --tau seven")).unwrap();
        assert!(matches!(
            bad.get_or("tau", 0.5f64),
            Err(ArgError::BadValue(_, _))
        ));
    }

    #[test]
    fn require_reports_missing() {
        let p = Parsed::parse(&to_args("generate")).unwrap();
        assert!(matches!(p.require("out"), Err(ArgError::Required(_))));
    }

    #[test]
    fn action_commands_take_one_action_token() {
        let p = Parsed::parse(&to_args("snapshot save --out x.mc2s")).unwrap();
        assert_eq!(p.command, "snapshot");
        assert_eq!(p.action.as_deref(), Some("save"));
        assert_eq!(p.get("out"), Some("x.mc2s"));
        // Plain commands never get an action.
        let p = Parsed::parse(&to_args("solve --tau 0.7")).unwrap();
        assert_eq!(p.action, None);
    }

    #[test]
    fn action_commands_reject_missing_or_unknown_actions() {
        assert!(matches!(
            Parsed::parse(&to_args("snapshot")),
            Err(ArgError::Required(_))
        ));
        assert!(matches!(
            Parsed::parse(&to_args("snapshot frobnicate --out x")),
            Err(ArgError::BadValue(_, _))
        ));
        // The action slot does not make other commands accept positionals.
        assert!(matches!(
            Parsed::parse(&to_args("serve stray")),
            Err(ArgError::Malformed(_))
        ));
    }
}
