//! Implementation of the `mc2ls` command-line tool.
//!
//! Subcommands:
//!
//! ```text
//! mc2ls generate --preset california --scale 0.1 --out data.json
//! mc2ls stats    --data data.json
//! mc2ls solve    --data data.json --candidates 100 --facilities 200 \
//!                -k 10 --tau 0.7 [--method iqt] [--svg map.svg]
//! mc2ls convert  --checkins checkins.tsv --out data.json [--bounds ny|ca]
//! ```
//!
//! All work happens in [`run`], which takes the argument list and an output
//! writer — the binary is a thin wrapper, and the test suite drives `run`
//! directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{ArgError, Parsed};

use std::io::Write;

/// Entry point shared by the binary and the tests. Returns the process
/// exit code.
pub fn run<W: Write>(args: &[String], out: &mut W) -> i32 {
    let parsed = match Parsed::parse(args) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            let _ = writeln!(out, "{}", args::USAGE);
            return 2;
        }
    };
    match commands::dispatch(&parsed, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}
