//! Property-based tests for the geometry substrate.

use mc2ls_geo::{Circle, Point, Rect, Square};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-500.0f64..500.0, -500.0f64..500.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), pt()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn rect_min_le_max_distance(r in rect(), p in pt()) {
        prop_assert!(r.min_distance(&p) <= r.max_distance(&p) + 1e-12);
    }

    #[test]
    fn rect_min_distance_zero_iff_contained(r in rect(), p in pt()) {
        if r.contains(&p) {
            prop_assert_eq!(r.min_distance(&p), 0.0);
        } else {
            prop_assert!(r.min_distance(&p) > 0.0);
        }
    }

    /// min_distance is a true lower bound on the distance to any contained point.
    #[test]
    fn rect_min_distance_bounds_member_points(r in rect(), p in pt(), q in pt()) {
        // Clamp q into the rectangle to get an arbitrary member point.
        let member = Point::new(q.x.clamp(r.min.x, r.max.x), q.y.clamp(r.min.y, r.max.y));
        prop_assert!(r.min_distance(&p) <= p.distance(&member) + 1e-9);
        prop_assert!(r.max_distance(&p) >= p.distance(&member) - 1e-9);
    }

    #[test]
    fn union_contains_both(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn bounding_contains_all_points(pts in prop::collection::vec(pt(), 1..50)) {
        let mbr = Rect::bounding(&pts).unwrap();
        for p in &pts {
            prop_assert!(mbr.contains(p));
        }
    }

    #[test]
    fn inflate_preserves_containment(r in rect(), p in pt(), d in 0.0f64..100.0) {
        if r.contains(&p) {
            prop_assert!(r.inflate(d).contains(&p));
        }
        // Inflation by the point's distance always captures it.
        prop_assert!(r.inflate(r.min_distance(&p) + 1e-6).contains(&p));
    }

    #[test]
    fn circle_rect_intersection_agrees_with_sampling(c in pt(), radius in 0.1f64..50.0, r in rect()) {
        let circle = Circle::new(c, radius);
        // The nearest rectangle point to the centre decides intersection.
        let nearest = Point::new(
            c.x.clamp(r.min.x, r.max.x),
            c.y.clamp(r.min.y, r.max.y),
        );
        prop_assert_eq!(circle.intersects_rect(&r), circle.contains(&nearest));
    }

    /// Lemma 2's geometric core: a circle with radius = diagonal centred
    /// anywhere inside a square covers the whole square.
    #[test]
    fn diagonal_circle_covers_square(origin in pt(), side in 0.1f64..50.0, fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let sq = Square::new(origin, side);
        let inside = Point::new(origin.x + fx * side, origin.y + fy * side);
        let circle = Circle::new(inside, sq.diagonal() + 1e-9);
        prop_assert!(circle.covers_rect(&sq.rect()));
    }

    #[test]
    fn quadrants_tile_parent(origin in pt(), side in 0.1f64..50.0, fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let sq = Square::new(origin, side);
        let p = Point::new(origin.x + fx * side, origin.y + fy * side);
        let idx = sq.quadrant_of(&p);
        // Assigned quadrant contains the point (up to boundary fuzz)...
        prop_assert!(sq.quadrants()[idx].rect().inflate(1e-9).contains(&p));
        // ...and the index is unique by construction (no other check needed:
        // quadrant_of is a pure function of the comparison against centre).
    }

    #[test]
    fn square_diagonal_halves_in_children(origin in pt(), side in 0.1f64..50.0) {
        let sq = Square::new(origin, side);
        for child in sq.quadrants() {
            prop_assert!((child.diagonal() * 2.0 - sq.diagonal()).abs() < 1e-9);
        }
    }
}
