//! Hilbert-curve codes over quad subdivisions of a [`Square`] — the
//! alternative block ordering of the verification substrate.
//!
//! Morton order (z-order) is cheap but takes long diagonal jumps between
//! quadrants, which can spread spatially close positions across blocks and
//! loosen per-block MBRs. The Hilbert curve visits the same grid cells with
//! unit steps only, so consecutive positions are always adjacent cells; the
//! `BENCH_verify` experiment measures whether that tightens block MBRs
//! enough to lower the blocked kernel's open rate.
//!
//! The cell a point occupies is computed by [`grid_coords`] — the *same*
//! floating-point midpoint descent as [`morton_code`](crate::morton_code) —
//! so the two orderings always agree on cell assignment bit for bit; only
//! the order of cells along the curve differs.

use crate::morton::grid_coords;
use crate::{Point, Square};

/// The Hilbert-curve index of `p`'s grid cell under a `depth`-level quad
/// subdivision of `root` (a `2^depth × 2^depth` grid; callers keep
/// `depth ≤ 31` so the index fits `2·depth` bits).
///
/// # Examples
/// ```
/// use mc2ls_geo::{hilbert_code, Point, Square};
///
/// let root = Square::new(Point::ORIGIN, 8.0);
/// // The curve starts in the SW corner cell.
/// assert_eq!(hilbert_code(&root, 3, &Point::new(0.1, 0.1)), 0);
/// ```
pub fn hilbert_code(root: &Square, depth: usize, p: &Point) -> u64 {
    debug_assert!(depth <= 31, "hilbert depth {depth} exceeds 31");
    if depth == 0 {
        return 0;
    }
    let (cx, cy) = grid_coords(root, depth, p);
    hilbert_index(1u64 << depth, cx, cy)
}

/// The classic xy→d walk: per level, pick the quadrant's position along the
/// curve, then rotate/reflect the coordinate frame into that quadrant's
/// sub-curve orientation.
fn hilbert_index(n: u64, mut x: u64, mut y: u64) -> u64 {
    let mut d = 0u64;
    let mut s = n / 2;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Codes over the full grid must be a permutation of `0..n²` in which
    /// consecutive cells are unit-Manhattan neighbours — the defining
    /// property of the Hilbert traversal (Morton fails it at every quadrant
    /// boundary).
    #[test]
    fn full_grid_is_a_unit_step_permutation() {
        for depth in [1usize, 2, 3, 5] {
            let n = 1u64 << depth;
            let mut cells = vec![(0u64, 0u64); (n * n) as usize];
            let mut seen = vec![false; (n * n) as usize];
            for x in 0..n {
                for y in 0..n {
                    let d = hilbert_index(n, x, y);
                    assert!(!seen[d as usize], "duplicate code {d} at depth {depth}");
                    seen[d as usize] = true;
                    cells[d as usize] = (x, y);
                }
            }
            for pair in cells.windows(2) {
                let (ax, ay) = pair[0];
                let (bx, by) = pair[1];
                let step = ax.abs_diff(bx) + ay.abs_diff(by);
                assert_eq!(step, 1, "non-unit step at depth {depth}: {pair:?}");
            }
        }
    }

    #[test]
    fn code_reflects_the_shared_cell_descent() {
        let root = Square::new(Point::new(-3.0, 2.0), 8.0);
        for p in [
            Point::new(-2.5, 2.5),
            Point::new(4.9, 9.9),
            Point::new(1.0, 6.0), // exactly on every split line
            Point::new(0.999, 6.001),
        ] {
            let (cx, cy) = grid_coords(&root, 4, &p);
            assert_eq!(hilbert_code(&root, 4, &p), hilbert_index(1 << 4, cx, cy));
        }
    }

    #[test]
    fn zero_depth_and_degenerate_squares_are_total() {
        let root = Square::new(Point::ORIGIN, 1.0);
        assert_eq!(hilbert_code(&root, 0, &Point::new(0.7, 0.3)), 0);
        // A zero-side root maps every point to the same cell, hence the
        // same code — identical positions keep their original order.
        let degenerate = Square::new(Point::new(1.0, 1.0), 0.0);
        let a = hilbert_code(&degenerate, 4, &Point::new(1.0, 1.0));
        let b = hilbert_code(&degenerate, 4, &Point::new(1.0, 1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_points_get_nearby_codes() {
        let root = Square::new(Point::ORIGIN, 16.0);
        let a = hilbert_code(&root, 5, &Point::new(1.0, 1.0));
        let b = hilbert_code(&root, 5, &Point::new(1.2, 0.8));
        let far = hilbert_code(&root, 5, &Point::new(15.0, 15.0));
        assert!(a.abs_diff(b) < a.abs_diff(far));
    }
}
