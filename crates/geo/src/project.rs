//! Geographic projection helpers.
//!
//! The paper's datasets store `⟨latitude, longitude⟩` check-ins; every
//! algorithmic component of this workspace works on a planar km grid. The
//! [`Equirectangular`] projection maps a geographic region of city/state
//! scale onto that grid with sub-percent distortion, which is more than
//! enough fidelity for influence radii of a few kilometres.

use crate::Point;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle (haversine) distance between two `(lat, lon)` pairs in
/// degrees, returned in km. Used to validate the planar projection and by
/// the dataset loaders' sanity checks.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

/// Equirectangular projection anchored at a reference latitude/longitude.
///
/// `x = R·Δλ·cos(φ₀)`, `y = R·Δφ` — locally distance-preserving around the
/// anchor, which dataset loaders place at the region centroid.
#[derive(Debug, Clone, Copy)]
pub struct Equirectangular {
    ref_lat_rad: f64,
    ref_lon_rad: f64,
    cos_ref_lat: f64,
}

impl Equirectangular {
    /// Creates a projection anchored at `(ref_lat, ref_lon)` in degrees.
    pub fn new(ref_lat: f64, ref_lon: f64) -> Self {
        let ref_lat_rad = ref_lat.to_radians();
        Equirectangular {
            ref_lat_rad,
            ref_lon_rad: ref_lon.to_radians(),
            cos_ref_lat: ref_lat_rad.cos(),
        }
    }

    /// Projects `(lat, lon)` in degrees to planar km coordinates.
    pub fn project(&self, lat: f64, lon: f64) -> Point {
        let x = EARTH_RADIUS_KM * (lon.to_radians() - self.ref_lon_rad) * self.cos_ref_lat;
        let y = EARTH_RADIUS_KM * (lat.to_radians() - self.ref_lat_rad);
        Point::new(x, y)
    }

    /// Inverse projection from planar km back to `(lat, lon)` degrees.
    pub fn unproject(&self, p: &Point) -> (f64, f64) {
        let lat = (self.ref_lat_rad + p.y / EARTH_RADIUS_KM).to_degrees();
        let lon = (self.ref_lon_rad + p.x / (EARTH_RADIUS_KM * self.cos_ref_lat)).to_degrees();
        (lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distance() {
        // NYC (40.7128, -74.0060) to Philadelphia (39.9526, -75.1652): ~130 km.
        let d = haversine_km(40.7128, -74.0060, 39.9526, -75.1652);
        assert!((d - 129.6).abs() < 2.0, "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(haversine_km(37.0, -122.0, 37.0, -122.0), 0.0);
    }

    #[test]
    fn projection_roundtrip() {
        let proj = Equirectangular::new(40.7, -74.0);
        let p = proj.project(40.75, -73.95);
        let (lat, lon) = proj.unproject(&p);
        assert!((lat - 40.75).abs() < 1e-9);
        assert!((lon - -73.95).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_local_distance() {
        let proj = Equirectangular::new(40.7, -74.0);
        // Two points ~5 km apart near the anchor.
        let a = proj.project(40.70, -74.00);
        let b = proj.project(40.74, -73.97);
        let planar = a.distance(&b);
        let sphere = haversine_km(40.70, -74.00, 40.74, -73.97);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 0.005, "relative error {rel_err}");
    }

    #[test]
    fn anchor_maps_to_origin() {
        let proj = Equirectangular::new(34.0, -118.0);
        let p = proj.project(34.0, -118.0);
        assert!(p.distance(&Point::ORIGIN) < 1e-9);
    }
}
