use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle — the paper's minimum bounding rectangle (MBR).
///
/// Rectangles are closed regions: boundary points count as contained. A
/// rectangle with `min == max` is a valid degenerate rectangle (a point),
/// which occurs for single-position users.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalising the order.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A degenerate rectangle covering exactly `p`.
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// The MBR of a non-empty point set; `None` for an empty slice.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut r = Rect::point(*first);
        for p in rest {
            r.expand_to(p);
        }
        Some(r)
    }

    /// Grows the rectangle in place so it also covers `p`.
    #[inline]
    pub fn expand_to(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Width along x, in km.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y, in km.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in km².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (`width + height`); the classic R-tree "margin".
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Length of the diagonal, in km.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.min.distance(&self.max)
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// The four corner points in counter-clockwise order from `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `other` is entirely inside `self` (boundaries allowed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// True when the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Exact minimum Euclidean distance from `p` to the rectangle
    /// (0 when `p` is inside).
    ///
    /// This is the test behind the NIB pruning region: a facility `v` cannot
    /// influence a user whose every position is farther than `mMR`, and
    /// `min_distance(v) > mMR` over the user's MBR certifies that.
    #[inline]
    pub fn min_distance(&self, p: &Point) -> f64 {
        self.min_distance_sq(p).sqrt()
    }

    /// Squared version of [`Rect::min_distance`].
    #[inline]
    pub fn min_distance_sq(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Exact maximum Euclidean distance from `p` to any point of the
    /// rectangle. Used by the IA region: if the farthest corner of the MBR is
    /// within `mMR` of a facility, every position certainly is.
    #[inline]
    pub fn max_distance(&self, p: &Point) -> f64 {
        self.max_distance_sq(p).sqrt()
    }

    /// Squared version of [`Rect::max_distance`].
    #[inline]
    pub fn max_distance_sq(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// The rectangle grown by `delta` on every side.
    ///
    /// `□_NIR(ABCD)` from the paper (Lemma 3) is exactly
    /// `ABCD.inflate(NIR)`: the MBR of the NIR-rounded square.
    pub fn inflate(&self, delta: f64) -> Rect {
        debug_assert!(delta >= 0.0, "inflate takes a non-negative delta");
        Rect {
            min: Point::new(self.min.x - delta, self.min.y - delta),
            max: Point::new(self.max.x + delta, self.max.y + delta),
        }
    }

    /// Counts how many of `points` fall inside the rectangle.
    pub fn count_contained(&self, points: &[Point]) -> usize {
        points.iter().filter(|p| self.contains(p)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn new_normalises_corners() {
        let a = Rect::new(Point::new(3.0, 4.0), Point::new(1.0, 2.0));
        assert_eq!(a.min, Point::new(1.0, 2.0));
        assert_eq!(a.max, Point::new(3.0, 4.0));
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(4.0, 2.0),
        ];
        let b = Rect::bounding(&pts).unwrap();
        assert_eq!(b, r(-2.0, 0.5, 4.0, 5.0));
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn geometry_measures() {
        let a = r(0.0, 0.0, 3.0, 4.0);
        assert_eq!(a.width(), 3.0);
        assert_eq!(a.height(), 4.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(a.margin(), 7.0);
        assert!((a.diagonal() - 5.0).abs() < 1e-12);
        assert_eq!(a.center(), Point::new(1.5, 2.0));
    }

    #[test]
    fn contains_is_closed() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.contains(&Point::new(0.0, 0.0)));
        assert!(a.contains(&Point::new(1.0, 1.0)));
        assert!(a.contains(&Point::new(0.5, 1.0)));
        assert!(!a.contains(&Point::new(1.0 + 1e-9, 1.0)));
    }

    #[test]
    fn intersects_touching_edges() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.intersects(&r(1.0, 0.0, 2.0, 1.0)));
        assert!(!a.intersects(&r(1.1, 0.0, 2.0, 1.0)));
        assert!(a.intersects(&r(0.25, 0.25, 0.75, 0.75)));
    }

    #[test]
    fn min_distance_inside_is_zero() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_distance(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_distance(&Point::new(0.0, 2.0)), 0.0);
    }

    #[test]
    fn min_distance_outside() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // Directly right of the rectangle.
        assert!((a.min_distance(&Point::new(5.0, 1.0)) - 3.0).abs() < 1e-12);
        // Diagonal from the corner (3-4-5 triangle).
        assert!((a.min_distance(&Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_distance_reaches_farthest_corner() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // From the min corner, the farthest point is the max corner.
        assert!((a.max_distance(&Point::new(0.0, 0.0)) - 8f64.sqrt()).abs() < 1e-12);
        // From the centre, every corner is sqrt(2) away.
        assert!((a.max_distance(&Point::new(1.0, 1.0)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn inflate_grows_every_side() {
        let a = r(0.0, 0.0, 1.0, 1.0).inflate(0.5);
        assert_eq!(a, r(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    fn corners_in_ccw_order() {
        let a = r(0.0, 0.0, 1.0, 2.0);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(1.0, 0.0));
        assert_eq!(c[2], Point::new(1.0, 2.0));
        assert_eq!(c[3], Point::new(0.0, 2.0));
    }

    #[test]
    fn count_contained_counts_boundary() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.5),
            Point::new(2.0, 2.0),
        ];
        assert_eq!(a.count_contained(&pts), 2);
    }

    #[test]
    fn degenerate_point_rect() {
        let a = Rect::point(Point::new(1.0, 1.0));
        assert_eq!(a.area(), 0.0);
        assert!(a.contains(&Point::new(1.0, 1.0)));
        assert!((a.min_distance(&Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }
}
