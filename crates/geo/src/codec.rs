//! Little-endian binary codec substrate for the snapshot persistence layer.
//!
//! Every serialized artifact in the workspace (`InfluenceSets`,
//! `InvertedIndex`, `PositionBlocks`, `IQuadTree`, and the `.mc2s` snapshot
//! container in `mc2ls-serve`) encodes through this module so the byte
//! layout is pinned once: **all integers and floats are little-endian**,
//! lengths are `u64`, and every decode path returns a typed
//! [`CodecError`] — corrupt or truncated input must never panic.
//!
//! The writer/reader pair is deliberately minimal: a growable byte buffer
//! on the write side and a bounds-checked cursor over a borrowed slice on
//! the read side. No reflection, no self-describing format — each artifact
//! owns its field order and checks its own invariants after decoding.

use std::fmt;

/// Typed decoding failure. Every variant carries enough context to report
/// *where* the input stopped making sense without any panic machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a read of `need` bytes at `offset` completed.
    Truncated {
        /// Byte offset the read started at.
        offset: usize,
        /// Bytes the read needed.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A decoded value violates a structural invariant of the artifact.
    Invalid(&'static str),
    /// A decoded length does not fit the platform's `usize` or exceeds the
    /// remaining input (a corrupt length prefix, not a short buffer).
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The length the input claimed.
        claimed: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset, need, have } => write!(
                f,
                "truncated input: need {need} bytes at offset {offset}, {have} remain"
            ),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            CodecError::BadLength { what, claimed } => {
                write!(f, "implausible length {claimed} while decoding {what}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer pre-sized for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `usize` as `u64` (lossless on every supported platform).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the slice's `u32`s.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a `u64` length prefix followed by the slice's `f64`s.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a `u64` length prefix followed by UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian cursor over a borrowed byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CodecError::Invalid`] unless the whole input was
    /// consumed — trailing garbage is a corruption signal, not padding.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing bytes after the last field"))
        }
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                offset: self.pos,
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `f64` from its little-endian IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` length prefix and checks it is plausible: it must fit
    /// `usize` and the remaining input must hold at least `elem_size`
    /// bytes per element, so a corrupt prefix fails *here* with
    /// [`CodecError::BadLength`] instead of attempting a huge allocation.
    pub fn get_len(&mut self, what: &'static str, elem_size: usize) -> Result<usize, CodecError> {
        let claimed = self.get_u64()?;
        let len = usize::try_from(claimed).map_err(|_| CodecError::BadLength { what, claimed })?;
        let need = len.checked_mul(elem_size);
        match need {
            Some(bytes) if bytes <= self.remaining() => Ok(len),
            _ => Err(CodecError::BadLength { what, claimed }),
        }
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn get_u32_vec(&mut self, what: &'static str) -> Result<Vec<u32>, CodecError> {
        let len = self.get_len(what, 4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn get_f64_vec(&mut self, what: &'static str) -> Result<Vec<f64>, CodecError> {
        let len = self.get_len(what, 8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.get_len(what, 1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("string is not UTF-8"))
    }

    /// Reads a length-prefixed `u32` array **without copying**: the
    /// returned [`U32View`] borrows the element bytes directly from the
    /// input slice. The wire layout is identical to
    /// [`ByteWriter::put_u32_slice`] / [`ByteReader::get_u32_vec`]; only
    /// the ownership differs.
    pub fn get_u32_view(&mut self, what: &'static str) -> Result<U32View<'a>, CodecError> {
        let len = self.get_len(what, 4)?;
        // `get_len` proved `len * 4 <= remaining`, so neither the multiply
        // nor the take can fail here.
        let bytes = self.take(len * 4)?;
        Ok(U32View { bytes, len })
    }
}

/// A zero-copy view of a little-endian `u32` array borrowed from encoded
/// bytes (the element payload of [`ByteWriter::put_u32_slice`]).
///
/// Element access decodes through [`u32::from_le_bytes`] on a 4-byte
/// chunk — safe Rust, no alignment requirement on the backing slice, and
/// on little-endian targets it compiles to a plain load. This is the
/// substrate of the snapshot zero-copy load path: CSR offset/id arrays are
/// *viewed* in place instead of being copied into owned `Vec<u32>`s.
#[derive(Debug, Clone, Copy)]
pub struct U32View<'a> {
    /// Exactly `4 * len` bytes.
    bytes: &'a [u8],
    len: usize,
}

impl<'a> U32View<'a> {
    /// A view over `bytes`, which must hold a whole number of `u32`s.
    pub fn over(bytes: &'a [u8]) -> Result<U32View<'a>, CodecError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(CodecError::Invalid("u32 view over a non-multiple-of-4"));
        }
        Ok(U32View {
            bytes,
            len: bytes.len() / 4,
        })
    }

    /// Number of `u32` elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element `i`. Panics when `i >= len()`, like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.bytes[4 * i..4 * i + 4]);
        u32::from_le_bytes(a)
    }

    /// Iterates the elements of `start..end` in order. Panics when the
    /// range is out of bounds, like slice indexing.
    #[inline]
    pub fn iter_range(&self, start: usize, end: usize) -> impl Iterator<Item = u32> + 'a {
        self.bytes[4 * start..4 * end]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Iterates all elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        self.iter_range(0, self.len)
    }

    /// Copies the elements into an owned vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the per-section checksum of the `.mc2s` snapshot container.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`,
/// generated at compile time. One table lookup per input byte replaces the
/// 8-iteration bit loop; with per-section CRC on the zero-copy load path,
/// checksumming must not dominate a load that no longer decodes payloads.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            let mask = 0u32.wrapping_sub(c & 1);
            c = (c >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state update: feed `state = 0xFFFF_FFFF`, then chunks,
/// then XOR the result with `0xFFFF_FFFF` (what [`crc32`] does in one go).
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        let idx = ((state ^ u32::from(b)) & 0xFF) as usize;
        state = (state >> 8) ^ CRC32_TABLE[idx];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.1);
        w.put_str("héllo");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_f64_slice(&[0.5, f64::MAX]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Ok(7));
        assert_eq!(r.get_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Ok(u64::MAX - 1));
        assert_eq!(r.get_f64().map(f64::to_bits), Ok((-0.1f64).to_bits()));
        assert_eq!(r.get_string("s"), Ok("héllo".to_string()));
        assert_eq!(r.get_u32_vec("v"), Ok(vec![1, 2, 3]));
        assert_eq!(r.get_f64_vec("f"), Ok(vec![0.5, f64::MAX]));
        assert_eq!(r.expect_end(), Ok(()));
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u64(12);
        let mut bytes = w.into_bytes();
        bytes.truncate(5);
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_u64(),
            Err(CodecError::Truncated {
                offset: 0,
                need: 8,
                have: 5
            })
        ));
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 u32 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.get_u32_vec("ids").unwrap_err();
        assert!(matches!(err, CodecError::BadLength { what: "ids", .. }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Ok(1));
        assert!(r.expect_end().is_err());
        assert_eq!(r.get_u8(), Ok(2));
        assert_eq!(r.expect_end(), Ok(()));
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The classic CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming in chunks equals one-shot.
        let mut state = 0xFFFF_FFFFu32;
        state = crc32_update(state, b"1234");
        state = crc32_update(state, b"56789");
        assert_eq!(state ^ 0xFFFF_FFFF, 0xCBF4_3926);
    }

    #[test]
    fn u32_view_reads_in_place_and_matches_the_owned_decode() {
        let vs: Vec<u32> = (0..37).map(|i| (i * 0x0101_0101) ^ 0xA5).collect();
        let mut w = ByteWriter::new();
        w.put_u32_slice(&vs);
        w.put_u8(0xEE); // trailing field the view must not swallow
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let view = r.get_u32_view("vs").unwrap();
        assert_eq!(view.len(), vs.len());
        assert_eq!(view.to_vec(), vs);
        assert_eq!(view.get(0), vs[0]);
        assert_eq!(view.get(36), vs[36]);
        assert_eq!(view.iter_range(5, 9).collect::<Vec<_>>(), vs[5..9]);
        assert_eq!(r.get_u8(), Ok(0xEE));
        assert_eq!(r.expect_end(), Ok(()));

        // The owned decode of the same bytes agrees.
        let mut r2 = ByteReader::new(&bytes);
        assert_eq!(r2.get_u32_vec("vs").unwrap(), vs);
    }

    #[test]
    fn u32_view_rejects_bad_lengths() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_u32_view("vs"),
            Err(CodecError::BadLength { what: "vs", .. })
        ));
        assert!(U32View::over(&[1, 2, 3]).is_err());
        assert_eq!(U32View::over(&[1, 0, 0, 0]).unwrap().get(0), 1);
    }

    #[test]
    fn negative_zero_and_nan_bits_survive() {
        let mut w = ByteWriter::new();
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64().map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert_eq!(r.get_f64().map(f64::to_bits), Ok(f64::NAN.to_bits()));
    }
}
