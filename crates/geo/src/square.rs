use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// An axis-aligned square addressed by its **diagonal** length.
///
/// The paper parameterises everything about the IQuad-tree by the diagonal
/// `d̂` of a node's square (the position-count threshold is
/// `η(τ, PF, d̂)`, the leaf size is "diagonal = d̂", a parent has diagonal
/// `2·d̂`, …), so this type stores the diagonal as the primary measure and
/// derives the side length from it (`side = d̂ / √2`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Square {
    /// Lower-left corner.
    pub origin: Point,
    /// Side length in km.
    pub side: f64,
}

impl Square {
    /// Creates a square from its lower-left corner and side length.
    pub fn new(origin: Point, side: f64) -> Self {
        debug_assert!(side >= 0.0, "square side must be non-negative");
        Square { origin, side }
    }

    /// Creates a square from its lower-left corner and **diagonal** length
    /// (the paper's `d̂`).
    pub fn with_diagonal(origin: Point, diagonal: f64) -> Self {
        Square::new(origin, diagonal / std::f64::consts::SQRT_2)
    }

    /// Diagonal length `d̂ = side·√2`.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.side * std::f64::consts::SQRT_2
    }

    /// The square as a [`Rect`].
    #[inline]
    pub fn rect(&self) -> Rect {
        Rect {
            min: self.origin,
            max: Point::new(self.origin.x + self.side, self.origin.y + self.side),
        }
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.rect().contains(p)
    }

    /// Centre of the square.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            self.origin.x + self.side * 0.5,
            self.origin.y + self.side * 0.5,
        )
    }

    /// Splits into the four child squares of a quad subdivision, ordered
    /// `[SW, SE, NW, NE]`.
    pub fn quadrants(&self) -> [Square; 4] {
        let h = self.side * 0.5;
        let Point { x, y } = self.origin;
        [
            Square::new(Point::new(x, y), h),
            Square::new(Point::new(x + h, y), h),
            Square::new(Point::new(x, y + h), h),
            Square::new(Point::new(x + h, y + h), h),
        ]
    }

    /// Index (0–3, same order as [`Square::quadrants`]) of the child square
    /// containing `p`. Points on a split line go to the higher-indexed child
    /// so that every point of the square maps to exactly one child.
    pub fn quadrant_of(&self, p: &Point) -> usize {
        let c = self.center();
        let east = p.x >= c.x;
        let north = p.y >= c.y;
        (north as usize) * 2 + east as usize
    }

    /// The `q`-th child square (same indexing as [`Square::quadrants`]),
    /// without materialising all four.
    pub fn child(&self, q: usize) -> Square {
        debug_assert!(q < 4);
        let h = self.side * 0.5;
        Square::new(
            Point::new(
                self.origin.x + (q & 1) as f64 * h,
                self.origin.y + (q >> 1) as f64 * h,
            ),
            h,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_roundtrip() {
        let s = Square::with_diagonal(Point::ORIGIN, 2.0);
        assert!((s.diagonal() - 2.0).abs() < 1e-12);
        assert!((s.side - 2.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rect_and_center() {
        let s = Square::new(Point::new(1.0, 1.0), 2.0);
        assert_eq!(
            s.rect(),
            Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0))
        );
        assert_eq!(s.center(), Point::new(2.0, 2.0));
    }

    #[test]
    fn quadrants_partition_square() {
        let s = Square::new(Point::ORIGIN, 2.0);
        let q = s.quadrants();
        assert_eq!(q[0].origin, Point::new(0.0, 0.0));
        assert_eq!(q[1].origin, Point::new(1.0, 0.0));
        assert_eq!(q[2].origin, Point::new(0.0, 1.0));
        assert_eq!(q[3].origin, Point::new(1.0, 1.0));
        for c in &q {
            assert_eq!(c.side, 1.0);
        }
        // Child diagonal is half the parent diagonal — the relation the
        // IQuad-tree η-hash relies on.
        assert!((q[0].diagonal() * 2.0 - s.diagonal()).abs() < 1e-12);
    }

    #[test]
    fn quadrant_of_assigns_uniquely() {
        let s = Square::new(Point::ORIGIN, 2.0);
        assert_eq!(s.quadrant_of(&Point::new(0.5, 0.5)), 0);
        assert_eq!(s.quadrant_of(&Point::new(1.5, 0.5)), 1);
        assert_eq!(s.quadrant_of(&Point::new(0.5, 1.5)), 2);
        assert_eq!(s.quadrant_of(&Point::new(1.5, 1.5)), 3);
        // Centre point goes to NE (index 3).
        assert_eq!(s.quadrant_of(&Point::new(1.0, 1.0)), 3);
    }

    #[test]
    fn child_matches_quadrants() {
        let s = Square::new(Point::new(-3.0, 2.0), 8.0);
        for (q, expected) in s.quadrants().into_iter().enumerate() {
            assert_eq!(s.child(q), expected);
        }
    }

    #[test]
    fn quadrant_of_matches_quadrants() {
        let s = Square::new(Point::new(-1.0, -1.0), 4.0);
        let qs = s.quadrants();
        for p in [
            Point::new(-0.5, -0.5),
            Point::new(2.9, -0.9),
            Point::new(0.0, 2.5),
            Point::new(2.0, 2.0),
        ] {
            let idx = s.quadrant_of(&p);
            assert!(qs[idx].contains(&p), "point {p:?} not in quadrant {idx}");
        }
    }
}
