use crate::{Point, Rect};

/// Incremental bounding-box accumulator over streams of points.
///
/// Dataset loaders and generators use this to compute the study region (the
/// paper's "entire spatial region" with area `S` in the complexity analysis)
/// without materialising all points first.
#[derive(Debug, Clone, Default)]
pub struct Extent {
    rect: Option<Rect>,
    count: usize,
}

impl Extent {
    /// An empty extent.
    pub fn new() -> Self {
        Extent::default()
    }

    /// Folds one point into the extent.
    pub fn add(&mut self, p: Point) {
        match &mut self.rect {
            Some(r) => r.expand_to(&p),
            None => self.rect = Some(Rect::point(p)),
        }
        self.count += 1;
    }

    /// Folds every point of a slice into the extent.
    pub fn add_all(&mut self, points: &[Point]) {
        for p in points {
            self.add(*p);
        }
    }

    /// The accumulated bounding rectangle; `None` when no point was added.
    pub fn rect(&self) -> Option<Rect> {
        self.rect
    }

    /// Number of points folded in so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The bounding rectangle inflated by `pad` km on every side; `None`
    /// when empty. Index roots use a small pad so boundary points never sit
    /// exactly on the root border.
    pub fn padded_rect(&self, pad: f64) -> Option<Rect> {
        self.rect.map(|r| r.inflate(pad))
    }
}

impl FromIterator<Point> for Extent {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        let mut e = Extent::new();
        for p in iter {
            e.add(p);
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_extent_has_no_rect() {
        let e = Extent::new();
        assert!(e.rect().is_none());
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn accumulates_points() {
        let mut e = Extent::new();
        e.add(Point::new(1.0, 1.0));
        e.add(Point::new(-1.0, 3.0));
        e.add(Point::new(0.0, 0.0));
        assert_eq!(e.count(), 3);
        assert_eq!(
            e.rect().unwrap(),
            Rect::new(Point::new(-1.0, 0.0), Point::new(1.0, 3.0))
        );
    }

    #[test]
    fn from_iterator() {
        let e: Extent = (0..4).map(|i| Point::new(i as f64, -(i as f64))).collect();
        assert_eq!(e.count(), 4);
        assert_eq!(
            e.rect().unwrap(),
            Rect::new(Point::new(0.0, -3.0), Point::new(3.0, 0.0))
        );
    }

    #[test]
    fn padded_rect() {
        let mut e = Extent::new();
        e.add(Point::ORIGIN);
        assert_eq!(
            e.padded_rect(1.0).unwrap(),
            Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0))
        );
    }
}
