use serde::{Deserialize, Serialize};

/// A position in the planar working coordinate system, in kilometres.
///
/// The paper describes each moving-user position as a
/// `⟨latitude, longitude⟩` pair; loaders project those onto a local plane
/// (see [`crate::project`]) so that all index structures and pruning rules
/// can use cheap Euclidean distances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East–west coordinate in km.
    pub x: f64,
    /// North–south coordinate in km.
    pub y: f64,
}

impl Point {
    /// Creates a point from `x`/`y` km coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`, in km.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred in hot paths (range filtering, nearest scans) because it
    /// avoids the `sqrt`; compare against squared radii.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns the point translated by `(dx, dy)`.
    #[inline]
    pub fn translated(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// True when both coordinates are finite (not NaN/±inf).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(-3.5, 7.25);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn squared_distance_matches_distance() {
        let a = Point::new(0.3, -0.4);
        let b = Point::ORIGIN;
        assert!((a.distance_sq(&b) - 0.25).abs() < 1e-12);
        assert!((a.distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        let m = a.midpoint(&b);
        assert_eq!(m, Point::new(1.0, 2.0));
        assert!((a.distance(&m) - b.distance(&m)).abs() < 1e-12);
    }

    #[test]
    fn translated_moves_by_offset() {
        let a = Point::new(1.0, 1.0).translated(-2.0, 3.0);
        assert_eq!(a, Point::new(-1.0, 4.0));
    }

    #[test]
    fn finite_detects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn tuple_conversion() {
        let p: Point = (3.0, 4.0).into();
        assert_eq!(p, Point::new(3.0, 4.0));
    }
}
