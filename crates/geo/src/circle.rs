use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// An influence circle `φ(v, d_radius)` (paper §V-A): the disk centred on an
/// abstract facility within which a position contributes at least
/// `PF(d_radius)` influence probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Centre of the circle (facility/candidate position).
    pub center: Point,
    /// Radius in km; non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; a zero radius yields a degenerate single-point disk.
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "circle radius must be non-negative");
        Circle { center, radius }
    }

    /// True when `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// The tight axis-aligned bounding box of the circle; used to turn
    /// circular range queries into rectangle queries plus an exact filter.
    pub fn bounding_rect(&self) -> Rect {
        Rect::point(self.center).inflate(self.radius)
    }

    /// True when the circle and the closed rectangle share at least one
    /// point (exact test via point–rect minimum distance).
    #[inline]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        rect.min_distance_sq(&self.center) <= self.radius * self.radius
    }

    /// True when the whole rectangle lies inside the circle, i.e. the
    /// farthest rectangle corner is within the radius. This is exactly the
    /// covering argument of Lemma 2 (a circle of radius `d̂` centred anywhere
    /// in a square with diagonal `d̂` covers the square).
    #[inline]
    pub fn covers_rect(&self, rect: &Rect) -> bool {
        rect.max_distance_sq(&self.center) <= self.radius * self.radius
    }

    /// Counts positions of `points` inside the circle.
    pub fn count_contained(&self, points: &[Point]) -> usize {
        let r2 = self.radius * self.radius;
        points
            .iter()
            .filter(|p| self.center.distance_sq(p) <= r2)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_boundary_and_interior() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.contains(&Point::new(1.0, 0.0)));
        assert!(c.contains(&Point::new(0.5, 0.5)));
        assert!(!c.contains(&Point::new(1.0, 0.1)));
    }

    #[test]
    fn bounding_rect_is_tight() {
        let c = Circle::new(Point::new(1.0, 2.0), 3.0);
        let b = c.bounding_rect();
        assert_eq!(b, Rect::new(Point::new(-2.0, -1.0), Point::new(4.0, 5.0)));
    }

    #[test]
    fn intersects_rect_edge_cases() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Rectangle touching the circle at (1, 0).
        assert!(c.intersects_rect(&Rect::new(Point::new(1.0, -1.0), Point::new(2.0, 1.0))));
        // Rectangle fully inside.
        assert!(c.intersects_rect(&Rect::new(Point::new(-0.1, -0.1), Point::new(0.1, 0.1))));
        // Corner just out of reach: nearest corner at (0.8, 0.8), distance ~1.13.
        assert!(!c.intersects_rect(&Rect::new(Point::new(0.8, 0.8), Point::new(2.0, 2.0))));
    }

    #[test]
    fn covers_rect_requires_farthest_corner() {
        let c = Circle::new(Point::new(0.0, 0.0), 2f64.sqrt());
        let unit = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!(c.covers_rect(&unit));
        let shifted = Rect::new(Point::new(0.5, 0.5), Point::new(1.5, 1.5));
        assert!(!c.covers_rect(&shifted));
    }

    #[test]
    fn lemma2_covering_argument() {
        // A circle of radius d (the diagonal) centred at ANY corner of a
        // square with diagonal d covers the square.
        let square = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let d = square.diagonal();
        for corner in square.corners() {
            assert!(Circle::new(corner, d).covers_rect(&square));
        }
        // And centred anywhere inside as well.
        assert!(Circle::new(Point::new(0.3, 0.7), d).covers_rect(&square));
    }

    #[test]
    fn count_contained() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, -1.0),
            Point::new(1.0, 1.0),
        ];
        assert_eq!(c.count_contained(&pts), 3);
    }
}
