//! Morton (z-order) codes over quad subdivisions of a [`Square`].
//!
//! Two consumers share this routine: the IQuad-tree builder in `mc2ls-index`
//! (which needs codes bit-identical to its `quadrant_of` traversal descent)
//! and the blocked verification substrate in `mc2ls-influence` (which
//! Morton-sorts each user's positions so consecutive positions are spatially
//! close, making per-block MBRs tight).

use crate::{Point, Square};

/// The Morton (z-order) code of `p` under a `depth`-level quad subdivision
/// of `root`.
///
/// The descent is a scalar replica of [`Square::quadrant_of`] +
/// [`Square::child`], evaluating the *same* floating-point expressions
/// (`center = origin + side·0.5`, `child.origin = origin + (q&1)·h`) so the
/// result is bit-identical to the struct-based descent, just without
/// materialising squares. Points on a split line go to the higher-indexed
/// child, exactly as `quadrant_of` assigns them.
///
/// Each level contributes two bits (`north ‖ east`), so the code fits in
/// `2·depth` bits; callers keep `depth ≤ 31`.
///
/// # Examples
/// ```
/// use mc2ls_geo::{morton_code, Point, Square};
///
/// let root = Square::new(Point::ORIGIN, 8.0);
/// // SW quadrant at every level ⇒ code 0.
/// assert_eq!(morton_code(&root, 3, &Point::new(0.1, 0.1)), 0);
/// // NE quadrant at every level ⇒ all bits set.
/// assert_eq!(morton_code(&root, 3, &Point::new(7.9, 7.9)), 0b111111);
/// ```
pub fn morton_code(root: &Square, depth: usize, p: &Point) -> u64 {
    let (mut ox, mut oy, mut side) = (root.origin.x, root.origin.y, root.side);
    let mut code = 0u64;
    for _ in 0..depth {
        let h = side * 0.5;
        let east = (p.x >= ox + h) as u64;
        let north = (p.y >= oy + h) as u64;
        code = (code << 2) | (north << 1) | east;
        ox += east as f64 * h;
        oy += north as f64 * h;
        side = h;
    }
    code
}

/// The `(column, row)` grid cell of `p` under the same `depth`-level quad
/// subdivision [`morton_code`] walks — the per-level `east`/`north` bits
/// accumulated as integer coordinates on the `2^depth × 2^depth` grid.
///
/// Because the descent evaluates the *identical* floating-point midpoint
/// expressions, interleaving the returned coordinate bits reproduces
/// `morton_code` exactly; the Hilbert ordering reuses these cells so the two
/// orderings always agree on which grid cell a point occupies (only the
/// ordering of cells differs).
pub fn grid_coords(root: &Square, depth: usize, p: &Point) -> (u64, u64) {
    let (mut ox, mut oy, mut side) = (root.origin.x, root.origin.y, root.side);
    let (mut cx, mut cy) = (0u64, 0u64);
    for _ in 0..depth {
        let h = side * 0.5;
        let east = (p.x >= ox + h) as u64;
        let north = (p.y >= oy + h) as u64;
        cx = (cx << 1) | east;
        cy = (cy << 1) | north;
        ox += east as f64 * h;
        oy += north as f64 * h;
        side = h;
    }
    (cx, cy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_matches_geometric_descent() {
        let root = Square::new(Point::new(-3.0, 2.0), 8.0);
        for p in [
            Point::new(-2.5, 2.5),
            Point::new(4.9, 9.9),
            Point::new(1.0, 6.0), // exactly on every split line
            Point::new(0.999, 6.001),
        ] {
            let code = morton_code(&root, 4, &p);
            let mut sq = root;
            for level in 0..4 {
                let q = sq.quadrant_of(&p);
                assert_eq!(
                    ((code >> (2 * (3 - level))) & 3) as usize,
                    q,
                    "level {level} point {p:?}"
                );
                sq = sq.child(q);
            }
        }
    }

    #[test]
    fn zero_depth_is_zero() {
        let root = Square::new(Point::ORIGIN, 1.0);
        assert_eq!(morton_code(&root, 0, &Point::new(0.7, 0.3)), 0);
    }

    #[test]
    fn degenerate_square_is_total() {
        // A zero-side root (identical positions) still yields a code —
        // every point lands in the NE child at every level.
        let root = Square::new(Point::new(1.0, 1.0), 0.0);
        let c = morton_code(&root, 2, &Point::new(1.0, 1.0));
        assert_eq!(c, 0b1111);
    }

    #[test]
    fn grid_coords_interleave_to_the_morton_code() {
        let root = Square::new(Point::new(-3.0, 2.0), 8.0);
        for p in [
            Point::new(-2.5, 2.5),
            Point::new(4.9, 9.9),
            Point::new(1.0, 6.0),
            Point::new(0.999, 6.001),
        ] {
            let depth = 6;
            let (cx, cy) = grid_coords(&root, depth, &p);
            let mut interleaved = 0u64;
            for level in (0..depth).rev() {
                let east = (cx >> level) & 1;
                let north = (cy >> level) & 1;
                interleaved = (interleaved << 2) | (north << 1) | east;
            }
            assert_eq!(interleaved, morton_code(&root, depth, &p), "{p:?}");
        }
    }

    #[test]
    fn order_is_spatially_coherent() {
        // Points in the same deep quadrant sort adjacently.
        let root = Square::new(Point::ORIGIN, 16.0);
        let sw_a = morton_code(&root, 5, &Point::new(1.0, 1.0));
        let sw_b = morton_code(&root, 5, &Point::new(1.2, 0.8));
        let ne = morton_code(&root, 5, &Point::new(15.0, 15.0));
        assert!(sw_a.abs_diff(sw_b) < sw_a.abs_diff(ne));
    }
}
