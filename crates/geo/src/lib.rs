//! Planar geometry substrate for the MC²LS reproduction.
//!
//! Every spatial structure in this workspace (R-tree, quad-tree, IQuad-tree,
//! the IA/NIB/IS/NIR pruning regions) is built on the small set of primitives
//! defined here:
//!
//! * [`Point`] — a position in a planar coordinate system measured in
//!   kilometres. Real latitude/longitude data is projected into this system
//!   with [`project::Equirectangular`].
//! * [`Rect`] — an axis-aligned rectangle (the paper's MBRs), with exact
//!   point–rectangle minimum/maximum distances, inflation, and containment.
//! * [`Circle`] — influence circles `φ(v, d)` from the paper.
//! * [`Square`] — axis-aligned squares addressed by their *diagonal* length,
//!   matching how the paper parameterises IQuad-tree nodes (`d̂` is always a
//!   diagonal).
//! * [`Extent`] — incremental bounding-box accumulation for datasets.
//! * [`morton_code`] / [`hilbert_code`] — z-order and Hilbert-curve codes
//!   over quad subdivisions, shared by the IQuad-tree builder and the
//!   blocked verification substrate (both orderings derive their grid cell
//!   from the same [`grid_coords`] midpoint descent).
//! * [`codec`] — the little-endian binary reader/writer (plus CRC-32) the
//!   snapshot persistence layer pins every artifact's byte layout on.
//!
//! All distances are Euclidean in km. The substrate is `f64` throughout; the
//! algorithms never require exact arithmetic because every pruning rule is
//! paired with an exact verification phase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
pub mod codec;
mod extent;
mod hilbert;
mod morton;
mod point;
pub mod project;
mod rect;
mod square;

pub use circle::Circle;
pub use codec::{ByteReader, ByteWriter, CodecError, U32View};
pub use extent::Extent;
pub use hilbert::hilbert_code;
pub use morton::{grid_coords, morton_code};
pub use point::Point;
pub use rect::Rect;
pub use square::Square;

/// Relative tolerance used by approximate float comparisons in tests and by
/// degenerate-geometry guards (e.g. zero-area MBRs).
pub const EPSILON: f64 = 1e-9;
