//! Ablation: selection/acceleration strategies beyond the paper's default —
//! standard greedy vs CELF lazy greedy vs FM-sketch greedy, plus the
//! crossbeam-parallel exhaustive influence computation.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::core::{algorithms, greedy, parallel, sketch};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_selectors");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    let problem = mc2ls_bench::problem_with(&dataset, 300, 200, 20, 0.7);
    let (sets, _, _) = algorithms::influence_sets(&problem, Method::Iqt(IqtConfig::default()));

    group.bench_function("greedy", |b| b.iter(|| greedy::select(&sets, 20)));
    group.bench_function("celf", |b| b.iter(|| greedy::select_lazy(&sets, 20)));
    group.bench_function("fm-sketch", |b| {
        b.iter(|| sketch::select_sketched(&sets, 20, 32))
    });

    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("baseline-parallel", threads),
            &problem,
            |b, p| b.iter(|| parallel::baseline_influence_sets_parallel(p, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
