//! Parallel scaling bench: the chunked IQuad-tree pipeline and the chunked
//! exhaustive baseline at 1/2/4/8 worker threads. On an N-core machine the
//! per-iteration time should drop until the thread count reaches N; the
//! output is always bit-identical to the serial run (see
//! `mc2ls-core/tests/parallel_equivalence.rs`), so only speed varies.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    let problem = common::problem(&dataset, 0.7);
    for threads in [1usize, 2, 4, 8] {
        for (method, label) in [
            (Method::Iqt(IqtConfig::iqt(2.0)), "IQT"),
            (Method::Baseline, "Baseline"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("threads={threads}")),
                &problem,
                |b, p| b.iter(|| influence_sets_threaded(p, method, threads)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
