//! Fig. 14 bench: running time vs k, plus the greedy-vs-CELF ablation.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    for k in [5usize, 15, 25] {
        let problem = mc2ls_bench::problem_with(&dataset, 100, 200, k, 0.7);
        group.bench_with_input(
            BenchmarkId::new("IQT-greedy", format!("k={k}")),
            &problem,
            |b, p| b.iter(|| solve_with(p, Method::Iqt(IqtConfig::iqt(2.0)), Selector::Greedy)),
        );
        group.bench_with_input(
            BenchmarkId::new("IQT-celf", format!("k={k}")),
            &problem,
            |b, p| b.iter(|| solve_with(p, Method::Iqt(IqtConfig::iqt(2.0)), Selector::LazyGreedy)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
