//! Fig. 8 bench: user-pruning (IQT-C) vs facility-pruning (k-CIFP) across τ.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_rule_comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    for tau in [0.3, 0.7] {
        let problem = common::problem(&dataset, tau);
        group.bench_with_input(
            BenchmarkId::new("IQT-C", format!("tau={tau}")),
            &problem,
            |b, p| b.iter(|| solve(p, Method::Iqt(IqtConfig::iqt_c(2.0)))),
        );
        group.bench_with_input(
            BenchmarkId::new("k-CIFP", format!("tau={tau}")),
            &problem,
            |b, p| b.iter(|| solve(p, Method::KCifp)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
