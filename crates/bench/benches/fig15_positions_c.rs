//! Fig. 15 bench: effect of the per-user position count r (dataset C).

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

const MIN_AVAILABLE: usize = 30;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_positions_c");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    let (candidates, facilities) = dataset.sample_sites_disjoint(100, 200, 1);
    for r in [10usize, 20, 30] {
        let users = sampler::resample_positions(&dataset.users, MIN_AVAILABLE, r, 31);
        if users.is_empty() {
            continue;
        }
        let problem = Problem::new(
            users,
            facilities.clone(),
            candidates.clone(),
            10,
            0.7,
            Sigmoid::paper_default(),
        );
        group.bench_with_input(
            BenchmarkId::new("IQT", format!("r={r}")),
            &problem,
            |b, p| b.iter(|| solve(p, Method::Iqt(IqtConfig::iqt(2.0)))),
        );
        group.bench_with_input(
            BenchmarkId::new("Baseline", format!("r={r}")),
            &problem,
            |b, p| b.iter(|| solve(p, Method::Baseline)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
