//! Fig. 7 bench: the pruning pipeline of the three IQT variants.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_pruning_rules");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, dataset) in [("C", common::dataset_c()), ("N", common::dataset_n())] {
        let problem = common::problem(&dataset, 0.7);
        for (label, cfg) in [
            ("IQT-C", IqtConfig::iqt_c(2.0)),
            ("IQT", IqtConfig::iqt(2.0)),
            ("IQT-PINO", IqtConfig::iqt_pino(2.0)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &problem, |b, p| {
                b.iter(|| solve(p, Method::Iqt(cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
