//! Microbench for the verification kernels: the plain early-stop kernel
//! (`influences`) vs. the blocked kernels on the full candidate × user
//! workload at paper-default τ. The blocked kernel is swept over block
//! sizes (lane/fast-PF variant) and then A/B'd at the default size against
//! its exact-`exp` twin (`influences_blocked_exact`), the per-position
//! scalar walk (`influences_blocked_scalar`), and the Hilbert block
//! ordering. Block construction is benchmarked separately — it is a
//! once-per-problem cost, while the decision kernels run per pair.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::influence::{influences_blocked_exact, influences_blocked_scalar};
use mc2ls::prelude::*;
use std::hint::black_box;

const BLOCK_SIZES: [usize; 3] = [4, 16, 32];

fn bench_verify_kernels(c: &mut Criterion) {
    let dataset = common::dataset_c();
    let problem = common::problem(&dataset, 0.7);
    let n_users = problem.n_users();

    let mut group = c.benchmark_group("verify_kernels");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("early_stop", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for v in &problem.candidates {
                for o in 0..n_users {
                    hits += u32::from(influences(
                        &problem.pf,
                        black_box(v),
                        problem.users[o].positions(),
                        problem.tau,
                    ));
                }
            }
            hits
        })
    });

    for bs in BLOCK_SIZES {
        let blocks = PositionBlocks::build(&problem.users, bs);
        group.bench_with_input(BenchmarkId::new("blocked", bs), &blocks, |b, blocks| {
            let mut scratch = BlockScratch::new();
            b.iter(|| {
                let mut hits = 0u32;
                for v in &problem.candidates {
                    for o in 0..n_users as u32 {
                        hits += u32::from(influences_blocked(
                            &problem.pf,
                            black_box(v),
                            blocks,
                            o,
                            problem.tau,
                            &mut scratch,
                        ));
                    }
                }
                hits
            })
        });
    }

    // The lane kernel's exact-exp twin, the scalar reference walk, and the
    // Hilbert ordering, all at the default block size — same decisions,
    // different cost profiles.
    type Kernel = fn(&Sigmoid, &Point, &PositionBlocks, u32, f64, &mut BlockScratch) -> bool;
    let default_blocks = PositionBlocks::build(&problem.users, DEFAULT_BLOCK_SIZE);
    let hilbert_blocks =
        PositionBlocks::build_ordered(&problem.users, DEFAULT_BLOCK_SIZE, BlockOrdering::Hilbert);
    let variants: [(&str, Kernel, &PositionBlocks); 3] = [
        ("blocked_exact", influences_blocked_exact, &default_blocks),
        ("blocked_scalar", influences_blocked_scalar, &default_blocks),
        ("blocked_hilbert", influences_blocked, &hilbert_blocks),
    ];
    for (label, kernel, blocks) in variants {
        group.bench_function(label, |b| {
            let mut scratch = BlockScratch::new();
            b.iter(|| {
                let mut hits = 0u32;
                for v in &problem.candidates {
                    for o in 0..n_users as u32 {
                        hits += u32::from(kernel(
                            &problem.pf,
                            black_box(v),
                            blocks,
                            o,
                            problem.tau,
                            &mut scratch,
                        ));
                    }
                }
                hits
            })
        });
    }

    for bs in BLOCK_SIZES {
        group.bench_with_input(BenchmarkId::new("build_blocks", bs), &bs, |b, &bs| {
            b.iter(|| PositionBlocks::build(black_box(&problem.users), bs))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_verify_kernels);
criterion_main!(benches);
