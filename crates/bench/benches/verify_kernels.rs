//! Microbench for the verification kernels: the plain early-stop kernel
//! (`influences`) vs. the blocked kernel (`influences_blocked`) at several
//! block sizes, on the full candidate × user workload at paper-default τ.
//! Block construction is benchmarked separately — it is a once-per-problem
//! cost, while the decision kernels run per pair.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;
use std::hint::black_box;

const BLOCK_SIZES: [usize; 3] = [4, 16, 32];

fn bench_verify_kernels(c: &mut Criterion) {
    let dataset = common::dataset_c();
    let problem = common::problem(&dataset, 0.7);
    let n_users = problem.n_users();

    let mut group = c.benchmark_group("verify_kernels");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("early_stop", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for v in &problem.candidates {
                for o in 0..n_users {
                    hits += u32::from(influences(
                        &problem.pf,
                        black_box(v),
                        problem.users[o].positions(),
                        problem.tau,
                    ));
                }
            }
            hits
        })
    });

    for bs in BLOCK_SIZES {
        let blocks = PositionBlocks::build(&problem.users, bs);
        group.bench_with_input(BenchmarkId::new("blocked", bs), &blocks, |b, blocks| {
            let mut scratch = BlockScratch::new();
            b.iter(|| {
                let mut hits = 0u32;
                for v in &problem.candidates {
                    for o in 0..n_users as u32 {
                        hits += u32::from(influences_blocked(
                            &problem.pf,
                            black_box(v),
                            blocks,
                            o,
                            problem.tau,
                            &mut scratch,
                        ));
                    }
                }
                hits
            })
        });
    }

    for bs in BLOCK_SIZES {
        group.bench_with_input(BenchmarkId::new("build_blocks", bs), &bs, |b, &bs| {
            b.iter(|| PositionBlocks::build(black_box(&problem.users), bs))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_verify_kernels);
criterion_main!(benches);
