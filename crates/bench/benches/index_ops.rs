//! Index-operation micro-benchmarks beyond Table II: range-query and
//! nearest-query throughput of every index, IQuad-tree traversal, and the
//! streaming insert path.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::index::{GridIndex, IQuadTree, KdTree, QuadTree, RTree};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_ops");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let dataset = common::dataset_c();
    let positions: Vec<(u32, Point)> = dataset
        .users
        .iter()
        .flat_map(|u| u.positions().iter().copied())
        .enumerate()
        .map(|(i, p)| (i as u32, p))
        .collect();
    let extent = dataset.extent();
    let window = Rect::new(
        extent.center(),
        Point::new(extent.center().x + 20.0, extent.center().y + 20.0),
    );

    // Range-query throughput over the full position set.
    let rtree = RTree::bulk_load(positions.clone());
    let quad = QuadTree::build(positions.clone());
    let grid = GridIndex::build(positions.clone(), 2.0);
    let kd = KdTree::build(positions.clone());
    group.bench_function(BenchmarkId::new("range", "RTree"), |b| {
        b.iter(|| rtree.range_rect(&window))
    });
    group.bench_function(BenchmarkId::new("range", "QuadTree"), |b| {
        b.iter(|| quad.range_rect(&window))
    });
    group.bench_function(BenchmarkId::new("range", "Grid"), |b| {
        b.iter(|| grid.range_rect(&window))
    });
    group.bench_function(BenchmarkId::new("range", "KdTree"), |b| {
        b.iter(|| kd.range_rect(&window))
    });

    // Nearest-query throughput.
    let probe = extent.center();
    group.bench_function(BenchmarkId::new("nearest", "RTree"), |b| {
        b.iter(|| rtree.nearest(&probe))
    });
    group.bench_function(BenchmarkId::new("nearest", "KdTree"), |b| {
        b.iter(|| kd.nearest(&probe))
    });

    // IQuad-tree traverse (cold cache each iteration: rebuild is too slow,
    // so probe rotating leaves to defeat the per-leaf cache).
    let pf = Sigmoid::paper_default();
    let mut iqt = IQuadTree::build(&dataset.users, &pf, 0.7, 2.0);
    let probes: Vec<Point> = (0..64)
        .map(|i| {
            Point::new(
                extent.min.x + extent.width() * ((i * 37) % 64) as f64 / 64.0,
                extent.min.y + extent.height() * ((i * 23) % 64) as f64 / 64.0,
            )
        })
        .collect();
    let mut cursor = 0usize;
    group.bench_function("iqt_traverse", |b| {
        b.iter(|| {
            cursor = (cursor + 1) % probes.len();
            iqt.traverse(&probes[cursor])
        })
    });

    // Streaming insert of one median-size user.
    let template = dataset
        .users
        .iter()
        .min_by_key(|u| u.len().abs_diff(20))
        .expect("non-empty dataset")
        .clone();
    group.bench_function("iqt_insert_user", |b| {
        b.iter(|| iqt.insert_user(&template, &pf, 0.7).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
