//! Selection-phase scaling: rescan vs CELF vs decremental inverted-CSR
//! greedy as the budget `k` grows, plus the inverted-index build cost on
//! its own.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::core::{algorithms, greedy, InvertedIndex};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    let problem = mc2ls_bench::problem_with(&dataset, 300, 200, 20, 0.7);
    let (sets, _, _) = algorithms::influence_sets(&problem, Method::Iqt(IqtConfig::default()));

    for k in [5usize, 20, 60] {
        let k = k.min(sets.n_candidates());
        group.bench_with_input(BenchmarkId::new("rescan", k), &k, |b, &k| {
            b.iter(|| greedy::select(&sets, k))
        });
        group.bench_with_input(BenchmarkId::new("celf", k), &k, |b, &k| {
            b.iter(|| greedy::select_lazy(&sets, k))
        });
        group.bench_with_input(BenchmarkId::new("decremental", k), &k, |b, &k| {
            b.iter(|| greedy::select_decremental(&sets, k))
        });
    }

    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("inverted-build", threads),
            &threads,
            |b, &t| b.iter(|| InvertedIndex::build(&sets, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
