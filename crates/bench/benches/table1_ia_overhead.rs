//! Table I bench: IQT vs IQT-PINO as abstract facilities grow (τ = 0.9).

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_ia_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_n();
    for total in [300usize, 700, 1100] {
        let problem = mc2ls_bench::problem_with(&dataset, 100, total - 100, 10, 0.9);
        group.bench_with_input(
            BenchmarkId::new("IQT", format!("vF={total}")),
            &problem,
            |b, p| b.iter(|| solve(p, Method::Iqt(IqtConfig::iqt(2.0)))),
        );
        group.bench_with_input(
            BenchmarkId::new("IQT-PINO", format!("vF={total}")),
            &problem,
            |b, p| b.iter(|| solve(p, Method::Iqt(IqtConfig::iqt_pino(2.0)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
