//! Fig. 10 bench: running time vs |Ω| for all four algorithms.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_users");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    let (candidates, facilities) = dataset.sample_sites_disjoint(100, 200, 1);
    for frac in [0.5f64, 1.0] {
        let n = (dataset.users.len() as f64 * frac) as usize;
        let users = sampler::subset_users(&dataset.users, n, 7);
        let problem = Problem::new(
            users,
            facilities.clone(),
            candidates.clone(),
            10,
            0.7,
            Sigmoid::paper_default(),
        );
        for (method, label) in mc2ls_bench::paper_methods() {
            group.bench_with_input(
                BenchmarkId::new(label, format!("users={n}")),
                &problem,
                |b, p| b.iter(|| solve(p, method)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
