//! Ablation: the combined single-window k-CIFP (this repo's default)
//! against the paper-faithful two-query Algorithm 1 — quantifies how much
//! of the Rust k-CIFP's strength comes from merging the IA and NIB range
//! queries.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::core::algorithms::kcifp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kcifp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, dataset) in [("C", common::dataset_c()), ("N", common::dataset_n())] {
        let problem = common::problem(&dataset, 0.7);
        group.bench_with_input(BenchmarkId::new("combined", name), &problem, |b, p| {
            b.iter(|| kcifp::influence_sets(p))
        });
        group.bench_with_input(BenchmarkId::new("two-query", name), &problem, |b, p| {
            b.iter(|| kcifp::influence_sets_faithful(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
