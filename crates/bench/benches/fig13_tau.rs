//! Fig. 13 bench: running time vs τ.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_tau");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    for tau in [0.1, 0.5, 0.9] {
        let problem = common::problem(&dataset, tau);
        for (method, label) in [
            (Method::KCifp, "k-CIFP"),
            (Method::Iqt(IqtConfig::iqt(2.0)), "IQT"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("tau={tau}")),
                &problem,
                |b, p| b.iter(|| solve(p, method)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
