//! Table II bench: index construction — IQuad-tree over users vs R-tree,
//! quad-tree, and grid over sites.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::index::{GridIndex, KdTree, QuadTree};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_index_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, dataset) in [("C", common::dataset_c()), ("N", common::dataset_n())] {
        let pf = Sigmoid::paper_default();
        group.bench_with_input(BenchmarkId::new("IQuadTree", name), &dataset, |b, d| {
            b.iter(|| IQuadTree::build(&d.users, &pf, 0.7, 2.0))
        });
        let sites: Vec<(u32, Point)> = dataset
            .sample_sites(300, 1)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        group.bench_with_input(BenchmarkId::new("RTree-bulk", name), &sites, |b, s| {
            b.iter(|| RTree::bulk_load(s.clone()))
        });
        group.bench_with_input(BenchmarkId::new("RTree-insert", name), &sites, |b, s| {
            b.iter(|| {
                let mut t = RTree::new();
                for (id, p) in s {
                    t.insert(*id, *p);
                }
                t
            })
        });
        group.bench_with_input(BenchmarkId::new("QuadTree", name), &sites, |b, s| {
            b.iter(|| QuadTree::build(s.clone()))
        });
        group.bench_with_input(BenchmarkId::new("Grid", name), &sites, |b, s| {
            b.iter(|| GridIndex::build(s.clone(), 2.0))
        });
        group.bench_with_input(BenchmarkId::new("KdTree", name), &sites, |b, s| {
            b.iter(|| KdTree::build(s.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
