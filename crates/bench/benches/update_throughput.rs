//! Microbench for the incremental update engine: events absorbed per
//! second for each event kind (check-in move, insert, delete) plus the
//! compaction fold, against the full influence rebuild the engine
//! replaces. The engine state is reset per iteration batch via clone, so
//! each measured event applies to an identical state.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use mc2ls::core::{UpdateEngine, UserUpdate};
use mc2ls::prelude::*;
use std::hint::black_box;

fn bench_update_throughput(c: &mut Criterion) {
    let dataset = common::dataset_c();
    let problem = common::problem(&dataset, 0.7);
    let engine = UpdateEngine::new(&problem, 1);
    let n = engine.n_slots() as u32;

    let mut group = c.benchmark_group("update_throughput");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("checkin_move", |b| {
        let mut fresh = engine.clone();
        let mut o = 0u32;
        b.iter(|| {
            let mut positions = fresh.positions_of(o % n).expect("slot alive").to_vec();
            let last = positions[positions.len() - 1];
            positions.push(Point::new(last.x + 0.25, last.y - 0.25));
            let r = fresh.apply(UserUpdate::Move {
                user: o % n,
                positions,
            });
            o += 1;
            black_box(r).expect("move applies")
        })
    });

    group.bench_function("insert", |b| {
        let mut fresh = engine.clone();
        b.iter(|| {
            let r = fresh.apply(UserUpdate::Insert {
                positions: vec![Point::new(0.5, -0.5), Point::new(1.0, 0.0)],
            });
            black_box(r).expect("insert applies")
        })
    });

    group.bench_function("delete_insert_pair", |b| {
        let mut fresh = engine.clone();
        b.iter(|| {
            let o = fresh
                .apply(UserUpdate::Insert {
                    positions: vec![Point::new(0.5, -0.5)],
                })
                .expect("insert applies");
            black_box(fresh.apply(UserUpdate::Delete { user: o }).expect("alive"))
        })
    });

    group.bench_function("compact_after_burst", |b| {
        b.iter(|| {
            let mut fresh = engine.clone();
            for i in 0..8u32 {
                let mut positions = fresh.positions_of(i % n).expect("slot alive").to_vec();
                positions.push(Point::new(0.1 * f64::from(i), -0.1));
                fresh
                    .apply(UserUpdate::Move {
                        user: i % n,
                        positions,
                    })
                    .expect("move applies");
            }
            black_box(fresh.compact())
        })
    });

    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let (sets, _, _) =
                influence_sets_threaded(black_box(&problem), Method::Iqt(IqtConfig::default()), 1);
            sets
        })
    });

    group.finish();
}

criterion_group!(benches, bench_update_throughput);
criterion_main!(benches);
