//! Fig. 11 bench: running time vs |C|.

#[path = "common.rs"]
mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc2ls::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_candidates");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dataset = common::dataset_c();
    for n_c in [100usize, 300, 500] {
        let problem = mc2ls_bench::problem_with(&dataset, n_c, 200, 10, 0.7);
        for (method, label) in [
            (Method::KCifp, "k-CIFP"),
            (Method::Iqt(IqtConfig::iqt(2.0)), "IQT"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("C={n_c}")),
                &problem,
                |b, p| b.iter(|| solve(p, method)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
