// Not a bench target: shared helpers included by the bench files via
// `#[path = "common.rs"] mod common;`. Each bench uses a subset, hence
// the dead_code allowance.
#![allow(dead_code)]

use mc2ls::prelude::*;
use std::sync::Arc;

/// Reduced dataset scales so `cargo bench` completes quickly while keeping
/// both datasets' behavioural character.
pub const SCALE_C: f64 = 0.05;
pub const SCALE_N: f64 = 0.2;

pub fn dataset_c() -> Arc<Dataset> {
    mc2ls_bench::california(SCALE_C)
}

pub fn dataset_n() -> Arc<Dataset> {
    mc2ls_bench::new_york(SCALE_N)
}

/// Default-parameter problem over a dataset at bench scale.
pub fn problem(dataset: &Dataset, tau: f64) -> Problem {
    mc2ls_bench::problem_with(dataset, 100, 200, 10, tau)
}
