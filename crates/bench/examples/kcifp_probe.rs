//! Dev probe: combined vs faithful two-query k-CIFP at full scale.

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::core::algorithms::kcifp;
use std::time::Instant;

fn main() {
    for (name, dataset) in [
        ("C", mc2ls_bench::california(1.0)),
        ("N", mc2ls_bench::new_york(1.0)),
    ] {
        let problem = mc2ls_bench::default_problem(&dataset);
        for _ in 0..2 {
            let t = Instant::now();
            let (_, s1, _) = kcifp::influence_sets(&problem);
            let combined = t.elapsed();
            let t = Instant::now();
            let (_, s2, _) = kcifp::influence_sets_faithful(&problem);
            let faithful = t.elapsed();
            println!(
                "{name}: combined={combined:?} (verified {}) faithful={faithful:?} (verified {})",
                s1.verified, s2.verified
            );
        }
    }
}
