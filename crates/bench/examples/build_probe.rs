//! Dev probe: IQuad-tree build phases at full scale.

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;
use std::time::Instant;

fn main() {
    let d = mc2ls_bench::california(1.0);
    for _ in 0..3 {
        let t = Instant::now();
        let tree = IQuadTree::build(&d.users, &Sigmoid::paper_default(), 0.7, 2.0);
        let s = tree.stats();
        println!(
            "build {:?}  nodes={} leaves={} depth={} positions={}",
            t.elapsed(),
            s.nodes,
            s.leaves,
            s.depth,
            s.positions
        );
    }
}
