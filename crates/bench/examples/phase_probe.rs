//! Dev probe: phase-time breakdown of each method at full scale.

// A probe example exists to print; sanctioned writer.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;

fn main() {
    for (name, dataset) in [
        ("C", mc2ls_bench::california(1.0)),
        ("N", mc2ls_bench::new_york(1.0)),
    ] {
        let problem = mc2ls_bench::default_problem(&dataset);
        for (method, label) in mc2ls_bench::paper_methods() {
            if matches!(method, Method::Baseline) {
                continue;
            }
            let r = solve(&problem, method);
            println!("{name} {label:<7} total={:>9.1?} idx={:>9.1?} prune={:>9.1?} verify={:>9.1?} select={:>9.1?} verified={} evals={}",
                r.times.total(), r.times.indexing, r.times.pruning, r.times.verification, r.times.selection,
                r.stats.verified, r.stats.prob_evals);
        }
    }
}
