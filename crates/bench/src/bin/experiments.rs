//! Regenerates every table and figure of the MC²LS evaluation.
//!
//! ```sh
//! # everything, paper-scale datasets (takes a few minutes):
//! cargo run --release -p mc2ls-bench --bin experiments -- all
//!
//! # one experiment at reduced scale:
//! cargo run --release -p mc2ls-bench --bin experiments -- fig10 --scale 0.2
//!
//! # list experiments:
//! cargo run --release -p mc2ls-bench --bin experiments -- --list
//! ```
//!
//! Results are printed as aligned tables and written as JSON under
//! `target/experiment-results/` (override with `--out DIR`).

// The experiments driver prints progress and result tables by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls_bench::{experiments, Ctx};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for (id, _) in experiments::all() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 && s <= 1.0 => {
                    ctx.scale_c = s;
                    ctx.scale_n = s;
                }
                _ => return usage("--scale takes a number in (0, 1]"),
            },
            "--scale-c" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 && s <= 1.0 => ctx.scale_c = s,
                _ => return usage("--scale-c takes a number in (0, 1]"),
            },
            "--scale-n" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 && s <= 1.0 => ctx.scale_n = s,
                _ => return usage("--scale-n takes a number in (0, 1]"),
            },
            "--reps" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => ctx.reps = n,
                _ => return usage("--reps takes a positive integer"),
            },
            "--out" => match it.next() {
                Some(dir) => ctx.out_dir = dir.into(),
                None => return usage("--out takes a directory"),
            },
            "all" => wanted.clear(),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => wanted.push(other.to_string()),
        }
    }

    let registry = experiments::all();
    let selected: Vec<_> = if wanted.is_empty() {
        registry
    } else {
        let mut sel = Vec::new();
        for w in &wanted {
            match registry.iter().find(|(id, _)| id == w) {
                Some(entry) => sel.push(*entry),
                None => return usage(&format!("unknown experiment '{w}' (try --list)")),
            }
        }
        sel
    };

    println!(
        "MC2LS experiment harness — dataset scales: C x{}, N x{}; results -> {}",
        ctx.scale_c,
        ctx.scale_n,
        ctx.out_dir.display()
    );
    let started = std::time::Instant::now();
    for (id, run) in selected {
        let t = std::time::Instant::now();
        let result = run(&ctx);
        result.emit(&ctx);
        println!("[{id} done in {:.1?}]", t.elapsed());
    }
    println!(
        "\nall requested experiments finished in {:.1?}",
        started.elapsed()
    );
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments [all|fig7|fig8|fig9|fig10..fig16|table1|table2|figd|quality|BENCH_parallel|BENCH_verify|BENCH_greedy|BENCH_serve|BENCH_update|BENCH_candgen]... \
         [--scale S] [--scale-c S] [--scale-n S] [--reps N] [--out DIR] [--list]"
    );
    ExitCode::FAILURE
}
