//! Console/JSON reporting plumbing shared by all experiments.

use serde_json::{json, Value};
use std::path::PathBuf;

/// Execution context of an experiment run: dataset scales and output dir.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Scale factor for the California-like dataset (1.0 = paper size).
    pub scale_c: f64,
    /// Scale factor for the New-York-like dataset (1.0 = paper size).
    pub scale_n: f64,
    /// Where JSON result files are written.
    pub out_dir: PathBuf,
    /// Timing repetitions per configuration; the median is reported.
    pub reps: usize,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            scale_c: 1.0,
            scale_n: 1.0,
            out_dir: PathBuf::from("target/experiment-results"),
            reps: 1,
        }
    }
}

/// The output of one experiment: an id (`fig7`, `table1`, …), a title, and
/// JSON rows that are both printed and persisted.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id, e.g. `"fig10"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// One JSON object per printed row.
    pub rows: Vec<Value>,
}

impl ExperimentResult {
    /// Prints the rows as an aligned table (keys of the first row define
    /// the columns) and writes `<out_dir>/<id>.json`.
    pub fn emit(&self, ctx: &Ctx) {
        println!("\n=== {} — {} ===", self.id, self.title);
        if self.rows.is_empty() {
            println!("(no rows)");
            return;
        }
        // Keys starting with '_' are persisted to JSON but not printed
        // (used for bulky payloads like scatter samples).
        let keys: Vec<String> = self.rows[0]
            .as_object()
            .map(|o| o.keys().filter(|k| !k.starts_with('_')).cloned().collect())
            .unwrap_or_default();
        // Column widths.
        let mut width: Vec<usize> = keys.iter().map(|k| k.len()).collect();
        let fmt = |v: &Value| -> String {
            match v {
                Value::Number(n) => {
                    if let Some(f) = n.as_f64() {
                        if n.is_f64() {
                            format!("{f:.4}")
                        } else {
                            n.to_string()
                        }
                    } else {
                        n.to_string()
                    }
                }
                Value::String(s) => s.clone(),
                other => other.to_string(),
            }
        };
        for r in &self.rows {
            for (i, k) in keys.iter().enumerate() {
                width[i] = width[i].max(fmt(&r[k]).len());
            }
        }
        let header: Vec<String> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| format!("{:>w$}", k, w = width[i]))
            .collect();
        println!("{}", header.join("  "));
        for r in &self.rows {
            let line: Vec<String> = keys
                .iter()
                .enumerate()
                .map(|(i, k)| format!("{:>w$}", fmt(&r[k]), w = width[i]))
                .collect();
            println!("{}", line.join("  "));
        }

        if let Err(e) = std::fs::create_dir_all(&ctx.out_dir) {
            eprintln!("warning: cannot create {}: {e}", ctx.out_dir.display());
            return;
        }
        let path = ctx.out_dir.join(format!("{}.json", self.id));
        // Every artifact records the detected hardware parallelism and the
        // harness's worker-thread count, so timings from single-core CI
        // runners are interpretable (experiments sweeping threads, like
        // BENCH_parallel, additionally record per-row thread counts).
        match serde_json::to_string_pretty(&json!({
            "id": self.id,
            "title": self.title,
            "scale_c": ctx.scale_c,
            "scale_n": ctx.scale_n,
            "cores": detected_cores(),
            "threads": 1,
            "rows": self.rows,
        })) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialise {}: {e}", self.id),
        }
    }
}

/// The machine's detected hardware parallelism (1 when undetectable).
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builds a JSON row from key/value pairs — tiny sugar over `json!`.
pub fn row(pairs: &[(&str, Value)]) -> Value {
    let mut map = serde_json::Map::new();
    for (k, v) in pairs {
        map.insert((*k).to_string(), v.clone());
    }
    Value::Object(map)
}

/// Incremental row builder for rows with computed column names.
#[derive(Debug, Default)]
pub struct RowBuilder(serde_json::Map<String, Value>);

impl RowBuilder {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cell (insertion order defines column order).
    pub fn set(mut self, key: impl Into<String>, value: Value) -> Self {
        self.0.insert(key.into(), value);
        self
    }

    /// Finishes the row.
    pub fn build(self) -> Value {
        Value::Object(self.0)
    }
}

/// Formats a fraction as a percentage number rounded to 2 decimals.
pub fn percent(f: f64) -> Value {
    serde_json::json!((f * 10_000.0).round() / 100.0)
}
