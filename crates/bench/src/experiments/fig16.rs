//! Fig. 16 — effect of the per-user position count `r` on dataset N; same
//! protocol as Fig. 15. The paper notes only 233 users qualify in N, which
//! blunts the pruning rules' effect — the small `eligible_users` column
//! makes that visible here too.

use crate::{Ctx, ExperimentResult};

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig16(ctx: &Ctx) -> ExperimentResult {
    let mut result = super::fig15::position_count_experiment(
        "fig16",
        "Effect of r (dataset N): time and verification cost",
        crate::new_york(ctx.scale_n),
    );
    result.id = "fig16";
    result
}
