//! Fig. 15 — effect of the per-user position count `r` on dataset C.
//!
//! Protocol (paper §VII-B): keep users with more than 30 positions and
//! randomly sample r ∈ {10, 15, 20, 25, 30} positions from each. Reported:
//! (a) running time per algorithm, (b) verification computation cost
//! (per-position probability evaluations) for IQT.
//!
//! Paper expectations: time and verification cost rise with r; IS improves
//! with position density while NIR drops but stays dominant; IQT leads
//! throughout.

use super::ms;
use crate::{Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig15(ctx: &Ctx) -> ExperimentResult {
    position_count_experiment(
        "fig15",
        "Effect of r (dataset C): time and verification cost",
        crate::california(ctx.scale_c),
    )
}

/// Shared protocol for Fig. 15/16.
pub(super) fn position_count_experiment(
    id: &'static str,
    title: &'static str,
    dataset: std::sync::Arc<Dataset>,
) -> ExperimentResult {
    const MIN_AVAILABLE: usize = 30;
    let mut rows = Vec::new();
    let (candidates, facilities) = dataset.sample_sites_disjoint(
        crate::defaults::N_CANDIDATES,
        crate::defaults::N_FACILITIES,
        crate::defaults::SITE_SEED,
    );
    let eligible = dataset
        .users
        .iter()
        .filter(|u| u.len() > MIN_AVAILABLE)
        .count();
    for r in [10usize, 15, 20, 25, 30] {
        let users = sampler::resample_positions(&dataset.users, MIN_AVAILABLE, r, 31);
        if users.is_empty() {
            continue;
        }
        let problem = Problem::new(
            users,
            facilities.clone(),
            candidates.clone(),
            crate::defaults::K,
            crate::defaults::TAU,
            Sigmoid::paper_default(),
        );
        let mut row = crate::RowBuilder::new()
            .set("r", json!(r))
            .set("eligible_users", json!(eligible));
        let mut reference: Option<Solution> = None;
        for (method, label) in crate::paper_methods() {
            let report = solve(&problem, method);
            row = row
                .set(format!("{label}_ms"), ms(report.times.total()))
                .set(format!("{label}_evals"), json!(report.stats.prob_evals));
            match &reference {
                None => reference = Some(report.solution),
                Some(rf) => assert!(rf.equivalent(&report.solution)),
            }
        }
        rows.push(row.build());
    }
    ExperimentResult { id, title, rows }
}
