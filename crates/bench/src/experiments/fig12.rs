//! Fig. 12 — running time vs the number of existing facilities
//! `|F| ∈ {100..500}`.
//!
//! Paper expectations: trends mirror Fig. 11 but smoother: facility distribution is
//! similar across counts, so the curves change gently.

use crate::{Ctx, ExperimentResult};
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig12(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for n_f in [100usize, 200, 300, 400, 500] {
            let problem = crate::problem_with(
                &dataset,
                crate::defaults::N_CANDIDATES,
                n_f,
                crate::defaults::K,
                crate::defaults::TAU,
            );
            let base = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("|F|", json!(n_f));
            rows.push(super::method_times_row(base, &problem, ctx.reps));
        }
    }
    ExperimentResult {
        id: "fig12",
        title: "Running time vs number of facilities |F|",
        rows,
    }
}
