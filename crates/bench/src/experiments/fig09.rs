//! Fig. 9 — the distribution of the two datasets. The paper shows scatter
//! plots; we report the distribution statistics that drive every pruning
//! effect (uniform vs skewed, MBR ratios, densities) and export a
//! down-sampled scatter to JSON for external plotting.

use crate::{row, Ctx, ExperimentResult};
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig9(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let s = dataset.stats();
        let extent = dataset.extent();
        // Down-sampled position scatter (≤ 2000 points) for plotting.
        let mut scatter = Vec::new();
        let all: Vec<_> = dataset
            .users
            .iter()
            .flat_map(|u| u.positions().iter().copied())
            .collect();
        let step = (all.len() / 2000).max(1);
        for p in all.iter().step_by(step) {
            scatter.push(json!([
                (p.x * 100.0).round() / 100.0,
                (p.y * 100.0).round() / 100.0
            ]));
        }
        rows.push(row(&[
            ("dataset", json!(name)),
            ("users", json!(s.n_users)),
            ("positions", json!(s.n_positions)),
            ("mean_r", json!((s.mean_positions * 100.0).round() / 100.0)),
            ("r_max", json!(s.r_max)),
            (
                "mbr_area_ratio",
                json!((s.mean_mbr_area_ratio * 10_000.0).round() / 10_000.0),
            ),
            (
                "hotspot_share",
                json!((s.hotspot_share * 1_000.0).round() / 1_000.0),
            ),
            (
                "region_km",
                json!((extent.width().max(extent.height()) * 10.0).round() / 10.0),
            ),
            ("scatter_points", json!(scatter.len())),
            ("_scatter", json!(scatter)),
        ]));
    }
    ExperimentResult {
        id: "fig9",
        title: "Dataset distributions (uniform C vs skewed N)",
        rows,
    }
}
