//! `BENCH_update` — incremental update engine vs full rebuild (written to
//! `BENCH_update.json`).
//!
//! The serving question behind the update engine: when one user checks in,
//! moves, appears or leaves, how much verification work does absorbing the
//! event cost, compared with recomputing the influence phase from scratch?
//! Per preset this experiment:
//!
//! * builds the engine once (the ordinary influence pipeline),
//! * replays a deterministic mobility stream — check-in moves against
//!   live users, a sprinkle of inserts and deletes — with a periodic
//!   compaction, timing the whole absorption,
//! * rebuilds the mutated instance from scratch and asserts the engine's
//!   folded state is **bit-identical** (sets, inverted bytes, solution),
//! * reports per-update PF evaluations against the rebuild's, asserting
//!   the engine needs at least [`MIN_EVAL_RATIO`]× fewer per event.
//!
//! The eval counters on both sides are the same metric: per-position
//! probability evaluations inside the verification kernels
//! (`UpdateStats::prob_evals` vs `PruneStats::prob_evals`), so the ratio
//! is exactly "how many events one rebuild is worth".

use crate::{Ctx, ExperimentResult};
use mc2ls::core::{InvertedIndex, UpdateEngine, UserUpdate};
use mc2ls::prelude::*;
use serde_json::json;
use std::time::Instant;

/// Events replayed per preset; compaction fires every [`COMPACT_EVERY`].
const EVENTS: usize = 64;
const COMPACT_EVERY: usize = 16;
/// The headline gate: a rebuild must cost at least this many times the PF
/// evaluations of an absorbed update, on every preset.
const MIN_EVAL_RATIO: f64 = 50.0;

/// Deterministic xorshift stream for event synthesis.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Picks a live slot; the engine is never drained below one user.
fn live_slot(engine: &UpdateEngine<Sigmoid>, rng: &mut Rng) -> u32 {
    let n = engine.n_slots() as u32;
    loop {
        let o = (rng.next() % u64::from(n)) as u32;
        if engine.is_alive(o) {
            return o;
        }
    }
}

/// The event mix of a check-in stream: mostly moves that append one
/// jittered position to a live trajectory, with occasional inserts and
/// deletes (one in eight each).
fn synth_event(engine: &UpdateEngine<Sigmoid>, rng: &mut Rng) -> UserUpdate {
    let roll = rng.next() % 8;
    if roll == 0 {
        let base = engine.users()[live_slot(engine, rng) as usize].positions()[0];
        return UserUpdate::Insert {
            positions: vec![
                Point::new(base.x + rng.unit() - 0.5, base.y + rng.unit() - 0.5),
                Point::new(base.x + rng.unit() - 0.5, base.y + rng.unit() - 0.5),
            ],
        };
    }
    if roll == 1 && engine.n_live() > 1 {
        return UserUpdate::Delete {
            user: live_slot(engine, rng),
        };
    }
    let o = live_slot(engine, rng);
    let mut positions = engine.positions_of(o).expect("live slot").to_vec();
    let last = positions[positions.len() - 1];
    positions.push(Point::new(
        last.x + rng.unit() * 2.0 - 1.0,
        last.y + rng.unit() * 2.0 - 1.0,
    ));
    UserUpdate::Move { user: o, positions }
}

/// Runs the experiment; see the module docs for the protocol.
pub fn update(ctx: &Ctx) -> ExperimentResult {
    let cores = crate::detected_cores();
    let mut rows = Vec::new();
    let cal = crate::california(ctx.scale_c);
    let ny = crate::new_york(ctx.scale_n);
    for (name, dataset) in [("C", &cal), ("N", &ny)] {
        let problem = crate::problem_with(
            dataset,
            crate::defaults::N_CANDIDATES,
            crate::defaults::N_FACILITIES,
            crate::defaults::K,
            crate::defaults::TAU,
        );
        let mut engine = UpdateEngine::new(&problem, 1);
        let mut rng = Rng(0x5851_F42D_4C95_7F2D ^ name.len() as u64);

        // Absorb the stream, compaction included in the timed span — that
        // is the cost a live server actually pays per batch.
        let evals_before = engine.stats().prob_evals;
        let t_updates = Instant::now();
        for i in 0..EVENTS {
            let event = synth_event(&engine, &mut rng);
            engine.apply(event).expect("synthesised events are valid");
            if (i + 1) % COMPACT_EVERY == 0 {
                engine.compact();
            }
        }
        engine.compact();
        let update_time = t_updates.elapsed();
        let stats = engine.stats().clone();
        let update_evals = stats.prob_evals - evals_before;
        let per_update_evals = update_evals as f64 / EVENTS as f64;

        // The from-scratch bar: rebuild the mutated instance and demand
        // bit-identical folded state.
        let mutated = Problem::new(
            engine.users().to_vec(),
            problem.facilities.clone(),
            problem.candidates.clone(),
            problem.k,
            problem.tau,
            problem.pf,
        );
        let t_rebuild = Instant::now();
        let (fresh, prune, _) =
            influence_sets_threaded(&mutated, Method::Iqt(IqtConfig::default()), 1);
        let rebuild_time = t_rebuild.elapsed();
        assert_eq!(
            engine.sets(),
            &fresh,
            "{name}: folded engine state diverged from the rebuild"
        );
        assert_eq!(
            engine.inverted().to_bytes(),
            InvertedIndex::build(&fresh, 1).to_bytes(),
            "{name}: inverted CSRs diverged"
        );
        let (sol, _) = engine.solve(problem.k);
        let (want, _) = mc2ls::core::algorithms::run_selector(Selector::Auto, &fresh, problem.k, 1);
        assert_eq!(sol.selected, want.selected, "{name}: solve diverged");
        assert_eq!(sol.cinf.to_bits(), want.cinf.to_bits());

        let ratio = prune.prob_evals as f64 / per_update_evals.max(1e-9);
        assert!(
            ratio >= MIN_EVAL_RATIO,
            "{name}: one rebuild is worth only {ratio:.1} updates in PF evals \
             ({} rebuild vs {per_update_evals:.1}/update) — below the {MIN_EVAL_RATIO}× gate",
            prune.prob_evals,
        );

        rows.push(
            crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("cores", json!(cores))
                .set("users", json!(mutated.n_users()))
                .set("events", json!(EVENTS))
                .set("inserts", json!(stats.inserts))
                .set("deletes", json!(stats.deletes))
                .set("moves", json!(stats.moves))
                .set("compactions", json!(stats.compactions))
                .set("flipped", json!(stats.flipped))
                .set("sites_pruned", json!(stats.sites_pruned))
                .set("sites_checked", json!(stats.sites_checked))
                .set("update_evals", json!(update_evals))
                .set(
                    "evals_per_update",
                    json!((per_update_evals * 10.0).round() / 10.0),
                )
                .set("rebuild_evals", json!(prune.prob_evals))
                .set("eval_ratio", json!((ratio * 10.0).round() / 10.0))
                .set("update_ms", super::ms(update_time))
                .set(
                    "ms_per_update",
                    json!((update_time.as_secs_f64() * 1e5 / EVENTS as f64).round() / 100.0),
                )
                .set("rebuild_ms", super::ms(rebuild_time))
                .build(),
        );
    }
    ExperimentResult {
        id: "BENCH_update",
        title: "Incremental updates: PF evaluations and wall-clock per event vs full rebuild",
        rows,
    }
}
