//! `BENCH_verify` — verification-kernel cost: naive vs. early-stop vs.
//! blocked (written to `BENCH_verify.json`).
//!
//! The paper's Fig. 15(b)/16(b) metric is the number of per-position
//! probability evaluations the verification phase performs. This experiment
//! measures that metric — plus wall-clock — for the three ways the exact
//! `Pr_v(o) ≥ τ` decision can be made, over the full `(C ∪ F) × Ω` pair
//! workload of the default problem, per τ:
//!
//! * **naive** — the full product (`cumulative_probability`), `r` positions
//!   per pair, no stopping.
//! * **early** — `influences_counted`, the PINOCCHIO two-sided early stop.
//! * **blocked** — `influences_blocked_counted` at several block sizes:
//!   per-block MBR distance bounds decide most pairs without touching any
//!   position (see `mc2ls-influence::blocks`).
//!
//! All three must agree on every pair (asserted); only the work differs.
//! Block build time is reported separately (`b{size}_build_ms`) — it is
//! paid once per problem, not per pair. Kernels are timed single-threaded
//! (`threads` column); the `cores` column records what the machine offers.

use crate::{Ctx, ExperimentResult};
use mc2ls::influence::{
    influences_blocked_counted, influences_counted, BlockCounters, EvalCounter,
};
use mc2ls::prelude::*;
use serde_json::json;
use std::time::{Duration, Instant};

/// Block sizes swept per τ; 16 is the problem default.
const BLOCK_SIZES: [usize; 4] = [4, 8, 16, 32];

/// Median wall-clock of `reps` runs of `f`.
fn median_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs the experiment; see the module docs for the three kernels.
pub fn verify(ctx: &Ctx) -> ExperimentResult {
    let cores = crate::detected_cores();
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for tau in super::TAUS {
            let problem = crate::problem_with(
                &dataset,
                crate::defaults::N_CANDIDATES,
                crate::defaults::N_FACILITIES,
                crate::defaults::K,
                tau,
            );
            let sites: Vec<Point> = problem
                .candidates
                .iter()
                .chain(problem.facilities.iter())
                .copied()
                .collect();
            let n_users = problem.n_users();
            let pairs = (sites.len() * n_users) as u64;

            // Naive: every pair pays its full position count.
            let naive_evals = sites.len() as u64 * problem.n_positions() as u64;
            let mut reference: Vec<bool> = Vec::with_capacity(pairs as usize);
            let naive_t = median_of(ctx.reps, || {
                reference.clear();
                let t = Instant::now();
                for v in &sites {
                    for o in 0..n_users {
                        let pr =
                            cumulative_probability(&problem.pf, v, problem.users[o].positions());
                        reference.push(pr >= tau);
                    }
                }
                t.elapsed()
            });

            // Early-stop kernel.
            let early = EvalCounter::new();
            let early_t = median_of(ctx.reps, || {
                early.reset();
                let t = Instant::now();
                let mut i = 0usize;
                for v in &sites {
                    for o in 0..n_users {
                        let got = influences_counted(
                            &problem.pf,
                            v,
                            problem.users[o].positions(),
                            tau,
                            &early,
                        );
                        assert_eq!(got, reference[i], "early-stop diverged");
                        i += 1;
                    }
                }
                t.elapsed()
            });

            let mut r = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("tau", json!(tau))
                .set("cores", json!(cores))
                .set("threads", json!(1))
                .set("pairs", json!(pairs))
                .set("naive_evals", json!(naive_evals))
                .set("naive_ms", super::ms(naive_t))
                .set("early_evals", json!(early.get()))
                .set("early_ms", super::ms(early_t));

            // Blocked kernel per block size.
            let mut default_bs_evals = None;
            for bs in BLOCK_SIZES {
                let mut blocks = None;
                let build_t = median_of(ctx.reps, || {
                    let t = Instant::now();
                    blocks = Some(PositionBlocks::build(&problem.users, bs));
                    t.elapsed()
                });
                let blocks = blocks.expect("reps >= 1");
                let evals = EvalCounter::new();
                let bc = BlockCounters::new();
                let mut scratch = BlockScratch::new();
                let blocked_t = median_of(ctx.reps, || {
                    evals.reset();
                    bc.reset();
                    let t = Instant::now();
                    let mut i = 0usize;
                    for v in &sites {
                        for o in 0..n_users as u32 {
                            let got = influences_blocked_counted(
                                &problem.pf,
                                v,
                                &blocks,
                                o,
                                tau,
                                &mut scratch,
                                &evals,
                                &bc,
                            );
                            assert_eq!(got, reference[i], "blocked kernel diverged (bs={bs})");
                            i += 1;
                        }
                    }
                    t.elapsed()
                });
                if bs == DEFAULT_BLOCK_SIZE {
                    default_bs_evals = Some(evals.get());
                }
                r = r
                    .set(format!("b{bs}_evals"), json!(evals.get()))
                    .set(format!("b{bs}_ms"), super::ms(blocked_t))
                    .set(format!("b{bs}_build_ms"), super::ms(build_t))
                    .set(format!("b{bs}_bounded_out"), json!(bc.bounded_out()));
            }

            // The headline number: eval reduction of the default block size
            // over the early-stop kernel, per τ. The blocked kernel must do
            // strictly less positional work on this workload.
            let def = default_bs_evals.expect("default size is in BLOCK_SIZES");
            assert!(
                def < early.get(),
                "blocked kernel did not reduce evaluations (tau={tau}, {def} vs {})",
                early.get()
            );
            let reduction = 1.0 - def as f64 / early.get().max(1) as f64;
            rows.push(
                r.set("reduction_vs_early", crate::percent(reduction))
                    .build(),
            );
        }
    }
    ExperimentResult {
        id: "BENCH_verify",
        title: "Verification kernels: naive vs early-stop vs blocked (evals and wall-clock)",
        rows,
    }
}
