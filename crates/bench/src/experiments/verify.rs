//! `BENCH_verify` — verification-kernel cost: naive vs. early-stop vs.
//! blocked (written to `BENCH_verify.json`).
//!
//! The paper's Fig. 15(b)/16(b) metric is the number of per-position
//! probability evaluations the verification phase performs. This experiment
//! measures that metric — plus wall-clock — for the three ways the exact
//! `Pr_v(o) ≥ τ` decision can be made, over the full `(C ∪ F) × Ω` pair
//! workload of the default problem, per τ:
//!
//! * **naive** — the full product (`cumulative_probability`), `r` positions
//!   per pair, no stopping.
//! * **early** — `influences_counted`, the PINOCCHIO two-sided early stop.
//! * **blocked** — `influences_blocked_counted` at several block sizes:
//!   per-block MBR distance bounds decide most pairs without touching any
//!   position (see `mc2ls-influence::blocks`).
//!
//! All three must agree on every pair (asserted); only the work differs.
//! Block build time is reported separately (`b{size}_build_ms`) — it is
//! paid once per problem, not per pair. Kernels are timed single-threaded
//! (`threads` column); the `cores` column records what the machine offers.
//!
//! On top of the block-size sweep, each row A/Bs the three blocked-kernel
//! variants at the default block size:
//!
//! * **vec** — the lane kernel (`influences_blocked_counted`): fixed-width
//!   SoA chunks with the polynomial fast-PF path and error-band fallback.
//! * **exact** — the same lane walk forced onto exact `exp`
//!   (`influences_blocked_exact_counted`, the `--pf-exact` path).
//! * **scalar** — the per-position reference walk
//!   (`influences_blocked_scalar_counted`).
//!
//! Each variant reports evaluations, wall-clock and throughput
//! (`*_eps` = evals/sec); `fast_hit_rate` is the share of pairs the fast
//! path decided without the exact-`exp` fallback, `speedup_vs_scalar` the
//! vec/scalar throughput ratio. `auto_bs` is the density-probe block size
//! (with its own `auto_*` kernel run) and `hilbert_opened` /
//! `hilbert_opened_delta` compare block open counts under the Hilbert
//! ordering against Morton. Two invariants are asserted: every kernel
//! agrees with the naive reference on every pair, and per dataset the
//! vectorised kernel's aggregate throughput is at least the scalar
//! kernel's.

use crate::{Ctx, ExperimentResult};
use mc2ls::influence::{
    influences_blocked_counted, influences_blocked_exact_counted,
    influences_blocked_scalar_counted, influences_counted, BlockCounters, EvalCounter,
};
use mc2ls::prelude::*;
use serde_json::json;
use std::time::{Duration, Instant};

/// The shared shape of the three counted blocked-kernel entry points,
/// monomorphised for the bench problem's `Sigmoid` PF.
type BlockedKernel = fn(
    &Sigmoid,
    &Point,
    &PositionBlocks,
    u32,
    f64,
    &mut BlockScratch,
    &EvalCounter,
    &BlockCounters,
) -> bool;

/// Block sizes swept per τ; 16 is the problem default.
const BLOCK_SIZES: [usize; 4] = [4, 8, 16, 32];

/// Median wall-clock of `reps` runs of `f`.
fn median_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// One timed sweep of `kernel` over the full pair workload: every decision
/// is asserted against `reference`; returns the counters of the final rep
/// plus the median wall-clock.
struct KernelRun {
    evals: u64,
    opened: u64,
    fallbacks: u64,
    time: Duration,
}

#[allow(clippy::too_many_arguments)]
fn run_blocked_kernel(
    label: &str,
    kernel: BlockedKernel,
    problem: &Problem,
    sites: &[Point],
    blocks: &PositionBlocks,
    tau: f64,
    reference: &[bool],
    reps: usize,
) -> KernelRun {
    let evals = EvalCounter::new();
    let bc = BlockCounters::new();
    let mut scratch = BlockScratch::new();
    let n_users = problem.n_users();
    let time = median_of(reps, || {
        evals.reset();
        bc.reset();
        let t = Instant::now();
        let mut i = 0usize;
        for v in sites {
            for o in 0..n_users as u32 {
                let got = kernel(&problem.pf, v, blocks, o, tau, &mut scratch, &evals, &bc);
                assert_eq!(got, reference[i], "{label} kernel diverged (tau={tau})");
                i += 1;
            }
        }
        t.elapsed()
    });
    KernelRun {
        evals: evals.get(),
        opened: bc.opened(),
        fallbacks: bc.fast_fallbacks(),
        time,
    }
}

/// Evaluations per second, guarded against degenerate timings.
fn eps(evals: u64, time: Duration) -> f64 {
    evals as f64 / time.as_secs_f64().max(1e-9)
}

/// A synthetic eval-bound instance: every user orbits a ring whose radius
/// puts the per-position influence probability at roughly 0.005–0.015,
/// while all sites sit at the hub. The cumulative product then crosses τ
/// only deep into a trajectory, per-block MBR bounds straddle the target
/// for most of the walk, and the kernels spend their time on PF
/// evaluations instead of bound arithmetic — the regime where the
/// vectorised fast-PF path's throughput advantage is visible (the `C`/`N`
/// presets are bound-dominated: >80 % of pairs never open a block).
fn hotspot_problem(tau: f64) -> Problem {
    const N_USERS: usize = 160;
    const POSITIONS: usize = 120;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let users: Vec<MovingUser> = (0..N_USERS)
        .map(|_| {
            MovingUser::new(
                (0..POSITIONS)
                    .map(|_| {
                        let theta = next() * std::f64::consts::TAU;
                        let radius = 4.2 + next();
                        Point::new(radius * theta.cos(), radius * theta.sin())
                    })
                    .collect(),
            )
        })
        .collect();
    let hub = |next: &mut dyn FnMut() -> f64| Point::new(next() * 0.6 - 0.3, next() * 0.6 - 0.3);
    let candidates: Vec<Point> = (0..12).map(|_| hub(&mut next)).collect();
    let facilities: Vec<Point> = (0..4).map(|_| hub(&mut next)).collect();
    Problem::new(
        users,
        facilities,
        candidates,
        2,
        tau,
        Sigmoid::paper_default(),
    )
}

/// Runs the experiment; see the module docs for the three kernels.
pub fn verify(ctx: &Ctx) -> ExperimentResult {
    let cores = crate::detected_cores();
    let mut rows = Vec::new();
    let cal = crate::california(ctx.scale_c);
    let ny = crate::new_york(ctx.scale_n);
    let preset = |d: &std::sync::Arc<Dataset>, tau: f64| {
        crate::problem_with(
            d,
            crate::defaults::N_CANDIDATES,
            crate::defaults::N_FACILITIES,
            crate::defaults::K,
            tau,
        )
    };
    // The third flag: whether block bounds are expected to beat the
    // early-stop kernel on evaluation count. True for the real presets;
    // the hotspot is built so bounds rarely decide, and its chunk-granular
    // lane counting can legitimately exceed the per-position early stop.
    type MakeProblem = Box<dyn Fn(f64) -> Problem>;
    let datasets: [(&str, MakeProblem, bool); 3] = [
        ("C", Box::new(move |tau| preset(&cal, tau)), true),
        ("N", Box::new(move |tau| preset(&ny, tau)), true),
        ("H", Box::new(hotspot_problem), false),
    ];
    for (name, make_problem, bounds_dominate) in datasets {
        // Dataset-level totals for the vec-vs-scalar throughput invariant;
        // aggregating over the τ sweep damps single-row timer noise.
        let mut ds_vec = (0u64, Duration::ZERO);
        let mut ds_scalar = (0u64, Duration::ZERO);
        for tau in super::TAUS {
            let problem = make_problem(tau);
            let sites: Vec<Point> = problem
                .candidates
                .iter()
                .chain(problem.facilities.iter())
                .copied()
                .collect();
            let n_users = problem.n_users();
            let pairs = (sites.len() * n_users) as u64;

            // Naive: every pair pays its full position count.
            let naive_evals = sites.len() as u64 * problem.n_positions() as u64;
            let mut reference: Vec<bool> = Vec::with_capacity(pairs as usize);
            let naive_t = median_of(ctx.reps, || {
                reference.clear();
                let t = Instant::now();
                for v in &sites {
                    for o in 0..n_users {
                        let pr =
                            cumulative_probability(&problem.pf, v, problem.users[o].positions());
                        reference.push(pr >= tau);
                    }
                }
                t.elapsed()
            });

            // Early-stop kernel.
            let early = EvalCounter::new();
            let early_t = median_of(ctx.reps, || {
                early.reset();
                let t = Instant::now();
                let mut i = 0usize;
                for v in &sites {
                    for o in 0..n_users {
                        let got = influences_counted(
                            &problem.pf,
                            v,
                            problem.users[o].positions(),
                            tau,
                            &early,
                        );
                        assert_eq!(got, reference[i], "early-stop diverged");
                        i += 1;
                    }
                }
                t.elapsed()
            });

            let mut r = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("tau", json!(tau))
                .set("cores", json!(cores))
                .set("threads", json!(1))
                .set("pairs", json!(pairs))
                .set("naive_evals", json!(naive_evals))
                .set("naive_ms", super::ms(naive_t))
                .set("early_evals", json!(early.get()))
                .set("early_ms", super::ms(early_t));

            // Blocked kernel per block size.
            let mut default_bs_evals = None;
            for bs in BLOCK_SIZES {
                let mut blocks = None;
                let build_t = median_of(ctx.reps, || {
                    let t = Instant::now();
                    blocks = Some(PositionBlocks::build(&problem.users, bs));
                    t.elapsed()
                });
                let blocks = blocks.expect("reps >= 1");
                let evals = EvalCounter::new();
                let bc = BlockCounters::new();
                let mut scratch = BlockScratch::new();
                let blocked_t = median_of(ctx.reps, || {
                    evals.reset();
                    bc.reset();
                    let t = Instant::now();
                    let mut i = 0usize;
                    for v in &sites {
                        for o in 0..n_users as u32 {
                            let got = influences_blocked_counted(
                                &problem.pf,
                                v,
                                &blocks,
                                o,
                                tau,
                                &mut scratch,
                                &evals,
                                &bc,
                            );
                            assert_eq!(got, reference[i], "blocked kernel diverged (bs={bs})");
                            i += 1;
                        }
                    }
                    t.elapsed()
                });
                if bs == DEFAULT_BLOCK_SIZE {
                    default_bs_evals = Some(evals.get());
                }
                r = r
                    .set(format!("b{bs}_evals"), json!(evals.get()))
                    .set(format!("b{bs}_ms"), super::ms(blocked_t))
                    .set(format!("b{bs}_build_ms"), super::ms(build_t))
                    .set(format!("b{bs}_bounded_out"), json!(bc.bounded_out()));
            }

            // The headline number: eval reduction of the default block size
            // over the early-stop kernel, per τ. On the bound-dominated
            // presets the blocked kernel must do strictly less positional
            // work; the hotspot is exempt (see `hotspot_problem`).
            let def = default_bs_evals.expect("default size is in BLOCK_SIZES");
            if bounds_dominate {
                assert!(
                    def < early.get(),
                    "blocked kernel did not reduce evaluations (tau={tau}, {def} vs {})",
                    early.get()
                );
            }
            let reduction = 1.0 - def as f64 / early.get().max(1) as f64;
            r = r.set("reduction_vs_early", crate::percent(reduction));

            // --- kernel A/B at the default block size -------------------
            let blocks = PositionBlocks::build(&problem.users, DEFAULT_BLOCK_SIZE);
            let vec_run = run_blocked_kernel(
                "vec",
                influences_blocked_counted::<Sigmoid, EvalCounter>,
                &problem,
                &sites,
                &blocks,
                tau,
                &reference,
                ctx.reps,
            );
            let exact_run = run_blocked_kernel(
                "exact",
                influences_blocked_exact_counted::<Sigmoid, EvalCounter>,
                &problem,
                &sites,
                &blocks,
                tau,
                &reference,
                ctx.reps,
            );
            let scalar_run = run_blocked_kernel(
                "scalar",
                influences_blocked_scalar_counted::<Sigmoid, EvalCounter>,
                &problem,
                &sites,
                &blocks,
                tau,
                &reference,
                ctx.reps,
            );
            ds_vec.0 += vec_run.evals;
            ds_vec.1 += vec_run.time;
            ds_scalar.0 += scalar_run.evals;
            ds_scalar.1 += scalar_run.time;
            let hit_rate = 1.0 - vec_run.fallbacks as f64 / pairs.max(1) as f64;

            // Auto-tuned block size: the density probe's pick, timed like
            // the fixed sizes.
            let auto_bs = auto_block_size(&problem.users);
            let auto_blocks = PositionBlocks::build(&problem.users, auto_bs);
            let auto_run = run_blocked_kernel(
                "auto",
                influences_blocked_counted::<Sigmoid, EvalCounter>,
                &problem,
                &sites,
                &auto_blocks,
                tau,
                &reference,
                ctx.reps,
            );

            // Hilbert ordering: decisions are identical (asserted inside
            // the run); what moves is the number of blocks opened.
            let hilbert_blocks = PositionBlocks::build_ordered(
                &problem.users,
                DEFAULT_BLOCK_SIZE,
                BlockOrdering::Hilbert,
            );
            let hilbert_run = run_blocked_kernel(
                "hilbert",
                influences_blocked_counted::<Sigmoid, EvalCounter>,
                &problem,
                &sites,
                &hilbert_blocks,
                tau,
                &reference,
                ctx.reps,
            );

            rows.push(
                r.set("vec_evals", json!(vec_run.evals))
                    .set("vec_ms", super::ms(vec_run.time))
                    .set("vec_eps", json!(eps(vec_run.evals, vec_run.time)))
                    .set("exact_evals", json!(exact_run.evals))
                    .set("exact_ms", super::ms(exact_run.time))
                    .set("exact_eps", json!(eps(exact_run.evals, exact_run.time)))
                    .set("scalar_evals", json!(scalar_run.evals))
                    .set("scalar_ms", super::ms(scalar_run.time))
                    .set("scalar_eps", json!(eps(scalar_run.evals, scalar_run.time)))
                    .set(
                        "speedup_vs_scalar",
                        json!(
                            eps(vec_run.evals, vec_run.time)
                                / eps(scalar_run.evals, scalar_run.time).max(1e-9)
                        ),
                    )
                    .set("fast_hit_rate", crate::percent(hit_rate))
                    .set("auto_bs", json!(auto_bs))
                    .set("auto_evals", json!(auto_run.evals))
                    .set("auto_ms", super::ms(auto_run.time))
                    .set("morton_opened", json!(vec_run.opened))
                    .set("hilbert_opened", json!(hilbert_run.opened))
                    .set(
                        "hilbert_opened_delta",
                        json!(hilbert_run.opened as i64 - vec_run.opened as i64),
                    )
                    .build(),
            );
        }
        // The vectorised fast-PF kernel must not process evaluations slower
        // than the scalar reference walk, aggregated over the τ sweep. On
        // the bound-dominated presets both kernels spend almost all their
        // time in the *shared* bound arithmetic (>80 % of pairs never open
        // a block), so their throughputs are near-equal and the check only
        // guards against regression, with slack for timer noise. The
        // hotspot preset is eval-bound — there the lane walk's advantage
        // is structural and the check is strict.
        let (vec_eps, scalar_eps) = (eps(ds_vec.0, ds_vec.1), eps(ds_scalar.0, ds_scalar.1));
        let floor = if bounds_dominate { 0.8 } else { 1.0 };
        assert!(
            vec_eps >= floor * scalar_eps,
            "vectorised kernel is slower than scalar on dataset {name}: \
             {vec_eps:.0} vs {scalar_eps:.0} evals/sec (floor {floor})",
        );
    }
    ExperimentResult {
        id: "BENCH_verify",
        title: "Verification kernels: naive vs early-stop vs blocked (evals and wall-clock)",
        rows,
    }
}
