//! Fig. 14 — running time vs the selection budget `k ∈ {5..25}`.
//!
//! Paper expectations: every algorithm's cost is nearly flat in k (the
//! influence-overlap bookkeeping is negligible next to influence
//! evaluation), and all algorithms return identical result sets — the
//! shared `method_times_row` helper asserts exactly that.

use crate::{Ctx, ExperimentResult};
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig14(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for k in [5usize, 10, 15, 20, 25] {
            let problem = crate::problem_with(
                &dataset,
                crate::defaults::N_CANDIDATES,
                crate::defaults::N_FACILITIES,
                k,
                crate::defaults::TAU,
            );
            let base = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("k", json!(k));
            rows.push(super::method_times_row(base, &problem, ctx.reps));
        }
    }
    ExperimentResult {
        id: "fig14",
        title: "Running time vs selection budget k (identical results asserted)",
        rows,
    }
}
