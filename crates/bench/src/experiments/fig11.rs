//! Fig. 11 — running time vs the number of candidate locations
//! `|C| ∈ {100..500}`.
//!
//! Paper expectations: IQT widens its lead as |C| grows (batch-wise IS gets
//! stronger); k-CIFP degrades (IA/NIB cannot batch).

use crate::{Ctx, ExperimentResult};
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig11(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for n_c in [100usize, 200, 300, 400, 500] {
            let problem = crate::problem_with(
                &dataset,
                n_c,
                crate::defaults::N_FACILITIES,
                crate::defaults::K,
                crate::defaults::TAU,
            );
            let base = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("|C|", json!(n_c));
            rows.push(super::method_times_row(base, &problem, ctx.reps));
        }
    }
    ExperimentResult {
        id: "fig11",
        title: "Running time vs number of candidates |C|",
        rows,
    }
}
