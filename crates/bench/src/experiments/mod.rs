//! One module per paper table/figure. Each experiment takes a [`Ctx`] and
//! returns an [`ExperimentResult`] with the same series the paper plots.

mod candgen;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig14;
pub(crate) mod fig15;
mod fig16;
mod figd;
mod greedy;
mod parallel;
mod quality;
mod serve;
mod table1;
mod table2;
mod update;
mod verify;

pub use candgen::candgen;
pub use fig07::fig7;
pub use fig08::fig8;
pub use fig09::fig9;
pub use fig10::fig10;
pub use fig11::fig11;
pub use fig12::fig12;
pub use fig13::fig13;
pub use fig14::fig14;
pub use fig15::fig15;
pub use fig16::fig16;
pub use figd::figd;
pub use greedy::greedy;
pub use parallel::parallel;
pub use quality::quality;
pub use serve::serve;
pub use table1::table1;
pub use table2::table2;
pub use update::update;
pub use verify::verify;

use crate::{Ctx, ExperimentResult};

/// An experiment entry point.
pub type Runner = fn(&Ctx) -> ExperimentResult;

/// All experiments in paper order: `(id, runner)`.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("fig7", fig7 as Runner),
        ("fig8", fig8),
        ("fig9", fig9),
        ("table1", table1),
        ("table2", table2),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig16", fig16),
        ("figd", figd),
        ("quality", quality),
        ("BENCH_parallel", parallel),
        ("BENCH_verify", verify),
        ("BENCH_greedy", greedy),
        ("BENCH_serve", serve),
        ("BENCH_update", update),
        ("BENCH_candgen", candgen),
    ]
}

/// The τ sweep the paper uses throughout.
pub(crate) const TAUS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Milliseconds with two decimals, as a JSON number.
pub(crate) fn ms(d: std::time::Duration) -> serde_json::Value {
    serde_json::json!((d.as_secs_f64() * 100_000.0).round() / 100.0)
}

/// Runs every paper method on `problem` and appends `<label>_ms` columns
/// (median over `reps` repetitions); asserts all methods return equivalent
/// solutions along the way (the paper: "all the algorithms achieve
/// identical k result candidates").
pub(crate) fn method_times_row(
    base: crate::RowBuilder,
    problem: &mc2ls::prelude::Problem,
    reps: usize,
) -> serde_json::Value {
    use mc2ls::prelude::*;
    let reps = reps.max(1);
    let mut r = base;
    let mut reference: Option<Solution> = None;
    for (method, label) in crate::paper_methods() {
        let mut times: Vec<std::time::Duration> = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let report = solve(problem, method);
            times.push(report.times.total());
            last = Some(report.solution);
        }
        times.sort_unstable();
        r = r.set(format!("{label}_ms"), ms(times[times.len() / 2]));
        let solution = last.expect("reps >= 1");
        match &reference {
            None => reference = Some(solution),
            Some(rf) => assert!(
                rf.equivalent(&solution),
                "{label} returned a different solution"
            ),
        }
    }
    r.build()
}
