//! Solution-quality comparison (not a paper figure, but the paper's Fig. 1
//! argument made quantitative): the overlap-aware greedy versus the
//! single-facility top-k baseline ([17]/[18]-style), the FM-sketch
//! approximate greedy, and the competition-blind greedy (the k-CIFP
//! objective evaluated under competition).

use crate::{percent, Ctx, ExperimentResult};
use mc2ls::core::algorithms::topk::select_top_k_single;
use mc2ls::core::{algorithms, greedy, sketch, InfluenceSets};
use mc2ls::prelude::*;
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol.
pub fn quality(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for k in [5usize, 10, 20] {
            let problem = crate::problem_with(
                &dataset,
                crate::defaults::N_CANDIDATES,
                crate::defaults::N_FACILITIES,
                k,
                crate::defaults::TAU,
            );
            let (sets, _, _) =
                algorithms::influence_sets(&problem, Method::Iqt(IqtConfig::default()));

            let greedy_sol = greedy::select(&sets, k);
            let topk_sol = select_top_k_single(&sets, k);
            let sketch_sol = sketch::select_sketched(&sets, k, 48);

            // Competition-blind: optimise raw coverage (every weight 1),
            // then score the chosen set under the true competitive weights.
            let (offsets, user_ids) = sets.csr();
            let blind_sets = InfluenceSets::from_csr(
                offsets.to_vec(),
                user_ids.to_vec(),
                vec![0; sets.n_users()],
            );
            let blind_pick = greedy::select(&blind_sets, k);
            let blind_value = sets.cinf_set(&blind_pick.selected);

            let rel = |v: f64| percent(v / greedy_sol.cinf.max(1e-12));
            rows.push(
                crate::RowBuilder::new()
                    .set("dataset", json!(name))
                    .set("k", json!(k))
                    .set(
                        "greedy_cinf",
                        json!((greedy_sol.cinf * 100.0).round() / 100.0),
                    )
                    .set("topk_single%", rel(topk_sol.cinf))
                    .set("fm_sketch%", rel(sketch_sol.cinf))
                    .set("competition_blind%", rel(blind_value))
                    .build(),
            );
        }
    }
    ExperimentResult {
        id: "quality",
        title: "Solution quality vs the overlap-aware greedy (=100%)",
        rows,
    }
}
