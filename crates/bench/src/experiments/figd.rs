//! The paper's text-only d̂ ablation (§VII-B "Effect of d̂"): the leaf
//! diagonal barely moves pruning effectiveness, and the IQuad-tree build is
//! a negligible share of Baseline's total cost.

use super::ms;
use crate::{percent, Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn figd(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let baseline_ms = {
            let problem = crate::default_problem(&dataset);
            solve(&problem, Method::Baseline).times.total()
        };
        for d_hat in [1.0f64, 1.5, 2.0, 2.5] {
            let problem = crate::default_problem(&dataset);
            let report = solve(&problem, Method::Iqt(IqtConfig::iqt(d_hat)));
            rows.push(
                crate::RowBuilder::new()
                    .set("dataset", json!(name))
                    .set("d_hat_km", json!(d_hat))
                    .set("pruned%", percent(report.stats.pruned_fraction()))
                    .set("IQT_ms", ms(report.times.total()))
                    .set("build_ms", ms(report.times.indexing))
                    .set(
                        "build_vs_baseline%",
                        percent(report.times.indexing.as_secs_f64() / baseline_ms.as_secs_f64()),
                    )
                    .build(),
            );
        }
    }
    ExperimentResult {
        id: "figd",
        title: "Ablation: leaf diagonal d_hat (pruning stable, build cost tiny)",
        rows,
    }
}
