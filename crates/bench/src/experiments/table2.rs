//! Table II — index construction cost: the IQuad-tree over all moving
//! users vs an R-tree over 300 abstract facilities, total and per indexed
//! object.
//!
//! Paper expectation: the IQuad-tree's total build time exceeds the
//! R-tree's (it indexes hundreds of thousands of positions, not hundreds of
//! points), but its per-object cost is *lower*, and the build is a fraction
//! of a percent of Baseline's query cost.

use super::ms;
use crate::{Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;
use std::time::Instant;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn table2(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let n_positions: usize = dataset.users.iter().map(|u| u.len()).sum();
        let pf = Sigmoid::paper_default();

        let t = Instant::now();
        let iqt = IQuadTree::build(
            &dataset.users,
            &pf,
            crate::defaults::TAU,
            crate::defaults::D_HAT,
        );
        let iqt_time = t.elapsed();
        let _ = iqt.stats();

        let sites = dataset.sample_sites(300, crate::defaults::SITE_SEED);
        let items: Vec<(u32, Point)> = sites
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, *p))
            .collect();
        let t = Instant::now();
        let rt = RTree::bulk_load(items.clone());
        let rtree_time = t.elapsed();
        assert_eq!(rt.len(), 300);

        // Also time the incremental R-tree insert path for completeness.
        let t = Instant::now();
        let mut rt2 = RTree::new();
        for (id, p) in &items {
            rt2.insert(*id, *p);
        }
        let rtree_insert_time = t.elapsed();

        // Extra comparators: kd-tree and quad-tree over the same sites.
        let t = Instant::now();
        let kd = mc2ls::index::KdTree::build(items.clone());
        let kd_time = t.elapsed();
        assert_eq!(kd.len(), 300);
        let t = Instant::now();
        let qt = mc2ls::index::QuadTree::build(items.clone());
        let qt_time = t.elapsed();
        assert_eq!(qt.len(), 300);

        rows.push(
            crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("iqt_objects", json!(n_positions))
                .set("IQuad_ms", ms(iqt_time))
                .set(
                    "IQuad_us_per_obj",
                    json!(
                        (iqt_time.as_secs_f64() * 1e6 / n_positions as f64 * 1000.0).round()
                            / 1000.0
                    ),
                )
                .set("RTree_bulk_ms", ms(rtree_time))
                .set("RTree_insert_ms", ms(rtree_insert_time))
                .set(
                    "RTree_us_per_obj",
                    json!(
                        (rtree_insert_time.as_secs_f64() * 1e6 / 300.0 * 1000.0).round() / 1000.0
                    ),
                )
                .set("KdTree_ms", ms(kd_time))
                .set("QuadTree_ms", ms(qt_time))
                .build(),
        );
    }
    ExperimentResult {
        id: "table2",
        title: "Index construction cost: IQuad-tree (users) vs R-tree (300 sites)",
        rows,
    }
}
