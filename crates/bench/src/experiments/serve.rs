//! `BENCH_serve` — snapshot cold-start (rebuild vs full decode vs
//! zero-copy view load), loopback serving throughput, and shard-scaling
//! of the scatter/gather engine (written to `BENCH_serve.json`).
//!
//! Three row kinds per dataset:
//!
//! * `coldstart` — wall-clock of `Snapshot::build` (the full influence
//!   pipeline) vs `Snapshot::from_bytes` (full decode into owned
//!   artifacts) vs `LoadedSnapshot::from_bytes` (the zero-copy serving
//!   view: CRC sweep + CSR validation, no position/tree decode, no array
//!   copies). Asserted: view < decode < build — each tier exists because
//!   it beats the one below.
//! * `serving` — a real `Server` on an ephemeral loopback port, driven by
//!   `clients` concurrent `Client` connections issuing full-instance
//!   queries. Reported: queries/s and the server-side cache hit rate.
//! * `shardscale` — the same loopback harness over snapshots saved with
//!   1, 2 and 4 shards, cache off. The headline column is `qps_crit`,
//!   computed from the per-answer `GatherStats::critical_path_ns` (what a
//!   fleet with one free core per shard would wait for); the max-shard
//!   row is asserted to strictly beat the 1-shard row, with a
//!   no-regression floor between adjacent points.
//!
//! **Reading the numbers:** wall-clock rows carry a `wall_unreliable`
//! flag that is `true` whenever the runner exposes a single core — there
//! is no parallel wall-clock signal to measure on such a box, so the
//! headline metrics are the critical-path ones (`qps_crit` here,
//! `speedupT` in `BENCH_parallel`), which replay the exact decomposition
//! and stay meaningful at any core count.
//!
//! Every served answer is asserted bit-identical to the direct
//! `solve_threaded` run of the same instance, and every answer's pruning
//! counters are asserted all-zero — the serving path re-evaluates no
//! influence sets.

use crate::{Ctx, ExperimentResult};
use mc2ls::core::PruneStats;
use mc2ls::prelude::*;
use mc2ls_serve::{
    Client, LoadedSnapshot, QueryEngine, QueryRequest, Server, ServerConfig, Snapshot,
};
use serde_json::json;
use std::time::{Duration, Instant};

const QUERIES_PER_CLIENT: usize = 8;
const CLIENTS: [usize; 2] = [1, 4];
const CACHE_CAPACITIES: [usize; 2] = [0, 64];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const SHARDSCALE_QUERIES: usize = 12;
/// Minimum per-query scatter events for the shard-scaling assert to be
/// meaningful: below this the per-round scatter is a handful of timer
/// spans and the critical path is ~`rounds × span-overhead` noise. The
/// count is a deterministic instance property (the decrement stream of
/// the deep-k selection), so the gate never flaps run-to-run: full-scale
/// presets sit at 185 (C) / 9453 (N) events, a `--scale 0.25` C instance
/// collapses to 37 and is skipped.
const SCATTER_EVENT_FLOOR: u64 = 100;

/// Median wall-clock of `reps` runs of `f`.
fn median_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// One blank-cell row template so all three row kinds share a column set
/// (the table printer takes its columns from the first row).
fn blank_row(kind: &str, dataset: &str, cores: usize, threads: usize) -> crate::RowBuilder {
    crate::RowBuilder::new()
        .set("kind", json!(kind))
        .set("dataset", json!(dataset))
        .set("cores", json!(cores))
        .set("wall_unreliable", json!(cores == 1))
        .set("threads", json!(threads))
        .set("shards", json!("-"))
        .set("clients", json!("-"))
        .set("cache", json!("-"))
        .set("snapshot_bytes", json!("-"))
        .set("build_ms", json!("-"))
        .set("load_ms", json!("-"))
        .set("view_ms", json!("-"))
        .set("speedup", json!("-"))
        .set("view_speedup", json!("-"))
        .set("queries", json!("-"))
        .set("wall_ms", json!("-"))
        .set("qps", json!("-"))
        .set("qps_crit", json!("-"))
        .set("scatter_evts", json!("-"))
        .set("hit_rate", json!("-"))
}

/// Runs the experiment; see the module docs for the row kinds.
pub fn serve(ctx: &Ctx) -> ExperimentResult {
    let cores = crate::detected_cores();
    // Engine solve threads for the serving rows: they measure
    // dispatch/cache overhead and concurrency, not solver scaling
    // (BENCH_greedy covers that), so one solver thread keeps the numbers
    // comparable. The shardscale rows use one thread per shard instead —
    // the scatter decomposition is exactly what they measure.
    let threads = 1usize;
    let mut rows = Vec::new();

    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let problem = crate::default_problem(&dataset);

        // --- cold start: rebuild vs decode vs zero-copy view -----------
        let build_wall = {
            let t = Instant::now();
            let (snap, _) = Snapshot::build(name, &problem, crate::defaults::D_HAT, threads);
            let elapsed = t.elapsed();
            std::hint::black_box(&snap);
            elapsed
        };
        let (snapshot, _) = Snapshot::build(name, &problem, crate::defaults::D_HAT, threads);
        let bytes = snapshot.to_bytes();
        let load_wall = median_of(ctx.reps.max(3), || {
            let t = Instant::now();
            let s = Snapshot::from_bytes(&bytes).expect("container decodes");
            let elapsed = t.elapsed();
            std::hint::black_box(&s);
            elapsed
        });
        let view_wall = median_of(ctx.reps.max(3), || {
            let owned = bytes.clone();
            let t = Instant::now();
            let v = LoadedSnapshot::from_bytes(owned).expect("view loads");
            let elapsed = t.elapsed();
            std::hint::black_box(&v);
            elapsed
        });
        assert!(
            load_wall < build_wall,
            "{name}: cold load ({load_wall:?}) must beat rebuild ({build_wall:?})"
        );
        assert!(
            view_wall < load_wall,
            "{name}: zero-copy view ({view_wall:?}) must beat full decode ({load_wall:?})"
        );
        rows.push(
            blank_row("coldstart", name, cores, threads)
                .set("snapshot_bytes", json!(bytes.len()))
                .set("build_ms", super::ms(build_wall))
                .set("load_ms", super::ms(load_wall))
                .set("view_ms", super::ms(view_wall))
                .set("speedup", json!(ratio_f(build_wall, load_wall)))
                .set("view_speedup", json!(ratio_f(load_wall, view_wall)))
                .build(),
        );

        // The ground truth every served answer must match bit-for-bit.
        let reference = solve_threaded(
            &problem,
            Method::Iqt(IqtConfig::iqt(crate::defaults::D_HAT)),
            Selector::Auto,
            threads,
        )
        .solution;
        let request = QueryRequest {
            candidates: None,
            k: problem.k,
            tau: problem.tau,
            block_size: problem.block_size,
            selector: Selector::Auto,
            pf_exact: false,
            model: Model::Cumulative,
        };

        // --- loopback serving sweep ------------------------------------
        for cache_capacity in CACHE_CAPACITIES {
            for clients in CLIENTS {
                let engine = QueryEngine::new(
                    Snapshot::from_bytes(&bytes).expect("container decodes"),
                    threads,
                );
                let config = ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers: clients,
                    max_pending: clients * 2 + QUERIES_PER_CLIENT,
                    cache_capacity,
                    threads,
                    ..ServerConfig::default()
                };
                let server = Server::start(config, engine).expect("server binds loopback");
                let addr = server.addr().to_string();

                let t = Instant::now();
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        let addr = addr.clone();
                        let request = request.clone();
                        std::thread::spawn(move || {
                            let mut client = Client::connect(&addr).expect("client connects");
                            (0..QUERIES_PER_CLIENT)
                                .map(|_| client.query(&request).expect("query answered"))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let answers: Vec<_> = handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread joins"))
                    .collect();
                let wall = t.elapsed();

                let mut probe = Client::connect(&addr).expect("stats client connects");
                let stats = probe.stats().expect("stats answered");
                probe.shutdown().expect("shutdown acknowledged");
                server.join();

                for answer in &answers {
                    assert_eq!(
                        answer.solution.selected, reference.selected,
                        "{name}: served selection diverged from direct solve"
                    );
                    assert_eq!(
                        answer.solution.cinf.to_bits(),
                        reference.cinf.to_bits(),
                        "{name}: served cinf diverged from direct solve"
                    );
                    assert_eq!(
                        answer.prune,
                        PruneStats::default(),
                        "{name}: the serving path must evaluate zero influence sets"
                    );
                }
                let total = (clients * QUERIES_PER_CLIENT) as f64;
                let hit_rate = if stats.cache_hits + stats.cache_misses == 0 {
                    0.0
                } else {
                    stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64
                };
                rows.push(
                    blank_row("serving", name, cores, threads)
                        .set("shards", json!(1))
                        .set("clients", json!(clients))
                        .set("cache", json!(cache_capacity))
                        .set("snapshot_bytes", json!(bytes.len()))
                        .set("queries", json!(clients * QUERIES_PER_CLIENT))
                        .set("wall_ms", super::ms(wall))
                        .set(
                            "qps",
                            json!(((total / wall.as_secs_f64().max(1e-9)) * 100.0).round() / 100.0),
                        )
                        .set("hit_rate", crate::percent(hit_rate))
                        .build(),
                );
            }
        }

        // --- shard scaling ---------------------------------------------
        // Cache off so every query pays the full scatter/gather. Engine
        // threads are `min(shards, cores)`: never oversubscribe, because
        // an oversubscribed scatter worker's in-thread span includes the
        // time it sat descheduled, which corrupts the critical path — on
        // a one-core runner this degrades to the same serial replay
        // `BENCH_parallel` uses (each shard chunk timed on the calling
        // thread), which is exactly the clean measurement. A deep
        // selection (large k) keeps the per-round scatter well above
        // timer granularity — the shallow default-k scatter finishes in
        // microseconds, which is the point of epoch sharing but measures
        // only noise. The headline `qps_crit` divides by the *minimum*
        // per-query critical path instead of the wall clock, so it
        // measures the decomposition on any runner.
        let deep_k = problem
            .n_candidates()
            .min(crate::defaults::N_CANDIDATES / 2);
        let mut deep_problem = problem.clone();
        deep_problem.k = deep_k;
        let deep_reference = solve_threaded(
            &deep_problem,
            Method::Iqt(IqtConfig::iqt(crate::defaults::D_HAT)),
            Selector::Auto,
            threads,
        )
        .solution;
        let deep_request = QueryRequest {
            k: deep_k,
            ..request.clone()
        };
        // All shard counts are measured *interleaved* against live servers
        // so they see the same machine state (frequency, cache pressure,
        // background load) — measuring them in separate back-to-back
        // phases lets state drift between phases masquerade as a scaling
        // difference.
        let mut servers = Vec::with_capacity(SHARD_COUNTS.len());
        for shards in SHARD_COUNTS {
            let (sharded, _) =
                Snapshot::build_sharded(name, &problem, crate::defaults::D_HAT, threads, shards);
            assert_eq!(sharded.n_shards(), shards, "{name}: shard clamp hit");
            let snapshot_bytes = sharded.to_bytes().len();
            let engine_threads = shards.min(cores);
            let engine = QueryEngine::new(sharded, engine_threads);
            let config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                max_pending: 4 + SHARDSCALE_QUERIES,
                cache_capacity: 0,
                threads: engine_threads,
                ..ServerConfig::default()
            };
            let server = Server::start(config, engine).expect("server binds loopback");
            let addr = server.addr().to_string();
            let client = Client::connect(&addr).expect("client connects");
            servers.push((shards, snapshot_bytes, server, client));
        }
        // One discarded warmup each: materialises the shared epoch counts
        // and faults in the CSR views before anything is timed.
        for (_, _, _, client) in &mut servers {
            client.query(&deep_request).expect("warmup answered");
        }
        let mut crit_ns = vec![Vec::with_capacity(SHARDSCALE_QUERIES); SHARD_COUNTS.len()];
        let mut walls = vec![Duration::ZERO; SHARD_COUNTS.len()];
        let mut scatter_events = vec![0u64; SHARD_COUNTS.len()];
        for _ in 0..SHARDSCALE_QUERIES {
            for (i, (shards, _, _, client)) in servers.iter_mut().enumerate() {
                let t = Instant::now();
                let answer = client.query(&deep_request).expect("query answered");
                walls[i] += t.elapsed();
                assert_eq!(
                    answer.solution.selected, deep_reference.selected,
                    "{name}/{shards}: sharded selection diverged from direct solve"
                );
                assert_eq!(
                    answer.solution.cinf.to_bits(),
                    deep_reference.cinf.to_bits(),
                    "{name}/{shards}: sharded cinf diverged from direct solve"
                );
                assert_eq!(answer.prune, PruneStats::default());
                assert_eq!(answer.gather.shards as usize, *shards);
                scatter_events[i] = answer.gather.scatter_events;
                crit_ns[i].push(answer.gather.critical_path_ns.max(1));
            }
        }
        // The decrement stream is an instance property — sharding only
        // re-buckets it across user ranges — so the per-query event total
        // must be identical at every shard count.
        for i in 1..SHARD_COUNTS.len() {
            assert_eq!(
                scatter_events[i], scatter_events[0],
                "{name}: scatter-event totals must be shard-count-invariant"
            );
        }
        let mut first_qps_crit = 0.0f64;
        let mut prev_qps_crit = 0.0f64;
        let mut measurable = false;
        let last = SHARD_COUNTS.len() - 1;
        for (i, (shards, snapshot_bytes, server, mut client)) in servers.into_iter().enumerate() {
            client.shutdown().expect("shutdown acknowledged");
            server.join();
            crit_ns[i].sort_unstable();
            // Minimum, not median: the scatter replay is deterministic, so
            // the fastest of the repeated identical queries is the estimate
            // least contaminated by per-span timer jitter (a deschedule
            // inside any one shard's span inflates that round's max, and
            // more shards mean more spans for a spike to land in — a
            // median would bias *against* higher shard counts on a noisy
            // runner).
            let best_crit_s = crit_ns[i][0] as f64 / 1e9;
            let qps_crit = (1.0 / best_crit_s * 100.0).round() / 100.0;
            // The scaling claim is endpoint-to-endpoint: max shards must
            // strictly beat one shard. Adjacent points only get a
            // no-regression floor — once the per-round scatter shrinks to
            // a handful of timer spans, the tail of the curve flattens
            // into span-overhead territory and strict adjacent ordering
            // would assert on timer noise. And on heavily down-scaled
            // smoke instances the *whole* 1-shard critical path collapses
            // toward `rounds × span-overhead` ns, at which point there is
            // no signal left to order the endpoints either, so the
            // asserts are gated on the instance's scatter work — the same
            // reason BENCH_greedy gates its work-bound assert on instance
            // size. A skipped assert is announced, never silent.
            if i == 0 {
                first_qps_crit = qps_crit;
                measurable = scatter_events[i] >= SCATTER_EVENT_FLOOR;
                if !measurable {
                    println!(
                        "    [{name}] shardscale: {} scatter events/query \
                         < {SCATTER_EVENT_FLOOR} floor — scaling assert skipped \
                         (down-scaled instance, timer-granularity regime)",
                        scatter_events[i]
                    );
                }
            } else if measurable {
                assert!(
                    qps_crit >= 0.9 * prev_qps_crit,
                    "{name}: critical-path qps regressed with shards \
                     ({shards} shards: {qps_crit} < 0.9 * {prev_qps_crit})"
                );
                if i == last {
                    assert!(
                        qps_crit > first_qps_crit,
                        "{name}: critical-path qps must rise from 1 to {shards} shards \
                         ({qps_crit} <= {first_qps_crit})"
                    );
                }
            }
            prev_qps_crit = qps_crit;
            let total = SHARDSCALE_QUERIES as f64;
            rows.push(
                blank_row("shardscale", name, cores, shards)
                    .set("shards", json!(shards))
                    .set("clients", json!(1))
                    .set("cache", json!(0))
                    .set("snapshot_bytes", json!(snapshot_bytes))
                    .set("queries", json!(SHARDSCALE_QUERIES))
                    .set("wall_ms", super::ms(walls[i]))
                    .set(
                        "qps",
                        json!(((total / walls[i].as_secs_f64().max(1e-9)) * 100.0).round() / 100.0),
                    )
                    .set("qps_crit", json!(qps_crit))
                    .set("scatter_evts", json!(scatter_events[i]))
                    .build(),
            );
        }
    }

    ExperimentResult {
        id: "BENCH_serve",
        title: "Serving: cold-start tiers, loopback throughput, shard scaling (qps_crit)",
        rows,
    }
}

/// `a / b` rounded to 2 decimals.
fn ratio_f(a: Duration, b: Duration) -> f64 {
    ((a.as_secs_f64() / b.as_secs_f64().max(1e-9)) * 100.0).round() / 100.0
}
