//! `BENCH_serve` — snapshot cold-start vs in-process rebuild, and loopback
//! serving throughput with the result cache on and off (written to
//! `BENCH_serve.json`).
//!
//! Two row kinds per dataset:
//!
//! * `coldstart` — wall-clock of `Snapshot::build` (the full influence
//!   pipeline) vs `Snapshot::from_bytes` over the encoded container. The
//!   load path is asserted faster than the rebuild: that is the whole
//!   point of persisting the indexes.
//! * `serving` — a real `Server` on an ephemeral loopback port, driven by
//!   `clients` concurrent `Client` connections issuing full-instance
//!   queries. Reported: queries/s and the server-side cache hit rate.
//!
//! Every served answer is asserted bit-identical to the direct
//! `solve_threaded` run of the same instance, and every answer's pruning
//! counters are asserted all-zero — the serving path re-evaluates no
//! influence sets.

use crate::{Ctx, ExperimentResult};
use mc2ls::core::PruneStats;
use mc2ls::prelude::*;
use mc2ls_serve::{Client, QueryEngine, QueryRequest, Server, ServerConfig, Snapshot};
use serde_json::json;
use std::time::{Duration, Instant};

const QUERIES_PER_CLIENT: usize = 8;
const CLIENTS: [usize; 2] = [1, 4];
const CACHE_CAPACITIES: [usize; 2] = [0, 64];

/// Median wall-clock of `reps` runs of `f`.
fn median_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs the experiment; see the module docs for the row kinds.
pub fn serve(ctx: &Ctx) -> ExperimentResult {
    let cores = crate::detected_cores();
    // Engine solve threads: the serving rows measure dispatch/cache
    // overhead and concurrency, not solver scaling (BENCH_greedy covers
    // that), so one solver thread keeps the numbers comparable.
    let threads = 1usize;
    let mut rows = Vec::new();

    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let problem = crate::default_problem(&dataset);

        // --- cold start vs rebuild -------------------------------------
        let build_wall = {
            let t = Instant::now();
            let (snap, _) = Snapshot::build(name, &problem, crate::defaults::D_HAT, threads);
            let elapsed = t.elapsed();
            std::hint::black_box(&snap);
            elapsed
        };
        let (snapshot, _) = Snapshot::build(name, &problem, crate::defaults::D_HAT, threads);
        let bytes = snapshot.to_bytes();
        let load_wall = median_of(ctx.reps.max(3), || {
            let t = Instant::now();
            let s = Snapshot::from_bytes(&bytes).expect("container decodes");
            let elapsed = t.elapsed();
            std::hint::black_box(&s);
            elapsed
        });
        assert!(
            load_wall < build_wall,
            "{name}: cold load ({load_wall:?}) must beat rebuild ({build_wall:?})"
        );
        // Both row kinds share one column set (the table printer takes
        // its columns from the first row); cells that do not apply to a
        // kind hold "-".
        rows.push(
            crate::RowBuilder::new()
                .set("kind", json!("coldstart"))
                .set("dataset", json!(name))
                .set("cores", json!(cores))
                .set("threads", json!(threads))
                .set("clients", json!("-"))
                .set("cache", json!("-"))
                .set("snapshot_bytes", json!(bytes.len()))
                .set("build_ms", super::ms(build_wall))
                .set("load_ms", super::ms(load_wall))
                .set("speedup", json!(ratio(build_wall, load_wall)))
                .set("queries", json!("-"))
                .set("wall_ms", json!("-"))
                .set("qps", json!("-"))
                .set("hit_rate", json!("-"))
                .build(),
        );

        // The ground truth every served answer must match bit-for-bit.
        let reference = solve_threaded(
            &problem,
            Method::Iqt(IqtConfig::iqt(crate::defaults::D_HAT)),
            Selector::Auto,
            threads,
        )
        .solution;
        let request = QueryRequest {
            candidates: None,
            k: problem.k,
            tau: problem.tau,
            block_size: problem.block_size,
            selector: Selector::Auto,
            pf_exact: false,
        };

        // --- loopback serving sweep ------------------------------------
        for cache_capacity in CACHE_CAPACITIES {
            for clients in CLIENTS {
                let engine = QueryEngine::new(
                    Snapshot::from_bytes(&bytes).expect("container decodes"),
                    threads,
                );
                let config = ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers: clients,
                    max_pending: clients * 2 + QUERIES_PER_CLIENT,
                    cache_capacity,
                    threads,
                    ..ServerConfig::default()
                };
                let server = Server::start(config, engine).expect("server binds loopback");
                let addr = server.addr().to_string();

                let t = Instant::now();
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        let addr = addr.clone();
                        let request = request.clone();
                        std::thread::spawn(move || {
                            let mut client = Client::connect(&addr).expect("client connects");
                            (0..QUERIES_PER_CLIENT)
                                .map(|_| client.query(&request).expect("query answered"))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let answers: Vec<_> = handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread joins"))
                    .collect();
                let wall = t.elapsed();

                let mut probe = Client::connect(&addr).expect("stats client connects");
                let stats = probe.stats().expect("stats answered");
                probe.shutdown().expect("shutdown acknowledged");
                server.join();

                for answer in &answers {
                    assert_eq!(
                        answer.solution.selected, reference.selected,
                        "{name}: served selection diverged from direct solve"
                    );
                    assert_eq!(
                        answer.solution.cinf.to_bits(),
                        reference.cinf.to_bits(),
                        "{name}: served cinf diverged from direct solve"
                    );
                    assert_eq!(
                        answer.prune,
                        PruneStats::default(),
                        "{name}: the serving path must evaluate zero influence sets"
                    );
                }
                let total = (clients * QUERIES_PER_CLIENT) as f64;
                let hit_rate = if stats.cache_hits + stats.cache_misses == 0 {
                    0.0
                } else {
                    stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64
                };
                rows.push(
                    crate::RowBuilder::new()
                        .set("kind", json!("serving"))
                        .set("dataset", json!(name))
                        .set("cores", json!(cores))
                        .set("threads", json!(threads))
                        .set("clients", json!(clients))
                        .set("cache", json!(cache_capacity))
                        .set("snapshot_bytes", json!(bytes.len()))
                        .set("build_ms", json!("-"))
                        .set("load_ms", json!("-"))
                        .set("speedup", json!("-"))
                        .set("queries", json!(clients * QUERIES_PER_CLIENT))
                        .set("wall_ms", super::ms(wall))
                        .set(
                            "qps",
                            json!(((total / wall.as_secs_f64().max(1e-9)) * 100.0).round() / 100.0),
                        )
                        .set("hit_rate", crate::percent(hit_rate))
                        .build(),
                );
            }
        }
    }

    ExperimentResult {
        id: "BENCH_serve",
        title: "Serving: snapshot cold-start vs rebuild, loopback throughput, cache hit rate",
        rows,
    }
}

/// `a / b` rounded to 2 decimals.
fn ratio(a: Duration, b: Duration) -> f64 {
    ((a.as_secs_f64() / b.as_secs_f64().max(1e-9)) * 100.0).round() / 100.0
}
