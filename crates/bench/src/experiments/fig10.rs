//! Fig. 10 — scalability in the number of users `|Ω|` (20%…100% of each
//! dataset), total running time per algorithm.
//!
//! Paper expectations: every algorithm grows with `|Ω|`; Baseline is worst;
//! IQT is best by ≥ an order of magnitude over Baseline on C and 30–37%
//! faster than k-CIFP on N.

use crate::{Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig10(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let (candidates, facilities) = dataset.sample_sites_disjoint(
            crate::defaults::N_CANDIDATES,
            crate::defaults::N_FACILITIES,
            crate::defaults::SITE_SEED,
        );
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let n = ((dataset.users.len() as f64) * frac).round() as usize;
            let users = sampler::subset_users(&dataset.users, n, 7);
            let problem = Problem::new(
                users,
                facilities.clone(),
                candidates.clone(),
                crate::defaults::K,
                crate::defaults::TAU,
                Sigmoid::paper_default(),
            );
            let base = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("|Omega|", json!(n));
            rows.push(super::method_times_row(base, &problem, ctx.reps));
        }
    }
    ExperimentResult {
        id: "fig10",
        title: "Running time vs number of users |Omega|",
        rows,
    }
}
