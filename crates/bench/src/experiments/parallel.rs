//! `BENCH_parallel` — serial vs multi-threaded wall-clock of the influence
//! pipelines (written to `BENCH_parallel.json`).
//!
//! Two scaling metrics per thread count `T ∈ {2, 4, 8}`:
//!
//! * `speedupT_wall` — measured wall-clock ratio `t1 / tT` of the real
//!   multi-threaded run. This is bounded by the machine: on a CI box pinned
//!   to a single core (see the `cores` column) it stays ≈ 1 no matter how
//!   well the work distributes.
//! * `speedupT` — the critical-path speedup `sum(chunk times) / max(chunk
//!   times per phase)`: the exact contiguous chunk decomposition the worker
//!   pool uses is replayed **serially**, each chunk timed on the calling
//!   thread. The longest chunk per phase is what a run on `T` free cores
//!   would wait for; the sum is what one core pays for the same pass. Both
//!   come from the same pass (noise cancels, ratio ≤ T by construction).
//!   This measures the decomposition's load balance, not a model — the
//!   same work, same memory layout, same chunk boundaries.
//!
//! **Reading the numbers:** every row carries a `wall_unreliable` flag
//! that is `true` whenever the runner exposes a single core — the
//! `speedupT_wall` columns then carry no parallel signal at all, and the
//! headline metric is the critical-path `speedupT` (and `qps_crit` in
//! `BENCH_serve`), which replays the exact chunk decomposition and stays
//! meaningful at any core count.
//!
//! Every threaded run is also checked bit-identical to the serial sets
//! (the pipeline's core invariant).

use crate::{Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;
use std::time::{Duration, Instant};

const THREADS: [usize; 3] = [2, 4, 8];

/// Median wall-clock of `reps` runs of `f`.
fn median_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The chunk boundaries `map_chunks` uses for `n_items` over `threads`.
fn chunk_bounds(n_items: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.min(n_items.max(1));
    let chunk = n_items.div_ceil(threads);
    (0..threads)
        .map(|t| {
            let lo = (t * chunk).min(n_items);
            let hi = (lo + chunk).min(n_items);
            lo..hi
        })
        .collect()
}

/// One serial replay of the Baseline's chunk decomposition: `serial` sums
/// every chunk's time (the one-core cost of this very pass) and `critical`
/// sums the longest chunk of each phase (what `threads` free cores would
/// wait for; the phases run one after the other in
/// `baseline_influence_sets_counted`). Both come from the same pass, so
/// `serial / critical` is a per-pass load-balance ratio, never above
/// `threads`.
struct Replay {
    serial: Duration,
    critical: Duration,
}

fn baseline_replay(problem: &Problem, threads: usize) -> Replay {
    let n_users = problem.n_users();
    let phase = |bounds: Vec<std::ops::Range<usize>>, work: &dyn Fn(usize)| {
        let times: Vec<Duration> = bounds
            .into_iter()
            .map(|range| {
                let t = Instant::now();
                range.for_each(work);
                t.elapsed()
            })
            .collect();
        (
            times.iter().sum::<Duration>(),
            times.into_iter().max().unwrap_or_default(),
        )
    };
    let (cand_sum, cand_max) = phase(chunk_bounds(problem.n_candidates(), threads), &|ci| {
        let c = &problem.candidates[ci];
        for o in 0..n_users {
            std::hint::black_box(influences(
                &problem.pf,
                c,
                problem.users[o].positions(),
                problem.tau,
            ));
        }
    });
    let (fac_sum, fac_max) = phase(chunk_bounds(problem.n_facilities(), threads), &|fi| {
        let f = &problem.facilities[fi];
        for o in 0..n_users {
            std::hint::black_box(influences(
                &problem.pf,
                f,
                problem.users[o].positions(),
                problem.tau,
            ));
        }
    });
    Replay {
        serial: cand_sum + fac_sum,
        critical: cand_max + fac_max,
    }
}

/// Runs the experiment; see the module docs for the two scaling metrics.
pub fn parallel(ctx: &Ctx) -> ExperimentResult {
    let cores = crate::detected_cores();
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let problem = crate::problem_with(
            &dataset,
            crate::defaults::N_CANDIDATES,
            crate::defaults::N_FACILITIES,
            crate::defaults::K,
            crate::defaults::TAU,
        );

        for (pipeline, method) in [
            ("IQT", Method::Iqt(IqtConfig::default())),
            ("Baseline", Method::Baseline),
        ] {
            let (reference, _, _) = influence_sets_threaded(&problem, method, 1);
            let timed = |threads: usize| {
                median_of(ctx.reps, || {
                    let t = Instant::now();
                    let (sets, _, _) = influence_sets_threaded(&problem, method, threads);
                    let elapsed = t.elapsed();
                    assert_eq!(
                        sets, reference,
                        "{pipeline} diverged from serial at {threads} threads"
                    );
                    elapsed
                })
            };
            let t1 = timed(1);
            let mut r = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("pipeline", json!(pipeline))
                .set("cores", json!(cores))
                .set("wall_unreliable", json!(cores == 1))
                .set("t1_ms", super::ms(t1));
            for threads in THREADS {
                let tn = timed(threads);
                r = r
                    .set(format!("t{threads}_wall_ms"), super::ms(tn))
                    .set(format!("speedup{threads}_wall"), json!(ratio(t1, tn)));
                // Load-balance critical path (what `threads` free cores
                // would wait for) — measurable even on a 1-core runner.
                // Each rep's ratio comes from one pass, so noise between
                // passes cancels out of the speedup.
                if pipeline == "Baseline" {
                    let mut ratios = Vec::with_capacity(ctx.reps.max(1));
                    let mut criticals = Vec::with_capacity(ctx.reps.max(1));
                    for _ in 0..ctx.reps.max(1) {
                        let rep = baseline_replay(&problem, threads);
                        ratios.push(ratio(rep.serial, rep.critical));
                        criticals.push(rep.critical);
                    }
                    ratios.sort_unstable_by(f64::total_cmp);
                    criticals.sort_unstable();
                    r = r
                        .set(
                            format!("t{threads}_critical_ms"),
                            super::ms(criticals[criticals.len() / 2]),
                        )
                        .set(format!("speedup{threads}"), json!(ratios[ratios.len() / 2]));
                }
            }
            rows.push(r.build());
        }
    }
    ExperimentResult {
        id: "BENCH_parallel",
        title: "Parallel scaling: wall-clock and critical-path speedups vs threads",
        rows,
    }
}

/// `a / b` rounded to 2 decimals.
fn ratio(a: Duration, b: Duration) -> f64 {
    ((a.as_secs_f64() / b.as_secs_f64().max(1e-9)) * 100.0).round() / 100.0
}
