//! Fig. 7 — effect of the proposed pruning rules.
//!
//! (a) the fraction of user–facility pairs decided by the IS and NIR rules
//! as τ varies, per dataset; (b) the pruning effect and runtime of IQT-C
//! vs IQT (+NIB) vs IQT-PINO (+NIB+IA).
//!
//! Paper expectations: NIR dominates IS; IS weakens and NIR strengthens as
//! τ grows; NIR prunes > 90% in the uniform dataset C but far less in the
//! skewed dataset N; NIB adds a little on N and almost nothing on C; IA
//! adds nearly nothing on top.

use super::{ms, TAUS};
use crate::{default_problem, percent, problem_with, row, Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig7(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for tau in TAUS {
            let problem = problem_with(
                &dataset,
                crate::defaults::N_CANDIDATES,
                crate::defaults::N_FACILITIES,
                crate::defaults::K,
                tau,
            );
            for (variant, config) in [
                ("IQT-C", IqtConfig::iqt_c(crate::defaults::D_HAT)),
                ("IQT", IqtConfig::iqt(crate::defaults::D_HAT)),
                ("IQT-PINO", IqtConfig::iqt_pino(crate::defaults::D_HAT)),
            ] {
                let report = solve(&problem, Method::Iqt(config));
                rows.push(row(&[
                    ("dataset", json!(name)),
                    ("tau", json!(tau)),
                    ("variant", json!(variant)),
                    ("IS%", percent(report.stats.is_fraction())),
                    ("NIR%", percent(report.stats.nir_fraction())),
                    ("NIB%", percent(report.stats.nib_fraction())),
                    ("IA%", percent(report.stats.ia_fraction())),
                    ("pruned%", percent(report.stats.pruned_fraction())),
                    ("time_ms", ms(report.times.total())),
                ]));
            }
        }
        // Anchor row at the defaults for quick eyeballing.
        let report = solve(
            &default_problem(&dataset),
            Method::Iqt(IqtConfig::default()),
        );
        rows.push(row(&[
            ("dataset", json!(name)),
            ("tau", json!(crate::defaults::TAU)),
            ("variant", json!("IQT(default)")),
            ("IS%", percent(report.stats.is_fraction())),
            ("NIR%", percent(report.stats.nir_fraction())),
            ("NIB%", percent(report.stats.nib_fraction())),
            ("IA%", percent(report.stats.ia_fraction())),
            ("pruned%", percent(report.stats.pruned_fraction())),
            ("time_ms", ms(report.times.total())),
        ]));
    }
    ExperimentResult {
        id: "fig7",
        title: "Effect of the IS/NIR pruning rules and the NIB/IA add-ons",
        rows,
    }
}
