//! Fig. 13 — running time vs the probability threshold
//! `τ ∈ {0.1, 0.3, 0.5, 0.7, 0.9}`.
//!
//! Paper expectations: Baseline is flat in τ; k-CIFP *drops* sharply as τ
//! grows (mMR shrinks, IA/NIB windows tighten); IQT's behaviour depends on
//! the data distribution (NIR strengthens with τ on uniform C; skewed N
//! weakens both IS and NIR) but it stays the fastest.

use super::TAUS;
use crate::{Ctx, ExperimentResult};
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig13(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for tau in TAUS {
            let problem = crate::problem_with(
                &dataset,
                crate::defaults::N_CANDIDATES,
                crate::defaults::N_FACILITIES,
                crate::defaults::K,
                tau,
            );
            let base = crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("tau", json!(tau));
            rows.push(super::method_times_row(base, &problem, ctx.reps));
        }
    }
    ExperimentResult {
        id: "fig13",
        title: "Running time vs probability threshold tau",
        rows,
    }
}
