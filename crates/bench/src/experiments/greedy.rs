//! `BENCH_greedy` — the selection phase head-to-head (written to
//! `BENCH_greedy.json`): rescan greedy vs CELF vs decremental maintenance
//! over the inverted user → candidate CSR, swept over `k` and `|C|` on both
//! dataset presets.
//!
//! Besides wall-clock medians, each row reports the selectors'
//! `SelectionStats` work counters (all thread-count-invariant, asserted
//! here at 1 vs 4 workers):
//!
//! * `celf_rescanned` — forward-CSR entries CELF re-visits after a
//!   candidate's first evaluation (its re-evaluation work).
//! * `dec_updates` — class-count decrements the decremental selector
//!   performs; bounded by `inverted_entries` (one inverted-CSR pass) over
//!   all `k` rounds, asserted per row.
//!
//! Two invariants are asserted on every row: all three selectors return
//! **byte-identical** solutions, and at `k ≥ 20` the decremental selector's
//! `dec_updates` stays strictly below CELF's `celf_rescanned` — the point
//! of maintaining gains instead of re-deriving them. The work comparison
//! is skipped on instances with fewer than [`MIN_COMPARABLE_ENTRIES`]
//! influence entries (heavily down-scaled smoke datasets), where both
//! counters are double-digit noise; at scale ≥ 0.3 every row qualifies.

use crate::{Ctx, ExperimentResult};
use mc2ls::core::greedy;
use mc2ls::prelude::*;
use serde_json::json;
use std::time::{Duration, Instant};

const K_SWEEP: [usize; 4] = [5, 10, 20, 40];
const CANDIDATE_SWEEP: [usize; 2] = [100, 200];

/// Minimum `Σ|Ω_c|` for the decremental-vs-CELF work assertion to be
/// meaningful (see the module docs).
const MIN_COMPARABLE_ENTRIES: u64 = 1000;

/// Median wall-clock of `reps` runs of `f`.
fn median_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs the experiment; see the module docs for the counters and asserts.
pub fn greedy(ctx: &Ctx) -> ExperimentResult {
    let cores = crate::detected_cores();
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for n_c in CANDIDATE_SWEEP {
            // The selection phase consumes InfluenceSets; build them once
            // per (dataset, |C|) and sweep k over the same sets. `k = 1`
            // here is a placeholder — the problem's k is not read below.
            let problem = crate::problem_with(
                &dataset,
                n_c,
                crate::defaults::N_FACILITIES,
                1,
                crate::defaults::TAU,
            );
            let (sets, _, _) =
                influence_sets_threaded(&problem, Method::Iqt(IqtConfig::default()), 1);

            for k_req in K_SWEEP {
                // Tiny smoke scales clamp the sampled candidate pool; keep
                // k admissible and record what actually ran.
                let k = k_req.min(sets.n_candidates());

                let (reference, rescan_stats) = greedy::select_counted(&sets, k);
                let (celf_sol, celf_stats) = greedy::select_lazy_counted(&sets, k, 1);
                let (dec_sol, dec_stats) = greedy::select_decremental_counted(&sets, k, 1);
                for (label, sol) in [("celf", &celf_sol), ("decremental", &dec_sol)] {
                    assert_eq!(
                        reference.selected, sol.selected,
                        "{label} selected different sites ({name} |C|={n_c} k={k})"
                    );
                    assert_eq!(
                        reference.cinf.to_bits(),
                        sol.cinf.to_bits(),
                        "{label} cinf bits diverged ({name} |C|={n_c} k={k})"
                    );
                }
                // The counters must not depend on the worker count.
                assert_eq!(
                    celf_stats,
                    greedy::select_lazy_counted(&sets, k, 4).1,
                    "CELF stats diverged at 4 threads ({name} |C|={n_c} k={k})"
                );
                assert_eq!(
                    dec_stats,
                    greedy::select_decremental_counted(&sets, k, 4).1,
                    "decremental stats diverged at 4 threads ({name} |C|={n_c} k={k})"
                );
                assert!(
                    dec_stats.gain_updates <= dec_stats.inverted_entries,
                    "decremental exceeded its one-inverted-pass bound"
                );
                if k >= 20 && dec_stats.inverted_entries >= MIN_COMPARABLE_ENTRIES {
                    assert!(
                        dec_stats.gain_updates < celf_stats.users_rescanned,
                        "decremental update work ({}) not below CELF re-scan work ({}) \
                         at {name} |C|={n_c} k={k}",
                        dec_stats.gain_updates,
                        celf_stats.users_rescanned
                    );
                }

                let rescan_ms = median_of(ctx.reps, || {
                    let t = Instant::now();
                    std::hint::black_box(greedy::select(&sets, k));
                    t.elapsed()
                });
                let celf_ms = median_of(ctx.reps, || {
                    let t = Instant::now();
                    std::hint::black_box(greedy::select_lazy(&sets, k));
                    t.elapsed()
                });
                let dec_ms = median_of(ctx.reps, || {
                    let t = Instant::now();
                    std::hint::black_box(greedy::select_decremental(&sets, k));
                    t.elapsed()
                });

                rows.push(
                    crate::RowBuilder::new()
                        .set("dataset", json!(name))
                        .set("n_candidates", json!(sets.n_candidates()))
                        .set("k", json!(k))
                        .set("cores", json!(cores))
                        .set("rescan_ms", super::ms(rescan_ms))
                        .set("celf_ms", super::ms(celf_ms))
                        .set("decremental_ms", super::ms(dec_ms))
                        .set("rescan_scanned", json!(rescan_stats.users_scanned))
                        .set("celf_rescanned", json!(celf_stats.users_rescanned))
                        .set("celf_gain_evals", json!(celf_stats.gain_evals))
                        .set("dec_updates", json!(dec_stats.gain_updates))
                        .set("dec_gain_evals", json!(dec_stats.gain_evals))
                        .set("inverted_entries", json!(dec_stats.inverted_entries))
                        .set("covered_users", json!(dec_stats.covered_users))
                        .build(),
                );
            }
        }
    }
    ExperimentResult {
        id: "BENCH_greedy",
        title: "Selection phase: rescan vs CELF vs decremental inverted-CSR greedy",
        rows,
    }
}
