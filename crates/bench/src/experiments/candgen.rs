//! Candidate-generation quality (the MaxRS-style sweep of the candgen
//! crate): at equal `k`, does solving over the top-`m` density peaks
//! proposed from the users' positions reach the collective influence of
//! the preset (POI-sampled) candidate pool?
//!
//! The experiment also pins the competition-model dispatch: an explicit
//! `Model::Cumulative` problem must solve bit-identically to the default.

use crate::{Ctx, ExperimentResult};
use mc2ls::prelude::*;
use mc2ls_candgen::{propose, SweepConfig};
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol.
pub fn candgen(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut best_ratio = f64::NEG_INFINITY;
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        let preset_problem = crate::default_problem(&dataset);
        let preset = solve(&preset_problem, Method::Iqt(IqtConfig::default()));

        // The trait-dispatched cumulative model is the default: making it
        // explicit must not move a single bit of the solution.
        let explicit = solve(
            &crate::default_problem(&dataset).with_model(Model::Cumulative),
            Method::Iqt(IqtConfig::default()),
        );
        assert_eq!(
            preset.solution.selected, explicit.solution.selected,
            "explicit cumulative model changed the selection on {name}"
        );
        assert_eq!(
            preset.solution.cinf.to_bits(),
            explicit.solution.cinf.to_bits(),
            "explicit cumulative model changed cinf bits on {name}"
        );

        // Propose the same number of candidates from the users' positions
        // (window = the paper's d̂ leaf diagonal) and solve the identical
        // instance over them: same users, facilities, k, τ.
        let points: Vec<Point> = dataset
            .users
            .iter()
            .flat_map(|u| u.positions().iter().copied())
            .collect();
        let cfg = SweepConfig::new(crate::defaults::D_HAT, preset_problem.candidates.len());
        let proposal = propose(&points, &cfg);
        let generated_problem = Problem::new(
            dataset.users.clone(),
            preset_problem.facilities.clone(),
            proposal.sites.iter().map(|s| s.center).collect(),
            preset_problem.k,
            preset_problem.tau,
            Sigmoid::paper_default(),
        );
        let generated = solve(&generated_problem, Method::Iqt(IqtConfig::default()));

        let ratio = generated.solution.cinf / preset.solution.cinf.max(1e-12);
        best_ratio = best_ratio.max(ratio);
        rows.push(
            crate::RowBuilder::new()
                .set("dataset", json!(name))
                .set("k", json!(preset_problem.k))
                .set("m", json!(proposal.sites.len()))
                .set("positions", json!(proposal.stats.n_positions))
                .set(
                    "preset_cinf",
                    json!((preset.solution.cinf * 100.0).round() / 100.0),
                )
                .set(
                    "generated_cinf",
                    json!((generated.solution.cinf * 100.0).round() / 100.0),
                )
                .set("ratio", json!((ratio * 1000.0).round() / 1000.0))
                .build(),
        );
    }
    assert!(
        best_ratio >= 1.0,
        "generated candidates must match the preset pool on at least one \
         preset (best ratio {best_ratio:.3})"
    );
    ExperimentResult {
        id: "BENCH_candgen",
        title: "Candidate generation: proposed density peaks vs preset POI candidates",
        rows,
    }
}
