//! Table I — execution time of IQT vs IQT-PINO when the IA rule is added,
//! varying the number of abstract facilities `|C ∪ F|` from 300 to 1,100 at
//! τ = 0.9 (the only setting where IA showed any pruning gain in Fig. 7b).
//!
//! Paper expectation: IQT-PINO is *slower* at every size — the IA range
//! queries cost more than the verification they save.

use super::ms;
use crate::{Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn table1(ctx: &Ctx) -> ExperimentResult {
    let dataset = crate::new_york(ctx.scale_n);
    let mut rows = Vec::new();
    for total in [300usize, 500, 700, 900, 1100] {
        let n_c = crate::defaults::N_CANDIDATES;
        let n_f = total - n_c;
        let problem = crate::problem_with(&dataset, n_c, n_f, crate::defaults::K, 0.9);
        let iqt = solve(
            &problem,
            Method::Iqt(IqtConfig::iqt(crate::defaults::D_HAT)),
        );
        let pino = solve(
            &problem,
            Method::Iqt(IqtConfig::iqt_pino(crate::defaults::D_HAT)),
        );
        assert!(iqt.solution.equivalent(&pino.solution));
        rows.push(
            crate::RowBuilder::new()
                .set("abstract_facilities", json!(total))
                .set("IQT_ms", ms(iqt.times.total()))
                .set("IQT-PINO_ms", ms(pino.times.total()))
                .set("IQT_verified", json!(iqt.stats.verified))
                .set("IQT-PINO_verified", json!(pino.stats.verified))
                .set("IA_decided", json!(pino.stats.ia_decided))
                .build(),
        );
    }
    ExperimentResult {
        id: "table1",
        title: "IQT vs IQT-PINO as abstract facilities grow (tau = 0.9)",
        rows,
    }
}
