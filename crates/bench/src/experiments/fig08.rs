//! Fig. 8 — the new user-pruning rules (IS, NIR) against the classical
//! facility-pruning rules (IA, NIB), measured as the fraction of pairs each
//! rule family decides.
//!
//! IS/NIR fractions come from an `IQT-C` run (they act alone there); IA/NIB
//! fractions come from an Adapted k-CIFP run (its only rules). Paper
//! expectations: IS beats IA everywhere; NIR beats NIB by >20 points on the
//! uniform dataset C, while NIB is slightly ahead (<10 points) on the
//! skewed dataset N.

use super::TAUS;
use crate::{percent, problem_with, row, Ctx, ExperimentResult};
use mc2ls::prelude::*;
use serde_json::json;

/// Runs the experiment; see the module docs for the protocol and the
/// paper expectations it checks.
pub fn fig8(ctx: &Ctx) -> ExperimentResult {
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("C", crate::california(ctx.scale_c)),
        ("N", crate::new_york(ctx.scale_n)),
    ] {
        for tau in TAUS {
            let problem = problem_with(
                &dataset,
                crate::defaults::N_CANDIDATES,
                crate::defaults::N_FACILITIES,
                crate::defaults::K,
                tau,
            );
            let iqt = solve(
                &problem,
                Method::Iqt(IqtConfig::iqt_c(crate::defaults::D_HAT)),
            );
            let kcifp = solve(&problem, Method::KCifp);
            rows.push(row(&[
                ("dataset", json!(name)),
                ("tau", json!(tau)),
                ("IS%", percent(iqt.stats.is_fraction())),
                ("IA%", percent(kcifp.stats.ia_fraction())),
                ("NIR%", percent(iqt.stats.nir_fraction())),
                ("NIB%", percent(kcifp.stats.nib_fraction())),
            ]));
        }
    }
    ExperimentResult {
        id: "fig8",
        title: "User-pruning (IS/NIR) vs classical facility-pruning (IA/NIB)",
        rows,
    }
}
