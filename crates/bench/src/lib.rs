//! Benchmark harness for the MC²LS evaluation (paper §VII).
//!
//! Every table and figure of the paper has a corresponding experiment in
//! [`experiments`]; the `experiments` binary runs them and prints the same
//! rows/series the paper reports, plus machine-readable JSON next to the
//! console output. The Criterion benches in `benches/` time one
//! representative configuration per figure at reduced scale.
//!
//! Dataset instances are cached per `(preset, scale)` so sweeps over τ, k,
//! |C|, |F| re-use one generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The bench harness is a sanctioned writer: its whole job is printing
// result tables (workspace policy denies printing elsewhere).
#![allow(clippy::print_stdout, clippy::print_stderr)]

pub mod experiments;
mod harness;

pub use harness::{detected_cores, percent, row, Ctx, ExperimentResult, RowBuilder};

use mc2ls::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Paper defaults (§VII-A): `|C| = 100`, `|F| = 200`, `k = 10`, `τ = 0.7`,
/// `d̂ = 2 km`, sigmoid PF with `ρ = 1`.
pub mod defaults {
    /// Default number of candidate locations.
    pub const N_CANDIDATES: usize = 100;
    /// Default number of existing facilities.
    pub const N_FACILITIES: usize = 200;
    /// Default number of selected sites.
    pub const K: usize = 10;
    /// Default probability threshold.
    pub const TAU: f64 = 0.7;
    /// Default IQuad-tree leaf diagonal (km).
    pub const D_HAT: f64 = 2.0;
    /// Seed for site sampling.
    pub const SITE_SEED: u64 = 20_240_129;
}

type DatasetCache = Mutex<HashMap<(char, u64), Arc<Dataset>>>;

fn cache() -> &'static DatasetCache {
    static CACHE: OnceLock<DatasetCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cached(which: char, scale: f64) -> Arc<Dataset> {
    let key = (which, scale.to_bits());
    if let Some(d) = cache().lock().unwrap().get(&key) {
        return d.clone();
    }
    let cfg = match which {
        'C' => presets::california_scaled(scale),
        'N' => presets::new_york_scaled(scale),
        _ => unreachable!("dataset key must be C or N"),
    };
    let d = Arc::new(cfg.generate());
    cache().lock().unwrap().insert(key, d.clone());
    d
}

/// The California-like dataset at the given scale, cached per process.
pub fn california(scale: f64) -> Arc<Dataset> {
    cached('C', scale)
}

/// The New-York-like dataset at the given scale, cached per process.
pub fn new_york(scale: f64) -> Arc<Dataset> {
    cached('N', scale)
}

/// Builds the default-parameter problem over a dataset: paper-default site
/// counts (clamped to the POI pool), `k`, `τ`.
pub fn default_problem(dataset: &Dataset) -> Problem {
    problem_with(
        dataset,
        defaults::N_CANDIDATES,
        defaults::N_FACILITIES,
        defaults::K,
        defaults::TAU,
    )
}

/// Builds a problem with explicit `|C|`, `|F|`, `k`, `τ` over a dataset.
pub fn problem_with(
    dataset: &Dataset,
    n_candidates: usize,
    n_facilities: usize,
    k: usize,
    tau: f64,
) -> Problem {
    let (candidates, facilities) =
        dataset.sample_sites_disjoint(n_candidates, n_facilities, defaults::SITE_SEED);
    Problem::new(
        dataset.users.clone(),
        facilities,
        candidates,
        k,
        tau,
        Sigmoid::paper_default(),
    )
}

/// The methods the paper compares, in its plot-legend order.
pub fn paper_methods() -> [(Method, &'static str); 4] {
    [
        (Method::Baseline, "Baseline"),
        (Method::KCifp, "k-CIFP"),
        (Method::Iqt(IqtConfig::iqt(defaults::D_HAT)), "IQT"),
        (Method::Iqt(IqtConfig::iqt_c(defaults::D_HAT)), "IQT-C"),
    ]
}
