//! Edge-case matrix of the MaxRS-style sweep: empty input, all-coincident
//! positions, a window dwarfing the data extent, min-separation tie
//! handling (smallest Morton code wins), and bit-determinism at any
//! thread count.

use mc2ls_candgen::{propose, propose_soa, CandidateSite, SweepConfig};
use mc2ls_geo::Point;
use rand::prelude::*;

fn cluster(center: (f64, f64), n: usize, spread: f64, rng: &mut StdRng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                center.0 + rng.gen_range(-spread..spread),
                center.1 + rng.gen_range(-spread..spread),
            )
        })
        .collect()
}

fn assert_sites_identical(a: &[CandidateSite], b: &[CandidateSite], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: site count");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.center.x.to_bits(),
            y.center.x.to_bits(),
            "{what}: site {i} center.x"
        );
        assert_eq!(
            x.center.y.to_bits(),
            y.center.y.to_bits(),
            "{what}: site {i} center.y"
        );
        assert_eq!(x.score, y.score, "{what}: site {i} score");
        assert_eq!(x.anchor, y.anchor, "{what}: site {i} anchor");
    }
}

#[test]
fn empty_input_yields_an_empty_proposal() {
    let p = propose(&[], &SweepConfig::new(1.0, 5));
    assert!(p.sites.is_empty());
    assert_eq!(p.stats.n_positions, 0);
    assert_eq!(p.stats.anchors, 0);
}

#[test]
fn all_coincident_positions_yield_one_site_at_the_point() {
    let pt = Point::new(3.25, -1.5);
    let points = vec![pt; 40];
    let p = propose(&points, &SweepConfig::new(2.0, 7));
    assert_eq!(p.sites.len(), 1, "one degenerate cell, one site");
    assert_eq!(p.sites[0].score, 40);
    assert!(
        p.sites[0].center.distance(&pt) < 1e-9,
        "center {:?} must sit on the coincident point",
        p.sites[0].center
    );
}

#[test]
fn window_larger_than_the_data_mbr_yields_one_covering_site() {
    let mut rng = StdRng::seed_from_u64(7);
    let points = cluster((0.0, 0.0), 60, 1.0, &mut rng);
    // Extent is ~2×2; a 50×50 window covers it from any anchor.
    let p = propose(&points, &SweepConfig::new(50.0, 4));
    assert_eq!(p.sites.len(), 1, "every anchor clamps to the same window");
    assert_eq!(p.sites[0].score, 60, "the single window covers everything");
}

#[test]
fn equal_score_ties_rank_by_smallest_morton_code() {
    // Two equal-mass point groups in opposite corners, far enough apart
    // that min-separation never links them. The SW group has the smaller
    // Morton code at every depth, so it must be emitted first.
    let mut points = vec![Point::new(0.1, 0.1); 5];
    points.extend(vec![Point::new(99.9, 99.9); 5]);
    let p = propose(&points, &SweepConfig::new(1.0, 2));
    assert_eq!(p.sites.len(), 2);
    assert_eq!(p.sites[0].score, p.sites[1].score, "scores tie");
    assert!(
        p.sites[0].anchor < p.sites[1].anchor,
        "smallest Morton code first"
    );
    assert!(
        p.sites[0].center.x < 50.0 && p.sites[1].center.x > 50.0,
        "SW group wins the tie"
    );
}

#[test]
fn min_separation_drops_the_larger_morton_tie() {
    // One tight group: many overlapping windows see the same mass. With a
    // separation radius wider than the group, only the best (smallest
    // Morton among ties) survives.
    let mut rng = StdRng::seed_from_u64(11);
    let mut points = cluster((5.0, 5.0), 50, 0.4, &mut rng);
    // A decoy far away so the extent (and grid) is non-trivial.
    points.extend(cluster((40.0, 40.0), 10, 0.4, &mut rng));
    let cfg = SweepConfig::new(2.0, 8).with_min_separation(10.0);
    let p = propose(&points, &cfg);
    assert_eq!(
        p.sites.len(),
        2,
        "one site per cluster once separation prunes the overlaps"
    );
    assert!(p.sites[0].score >= p.sites[1].score);
    assert!(
        p.sites[0].score >= 50,
        "the dense cluster's window sees its whole mass"
    );
}

#[test]
fn zero_min_separation_emits_overlapping_windows() {
    let mut rng = StdRng::seed_from_u64(13);
    let points = cluster((0.0, 0.0), 80, 2.0, &mut rng);
    let cfg = SweepConfig::new(1.5, 6).with_min_separation(0.0);
    let p = propose(&points, &cfg);
    assert_eq!(p.sites.len(), 6, "no dedup: anchors are plentiful");
    for w in p.sites.windows(2) {
        assert!(
            w[0].score > w[1].score || (w[0].score == w[1].score && w[0].anchor < w[1].anchor),
            "ranked by (score desc, Morton asc)"
        );
    }
}

#[test]
fn results_are_bit_identical_at_any_thread_count() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut points = cluster((0.0, 0.0), 300, 6.0, &mut rng);
    points.extend(cluster((25.0, -10.0), 200, 3.0, &mut rng));
    points.extend(cluster((-15.0, 30.0), 150, 2.0, &mut rng));
    let serial = propose(&points, &SweepConfig::new(4.0, 10));
    for threads in [2usize, 3, 4, 8] {
        let par = propose(&points, &SweepConfig::new(4.0, 10).with_threads(threads));
        assert_sites_identical(&serial.sites, &par.sites, &format!("threads={threads}"));
        assert_eq!(serial.stats, par.stats, "threads={threads}: stats");
    }
}

#[test]
fn soa_and_point_entry_points_agree() {
    let mut rng = StdRng::seed_from_u64(19);
    let points = cluster((2.0, 3.0), 120, 5.0, &mut rng);
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let a = propose(&points, &SweepConfig::new(2.5, 5));
    let b = propose_soa(&xs, &ys, &SweepConfig::new(2.5, 5));
    assert_sites_identical(&a.sites, &b.sites, "soa vs points");
}

#[test]
fn scores_match_a_brute_force_window_count() {
    // The emitted score must equal the number of positions inside the
    // winning window's cell footprint, recomputed brute-force.
    let mut rng = StdRng::seed_from_u64(23);
    let mut points = cluster((0.0, 0.0), 90, 4.0, &mut rng);
    points.extend(cluster((12.0, 7.0), 60, 1.5, &mut rng));
    let cfg = SweepConfig::new(3.0, 3);
    let p = propose(&points, &cfg);
    assert!(!p.sites.is_empty());
    let span = p.stats.cell * p.stats.window_cells as f64;
    for site in &p.sites {
        // The cell window is the axis-aligned square of side s·cell
        // centered on the emitted center (anchor corner + half-span).
        let (x0, y0) = (site.center.x - span * 0.5, site.center.y - span * 0.5);
        let brute = points
            .iter()
            .filter(|q| q.x >= x0 && q.x < x0 + span && q.y >= y0 && q.y < y0 + span)
            .count() as u64;
        // Cell membership is decided by the grid descent's `>=` splits;
        // positions exactly on the window's far edge can be counted by
        // the grid but not the open interval above, so allow equality
        // with the half-open recount or a tiny boundary surplus.
        assert!(
            site.score >= brute && site.score <= brute + 2,
            "score {} vs brute {brute}",
            site.score
        );
    }
}

#[test]
#[should_panic(expected = "positions must be finite")]
fn non_finite_positions_are_rejected() {
    propose(&[Point::new(f64::NAN, 0.0)], &SweepConfig::new(1.0, 1));
}

#[test]
#[should_panic(expected = "window must be positive")]
fn zero_window_is_rejected() {
    SweepConfig::new(0.0, 1);
}

#[test]
#[should_panic(expected = "m must be at least 1")]
fn zero_m_is_rejected() {
    SweepConfig::new(1.0, 0);
}
