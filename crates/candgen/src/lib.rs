//! `mc2ls-candgen` — MaxRS-style candidate-site generation.
//!
//! Every MC²LS solver in this workspace *ranks a preset candidate list*:
//! the instance arrives with `C` already chosen and the algorithms decide
//! which `k` of them to open. This crate closes the loop upstream and
//! **proposes the sites themselves**, in the spirit of the MaxRS
//! (maximising-range-sum) problem family: aggregate the users' recorded
//! positions on a Morton-cell grid, slide an `r × r` window across the
//! grid, and emit the centers of the top-`m` densest windows as a
//! candidate file the existing pipeline consumes unchanged.
//!
//! The sweep is **deterministic at any thread count**: per-cell position
//! counts are integer sums merged per key (commutative), anchors are
//! enumerated in `BTreeSet` order, window scores are exact `u64` sums, and
//! ties rank by the anchor cell's Morton code (smallest wins — also the
//! winner under the min-separation dedup rule). See
//! [`sweep::propose`] for the full contract and
//! `tests/` for the edge-case matrix (empty input, all-coincident
//! positions, window larger than the data MBR, tie dedup).
//!
//! Grid cells reuse [`mc2ls_geo::grid_coords`] — the *same* quad-descent
//! the IQuad-tree and the blocked verification substrate walk — so a
//! position lands in the identical cell everywhere in the workspace, and
//! the serve layer's `PROPOSE` verb can answer straight from a snapshot's
//! SoA [`mc2ls_influence::PositionBlocks`] without re-deriving anything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sweep;

pub use sweep::{
    propose, propose_from_blocks, propose_soa, CandidateSite, Proposal, SweepConfig, SweepStats,
    MAX_GRID_DEPTH,
};
