//! The grid-aggregated MaxRS sweep.
//!
//! # Algorithm
//!
//! 1. **Extent.** Fold every position into a bounding rectangle and grow
//!    it to a root [`Square`] (the same `QuadTree::new` convention the
//!    index crate uses: side = max(width, height)).
//! 2. **Depth.** Halve the cell side until it is at most half the window
//!    (`cell ≤ r/2`), capped at [`MAX_GRID_DEPTH`] levels. The window then
//!    spans `s = ⌈r / cell⌉ ∈ {1..4}` cells per axis.
//! 3. **Count.** Each position maps to its `(column, row)` grid cell via
//!    [`grid_coords`] — the identical quad descent the IQuad-tree and the
//!    blocked verifier walk — and per-cell counts are summed. The count
//!    pass chunks across threads ([`map_chunks`]) and merges per-key `u64`
//!    sums, so the aggregate is independent of the chunking.
//! 4. **Sweep.** Candidate window anchors are the non-empty cells and
//!    their `s×s` down-left shifts (clamped into the grid), deduplicated
//!    in `BTreeSet` order. Each anchor's score — positions inside its
//!    `s×s` cell window — is a row-range sum over a row-grouped sparse
//!    grid with per-row prefix sums and binary-searched column ranges.
//! 5. **Rank + dedup.** Anchors sort by (score descending, anchor Morton
//!    code ascending); a greedy pass emits window centers at least
//!    `min_separation` apart (Euclidean), stopping at `m`. Equal-score
//!    ties therefore resolve to the smallest Morton code, and a tied
//!    anchor too close to an already-accepted one is dropped.
//!
//! The sweep is a *heuristic at cell resolution* (classic MaxRS grid
//! approximation): the reported score counts the positions in the `s×s`
//! cell window, which contains the `r×r` continuous window anchored at
//! the same corner. Everything downstream re-scores the proposed sites
//! with the exact `cinf` pipeline, so the approximation only steers
//! *where* candidates are proposed, never how they are ranked by the
//! solver.

use mc2ls_core::parallel::{map_chunks, map_items};
use mc2ls_geo::{grid_coords, Extent, Point, Square};
use mc2ls_influence::PositionBlocks;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Deepest quad subdivision the sweep will use (`2^16` cells per axis).
/// Beyond this the grid outresolves any realistic dataset while the
/// per-axis cell coordinates still interleave into one `u64` Morton code.
pub const MAX_GRID_DEPTH: usize = 16;

/// Parameters of one sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Side `r` of the square sweep window, in the dataset's coordinate
    /// units (km for the shipped presets).
    pub window: f64,
    /// Number of candidate sites to emit (the sweep may return fewer when
    /// the min-separation rule exhausts the anchors first).
    pub m: usize,
    /// Minimum Euclidean distance between two emitted window centers.
    /// `0.0` disables the dedup rule entirely.
    pub min_separation: f64,
    /// Worker threads for the count and score passes. Results are
    /// bit-identical at any value.
    pub threads: usize,
}

impl SweepConfig {
    /// A sweep emitting `m` sites from an `r × r` window, with the
    /// default separation of half a window and a single worker thread.
    ///
    /// # Panics
    /// Panics when `window` is not strictly positive and finite or when
    /// `m == 0` — construction bugs at the call site, mirroring
    /// `Problem::new`.
    pub fn new(window: f64, m: usize) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive and finite, got {window}"
        );
        assert!(m >= 1, "m must be at least 1");
        SweepConfig {
            window,
            m,
            min_separation: window * 0.5,
            threads: 1,
        }
    }

    /// Overrides the min-separation radius (must be finite and `≥ 0`).
    ///
    /// # Panics
    /// Panics on a negative or non-finite radius.
    pub fn with_min_separation(mut self, min_separation: f64) -> Self {
        assert!(
            min_separation >= 0.0 && min_separation.is_finite(),
            "min_separation must be finite and non-negative, got {min_separation}"
        );
        self.min_separation = min_separation;
        self
    }

    /// Overrides the worker-thread count (must be `≥ 1`).
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = threads;
        self
    }
}

/// One proposed site: a window center, its cell-window position count,
/// and the anchor cell's Morton code (the ranking tie-break witness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateSite {
    /// Center of the winning window.
    pub center: Point,
    /// Positions inside the window's `s×s` cell footprint.
    pub score: u64,
    /// Morton code of the window's anchor (south-west) cell.
    pub anchor: u64,
}

/// Shape counters of one sweep, for logs and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Positions folded into the grid.
    pub n_positions: u64,
    /// Quad-subdivision depth actually used.
    pub depth: u64,
    /// Side of one grid cell.
    pub cell: f64,
    /// Window span `s` in cells per axis.
    pub window_cells: u64,
    /// Non-empty grid cells.
    pub nonempty_cells: u64,
    /// Distinct window anchors scored.
    pub anchors: u64,
}

/// The result of one sweep: the ranked sites plus shape counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Proposal {
    /// Emitted sites, best first.
    pub sites: Vec<CandidateSite>,
    /// Shape counters of the sweep that produced them.
    pub stats: SweepStats,
}

/// Row-grouped sparse grid: per row (cell `y`), the sorted non-empty cell
/// `x` coordinates and an exclusive prefix sum of their counts, so any
/// `[x0, x1)` column-range sum is two binary searches and a subtraction.
struct SparseRows {
    rows: BTreeMap<u64, (Vec<u64>, Vec<u64>)>,
}

impl SparseRows {
    /// Builds the rows from `(row, column) → count` in key order.
    fn build(cells: &BTreeMap<(u64, u64), u64>) -> Self {
        let mut rows: BTreeMap<u64, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
        for (&(cy, cx), &n) in cells {
            let (xs, prefix) = rows.entry(cy).or_insert_with(|| (Vec::new(), vec![0]));
            // BTreeMap iterates (cy, cx) ascending, so each row's xs
            // arrive sorted and the prefix extends monotonically.
            xs.push(cx);
            let last = *prefix.last().unwrap_or(&0);
            prefix.push(last + n);
        }
        SparseRows { rows }
    }

    /// Positions inside the `s×s` cell window anchored at `(ax, ay)`.
    fn window_sum(&self, ax: u64, ay: u64, s: u64) -> u64 {
        let mut total = 0u64;
        for (xs, prefix) in self.rows.range(ay..ay.saturating_add(s)).map(|(_, r)| r) {
            let lo = xs.partition_point(|&x| x < ax);
            let hi = xs.partition_point(|&x| x < ax.saturating_add(s));
            total += prefix[hi] - prefix[lo];
        }
        total
    }
}

/// Interleaves the per-axis cell coordinates of an anchor into its Morton
/// code — bit-identical to [`mc2ls_geo::morton_code`] of any point inside
/// the cell, since [`grid_coords`] walks the same descent.
fn interleave(cx: u64, cy: u64, depth: usize) -> u64 {
    let mut code = 0u64;
    for level in (0..depth).rev() {
        code = (code << 2) | (((cy >> level) & 1) << 1) | ((cx >> level) & 1);
    }
    code
}

/// [`propose_soa`] over a `Point` slice.
pub fn propose(points: &[Point], cfg: &SweepConfig) -> Proposal {
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    propose_soa(&xs, &ys, cfg)
}

/// [`propose_soa`] over the concatenated positions of one or more SoA
/// [`PositionBlocks`] — the serve layer's `PROPOSE` verb feeds a loaded
/// snapshot's per-shard blocks here without touching the original user
/// trajectories. Shard order only affects the concatenation order, never
/// the result: the sweep aggregates positions into grid cells first.
pub fn propose_from_blocks(shards: &[PositionBlocks], cfg: &SweepConfig) -> Proposal {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for blocks in shards {
        for b in 0..blocks.n_blocks() {
            let (bx, by) = blocks.block_positions(b);
            xs.extend_from_slice(bx);
            ys.extend_from_slice(by);
        }
    }
    propose_soa(&xs, &ys, cfg)
}

/// Runs the sweep over parallel coordinate slices (the SoA layout of
/// [`PositionBlocks`]). Returns the top-`m` window centers, best first.
///
/// Deterministic at any `cfg.threads`; an empty input yields an empty
/// proposal; all-coincident positions yield exactly one site at that
/// point; a window at least as large as the data extent yields exactly
/// one site at the root center (every anchor clamps to the same window).
///
/// # Panics
/// Panics when `xs` and `ys` have different lengths, when any coordinate
/// is non-finite, or on an invalid config (see [`SweepConfig::new`]).
pub fn propose_soa(xs: &[f64], ys: &[f64], cfg: &SweepConfig) -> Proposal {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(cfg.window > 0.0 && cfg.window.is_finite(), "bad window");
    assert!(cfg.m >= 1, "m must be at least 1");
    assert!(cfg.threads >= 1, "need at least one worker thread");
    assert!(
        xs.iter().chain(ys.iter()).all(|v| v.is_finite()),
        "positions must be finite"
    );
    let n = xs.len();
    if n == 0 {
        return Proposal::default();
    }

    // 1. Root square over the data extent (QuadTree::new convention).
    let extent: Extent = (0..n).map(|i| Point::new(xs[i], ys[i])).collect();
    // lint:allow(panic-path): n >= 1 guarantees the extent is non-empty
    let rect = extent.rect().expect("non-empty extent");
    let side = rect.width().max(rect.height()).max(f64::MIN_POSITIVE);
    let root = Square::new(rect.min, side);

    // 2. Cell depth: halve until cell ≤ window/2 (so s = ⌈window/cell⌉
    //    stays in {1..4}), capped at MAX_GRID_DEPTH.
    let mut depth = 0usize;
    let mut cell = side;
    while depth < MAX_GRID_DEPTH && cell > cfg.window * 0.5 {
        depth += 1;
        cell *= 0.5;
    }
    let grid_n = 1u64 << depth;
    let s = ((cfg.window / cell).ceil() as u64).clamp(1, grid_n);

    // 3. Per-cell counts, keyed (row, column): chunked across threads,
    //    merged by per-key sums — order-independent, so bit-identical at
    //    any thread count.
    let partials = map_chunks(n, cfg.threads, |range| {
        let mut m: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for i in range {
            let (cx, cy) = grid_coords(&root, depth, &Point::new(xs[i], ys[i]));
            *m.entry((cy, cx)).or_insert(0) += 1;
        }
        m
    });
    let mut cells: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for partial in partials {
        for (key, count) in partial {
            *cells.entry(key).or_insert(0) += count;
        }
    }
    let nonempty_cells = cells.len() as u64;

    // 4. Anchors: every non-empty cell and its s×s down-left shifts,
    //    clamped so the window stays inside the grid. BTreeSet order makes
    //    the enumeration (and thus map_items chunking) deterministic.
    let max_anchor = grid_n - s;
    let mut anchor_set: BTreeSet<(u64, u64)> = BTreeSet::new();
    for &(cy, cx) in cells.keys() {
        for dy in 0..s {
            for dx in 0..s {
                let ax = cx.saturating_sub(dx).min(max_anchor);
                let ay = cy.saturating_sub(dy).min(max_anchor);
                anchor_set.insert((ay, ax));
            }
        }
    }
    let anchors: Vec<(u64, u64)> = anchor_set.into_iter().collect();

    let n_anchors = anchors.len() as u64;
    let rows = SparseRows::build(&cells);
    let scores: Vec<u64> = map_items(anchors.len(), cfg.threads, |i| {
        let (ay, ax) = anchors[i];
        rows.window_sum(ax, ay, s)
    });

    // 5. Rank by (score desc, Morton asc) — the Morton key is unique per
    //    anchor, so the order is total — then greedily keep centers at
    //    least min_separation apart.
    let mut ranked: Vec<(u64, u64, u64, u64)> = anchors
        .iter()
        .zip(scores.iter())
        .map(|(&(ay, ax), &score)| (score, interleave(ax, ay, depth), ax, ay))
        .collect();
    ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let half_span = s as f64 * 0.5;
    let mut sites: Vec<CandidateSite> = Vec::with_capacity(cfg.m);
    for (score, anchor, ax, ay) in ranked {
        if sites.len() == cfg.m {
            break;
        }
        let center = Point::new(
            root.origin.x + (ax as f64 + half_span) * cell,
            root.origin.y + (ay as f64 + half_span) * cell,
        );
        let separated = sites
            .iter()
            .all(|site| site.center.distance(&center) >= cfg.min_separation);
        if separated {
            sites.push(CandidateSite {
                center,
                score,
                anchor,
            });
        }
    }

    Proposal {
        sites,
        stats: SweepStats {
            n_positions: n as u64,
            depth: depth as u64,
            cell,
            window_cells: s,
            nonempty_cells,
            anchors: n_anchors,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_geo::morton_code;

    #[test]
    fn interleave_matches_the_geo_morton_code() {
        let root = Square::new(Point::new(-3.0, 2.0), 8.0);
        for p in [
            Point::new(-2.5, 2.5),
            Point::new(4.9, 9.9),
            Point::new(1.0, 6.0),
            Point::new(0.999, 6.001),
        ] {
            for depth in [1usize, 4, 7] {
                let (cx, cy) = grid_coords(&root, depth, &p);
                assert_eq!(
                    interleave(cx, cy, depth),
                    morton_code(&root, depth, &p),
                    "{p:?} depth {depth}"
                );
            }
        }
    }

    #[test]
    fn sparse_rows_window_sums_match_a_dense_recount() {
        // A tiny 8×8 grid with a few occupied cells.
        let mut cells: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for &(cy, cx, n) in &[(0, 0, 3), (0, 5, 2), (2, 1, 7), (3, 3, 1), (7, 7, 4)] {
            cells.insert((cy, cx), n);
        }
        let rows = SparseRows::build(&cells);
        for s in [1u64, 2, 3] {
            for ay in 0..8 {
                for ax in 0..8 {
                    let dense: u64 = cells
                        .iter()
                        .filter(|(&(cy, cx), _)| cx >= ax && cx < ax + s && cy >= ay && cy < ay + s)
                        .map(|(_, &n)| n)
                        .sum();
                    assert_eq!(
                        rows.window_sum(ax, ay, s),
                        dense,
                        "anchor ({ax},{ay}) s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_halves_the_cell_until_half_a_window() {
        // side 16, window 1.0: cell must end at most 0.5 ⇒ depth 5.
        let points: Vec<Point> = vec![Point::new(0.0, 0.0), Point::new(16.0, 16.0)];
        let p = propose(&points, &SweepConfig::new(1.0, 1));
        assert_eq!(p.stats.depth, 5);
        assert!(p.stats.cell <= 0.5 && p.stats.cell > 0.25);
        assert_eq!(p.stats.window_cells, 2);
    }
}
