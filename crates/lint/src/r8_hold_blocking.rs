//! R8 — hold-across-blocking: in serve-worker code, no guard may stay
//! held across anything that can block — direct TCP/file I/O, sleeps,
//! `JoinHandle::join`, a `Condvar` wait (other than the one consuming
//! that very guard), or a call whose closure reaches such a primitive or
//! acquires another lock. A blocked holder stalls every thread queued on
//! the same lock; under the single-flight protocol that is the difference
//! between one slow query and a convoy.
//!
//! Direct nested acquisitions are *not* R8 — they are lock-graph edges
//! and R6's cycle check owns them; R8 fires when the second acquisition
//! (or the block) hides behind a call boundary.

use crate::callgraph::Graph;
use crate::rules::{Diagnostic, Rule};
use crate::FileAnal;
use std::collections::BTreeSet;

/// Flags guard-held blocking in `hold_across_blocking`-scoped files.
pub fn check(graph: &Graph, files: &[FileAnal]) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for (id, meta) in graph.table.fns.iter().enumerate() {
        let file = &files[meta.file_idx];
        if !file.class.hold_across_blocking {
            continue;
        }
        let ops = &file.fns[meta.fn_idx].ops;

        for b in &ops.blocking {
            let Some(guard) = b.held.first() else {
                continue;
            };
            if !seen.insert((meta.file_idx, b.line, guard.clone())) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.path.clone(),
                line: b.line,
                rule: Rule::HoldAcrossBlocking,
                message: format!(
                    "guard `{guard}` held across blocking `{}` — drop the guard before \
                     blocking, or waive with the protocol that bounds the hold",
                    b.what
                ),
            });
        }

        for (call, target) in ops.calls.iter().zip(&graph.call_targets[id]) {
            let (Some(guard), Some(t), false) = (call.held.first(), target, call.panicky) else {
                continue;
            };
            let reason = if let Some(w) = &graph.blocking_reach[*t as usize] {
                let chain = graph.chain(*t, &graph.blocking_reach).join(" -> ");
                Some(format!(
                    "can block on {} at {}:{} (path: {chain})",
                    w.what, w.file, w.line
                ))
            } else {
                graph.locks_reach[*t as usize]
                    .iter()
                    .next()
                    .map(|l| format!("acquires lock `{l}`"))
            };
            let Some(reason) = reason else { continue };
            if !seen.insert((meta.file_idx, call.line, guard.clone())) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.path.clone(),
                line: call.line,
                rule: Rule::HoldAcrossBlocking,
                message: format!(
                    "guard `{guard}` held across call to `{}` which {reason} — narrow the \
                     guard scope, or waive with the protocol that bounds the hold",
                    call.name
                ),
            });
        }
    }
    diags
}
