//! R7 — panic-propagation: R2 generalised across calls. A public function
//! in panic-path-scoped code that can *transitively* reach an unwaived
//! panic site — `unwrap`/`expect` that resolve to nothing, a
//! `panic!`-family macro, or (in the index-guard scope) slice indexing —
//! is flagged at its public entry with the shortest witness call chain.
//!
//! Sources suppressed by a `panic-path` **or** `panic-propagation`
//! waiver on the site vanish from the closure entirely: one documented
//! invariant at the source covers every entry point above it. A source
//! that sits *in* the entry itself is R2's jurisdiction and is not
//! re-reported — except indexing, which only this rule covers.

use crate::callgraph::Graph;
use crate::rules::{Diagnostic, Rule};
use crate::FileAnal;

/// Flags every public entry point that can reach an unwaived panic.
pub fn check(graph: &Graph, files: &[FileAnal]) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    for (id, meta) in graph.table.fns.iter().enumerate() {
        if !meta.is_entry {
            continue;
        }
        let Some(w) = &graph.panic_reach[id] else {
            continue;
        };
        if w.next.is_none() && w.what != "indexing" {
            continue; // a panic token in the entry itself: R2 already fires
        }
        let chain = graph.chain(id as u32, &graph.panic_reach).join(" -> ");
        diags.push(Diagnostic {
            file: files[meta.file_idx].path.clone(),
            line: meta.line,
            rule: Rule::PanicPropagation,
            message: format!(
                "public `{}` can reach a panic: {chain}: {} at {}:{} — return a typed \
                 error or waive at the source with the invariant that makes it unreachable",
                meta.name, w.what, w.file, w.line
            ),
        });
    }
    diags
}
