//! R6 — lock-order: any cycle in the global lock-acquisition graph is an
//! error. Edges are added both for direct nested acquisitions and for
//! acquisitions reached through a resolved callee, so a cycle closed
//! across function (or crate) boundaries is still found. The diagnostic
//! prints the full witness cycle and anchors on the first edge's
//! acquisition site, which is where a waiver would go.

use crate::callgraph::{lock_cycles, Graph};
use crate::rules::{Diagnostic, Rule};

/// Emits one diagnostic per strongly-connected lock-graph cycle.
pub fn check(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    for cycle in lock_cycles(&graph.lock_edges) {
        let Some(first) = cycle.first() else { continue };
        let mut path = String::new();
        path.push('`');
        path.push_str(&first.from);
        path.push('`');
        for e in &cycle {
            path.push_str(" -> `");
            path.push_str(&e.to);
            path.push_str("` (");
            path.push_str(&e.file);
            path.push(':');
            path.push_str(&e.line.to_string());
            if let Some(via) = &e.via {
                path.push_str(", via `");
                path.push_str(via);
                path.push('`');
            }
            path.push(')');
        }
        diags.push(Diagnostic {
            file: first.file.clone(),
            line: first.line,
            rule: Rule::LockOrder,
            message: format!(
                "lock-order cycle: {path} — acquire these locks in one global order, \
                 or waive with the protocol that prevents concurrent entry"
            ),
        });
    }
    diags
}
