//! `mc2ls-lint` — a from-scratch, zero-dependency static-analysis pass
//! over the workspace's Rust sources.
//!
//! Every result this workspace ships rests on one invariant the compiler
//! cannot see: solutions and stats must be **byte-identical at any thread
//! count and any kernel/selector choice**. The dynamic tests assert it on
//! sampled instances; this linter closes the gap statically by keeping the
//! known nondeterminism sources out of result-producing code:
//!
//! | code | rule            | scope                                  | what it catches |
//! |------|-----------------|----------------------------------------|-----------------|
//! | R1   | nondet-iteration| `core`/`index`/`influence`/`geo` lib   | `HashMap`/`HashSet` (iteration order varies per process) |
//! | R2   | panic-path      | library crates (not `cli`/`bench`)     | `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` |
//! | R3   | unsafe-code     | everywhere, plus crate-root audit      | `unsafe` tokens; missing `#![forbid(unsafe_code)]` |
//! | R4   | narrowing-cast  | CSR/Morton/heap hot-path files         | unchecked `as u32`-style narrowing on index arithmetic |
//! | R5   | float-accum     | parallel-join / gain files             | f64 reductions outside `canonical_gain` |
//! | R6   | lock-order      | workspace lock graph                   | any cycle of lock-acquisition order, incl. through callees |
//! | R7   | panic-propagation| public fns of panic-path crates       | transitive reach of an unwaived panic / unguarded indexing |
//! | R8   | hold-across-blocking | `serve` worker files              | guard held across blocking I/O, joins, waits, or lock-taking calls |
//! | W1   | bad-waiver      | everywhere                             | waiver without a reason / unknown rule |
//! | W2   | unused-waiver   | everywhere                             | waiver that suppresses nothing |
//!
//! R1–R5 are token-level. R6–R8 are **inter-procedural**: an item-level
//! parser ([`parser`]) feeds a workspace symbol table ([`symbols`]) and a
//! per-function lock/call/blocking summary ([`lockscope`]); the call
//! graph ([`callgraph`]) closes lock, blocking and panic reachability
//! over resolved edges, and the three rules read those closures. The
//! whole substrate dumps to JSON via `--graph-json` for CI diffing.
//!
//! Violations are waived inline with `// lint:allow(<rule>): <reason>` on
//! the offending line or the line above; the reason is mandatory and
//! unused waivers are errors, so the waiver inventory is always a live,
//! audited list of documented invariants.
//!
//! The crate has **no dependencies** (not even the in-repo shims): its own
//! minimal lexer handles strings, char literals, lifetimes, raw
//! strings/identifiers and nested comments, so rule patterns never fire
//! inside a literal or comment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod lockscope;
pub mod parser;
mod r6_lock_order;
mod r7_panic_prop;
mod r8_hold_blocking;
mod rules;
pub mod scopes;
pub mod symbols;

pub use rules::{Diagnostic, FileClass, Rule};

use std::io;
use std::path::{Path, PathBuf};

/// Crates whose library code produces results (solutions, stats, influence
/// sets) — the R1 scope. `serve` is included: cache keys, snapshot
/// sections and stats reports must not depend on hash-iteration order.
const RESULT_CRATES: [&str; 6] = ["core", "index", "influence", "geo", "serve", "candgen"];

/// Crates exempt from R2: binaries and the bench harness may shortcut.
const PANIC_EXEMPT_CRATES: [&str; 2] = ["cli", "bench"];

/// Hot-path files for R4 (CSR layouts, Morton codes, selection heaps,
/// shard views, the update engine's slot/buffer arithmetic, the live
/// batch's shard routing, and the delta splice's frame indices),
/// workspace-relative with `/` separators.
const NARROWING_SCOPE: [&str; 15] = [
    "crates/core/src/influence_sets.rs",
    "crates/core/src/inverted.rs",
    "crates/core/src/bitset.rs",
    "crates/core/src/greedy.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/update.rs",
    "crates/core/src/algorithms/iqt.rs",
    "crates/geo/src/morton.rs",
    "crates/geo/src/hilbert.rs",
    "crates/influence/src/blocks.rs",
    "crates/influence/src/lanes.rs",
    "crates/serve/src/delta.rs",
    "crates/serve/src/live.rs",
    "crates/candgen/src/sweep.rs",
    "crates/influence/src/model.rs",
];

/// Serve request-path files where R7 treats unguarded slice indexing as a
/// panic source: these run inside worker threads where a panic poisons
/// the shared locks and wedges the whole accept loop.
const INDEX_GUARD_SCOPE: [&str; 6] = [
    "crates/serve/src/server.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/live.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/protocol.rs",
];

/// Files containing parallel-join, gain-materialisation, or lane-kernel
/// float accumulation code for R5.
const FLOAT_SCOPE: [&str; 11] = [
    "crates/core/src/greedy.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/inverted.rs",
    "crates/core/src/verify.rs",
    "crates/core/src/influence_sets.rs",
    "crates/core/src/algorithms/iqt.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/update.rs",
    "crates/influence/src/lanes.rs",
    "crates/candgen/src/sweep.rs",
    "crates/influence/src/model.rs",
];

/// Classifies a workspace-relative path (always `/`-separated) into the
/// rule set that applies to it, or `None` when the file is out of scope.
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    // The linter's own violation fixtures are linted only by the
    // self-tests, with explicit classes.
    if rel.contains("/fixtures/") {
        return None;
    }

    // crates/<name>/src/** — library (or binary) source.
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        if let Some(in_src) = tail.strip_prefix("src/") {
            let is_bin_target = in_src.starts_with("bin/");
            return Some(FileClass {
                nondet_iteration: RESULT_CRATES.contains(&name),
                panic_path: !PANIC_EXEMPT_CRATES.contains(&name) && !is_bin_target,
                narrowing_cast: NARROWING_SCOPE.contains(&rel),
                float_accum: FLOAT_SCOPE.contains(&rel),
                crate_root: in_src == "lib.rs",
                graph: true,
                bin_crate: PANIC_EXEMPT_CRATES.contains(&name) || is_bin_target,
                hold_across_blocking: name == "serve",
                index_guard: INDEX_GUARD_SCOPE.contains(&rel),
            });
        }
        // Integration tests / benches of a crate: unsafe audit only.
        return Some(FileClass::default());
    }

    // Offline dependency shims: reimplemented third-party API surface.
    // Panic shortcuts mirror the upstream APIs, but unsafe stays banned
    // and every shim root must carry the forbid attribute.
    if let Some(rest) = rel.strip_prefix("shims/") {
        let crate_root = rest
            .split_once('/')
            .is_some_and(|(_, tail)| tail == "src/lib.rs");
        // Shims join the call graph (so calls into them resolve instead of
        // dangling) but contribute no panic sources — like std itself.
        let graph = rest
            .split_once('/')
            .is_some_and(|(_, t)| t.starts_with("src/"));
        return Some(FileClass {
            crate_root,
            graph,
            ..FileClass::default()
        });
    }

    // The cross-crate integration crate and the examples: unsafe audit.
    if rel.starts_with("tests/") || rel.starts_with("examples/") {
        return Some(FileClass {
            crate_root: rel == "tests/src/lib.rs",
            ..FileClass::default()
        });
    }

    None
}

/// Recursively collects `.rs` files under `dir` into `out` (skipping
/// `target/` and hidden directories), as workspace-relative paths.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// One source file handed to [`lint_project`].
pub struct ProjectFile {
    /// Workspace-relative, `/`-separated path (used in diagnostics and
    /// for symbol-table module derivation).
    pub path: String,
    /// The file's contents.
    pub src: String,
    /// Which rules apply.
    pub class: FileClass,
}

/// Per-function analysis state: the parsed item plus its operation
/// summary (calls, acquisitions, blocking sites, panic sites).
pub(crate) struct FnAnal {
    pub(crate) item: parser::FnItem,
    pub(crate) ops: lockscope::FnOps,
}

/// Per-file analysis state shared between the token and graph phases.
pub(crate) struct FileAnal {
    pub(crate) path: String,
    pub(crate) class: FileClass,
    pub(crate) waivers: Vec<rules::Waiver>,
    /// Raw (pre-waiver) diagnostics; the graph rules append here so one
    /// waiver protocol covers R1–R8 uniformly.
    pub(crate) raw: Vec<Diagnostic>,
    pub(crate) fns: Vec<FnAnal>,
}

/// The result of a project-level lint run.
pub struct ProjectReport {
    /// All diagnostics, sorted by file and line; empty means clean.
    pub diags: Vec<Diagnostic>,
    /// The call-graph/lock-graph dump (the `--graph-json` payload).
    pub graph_json: String,
    /// Files analysed.
    pub n_files: usize,
    /// Functions in the call graph.
    pub n_functions: usize,
}

/// Lints a set of files as **one project**: token rules (R1–R5) per file,
/// then the inter-procedural rules (R6–R8) over the cross-file call
/// graph, then waiver accounting (W1/W2) across all of it.
pub fn lint_project(files: &[ProjectFile]) -> ProjectReport {
    let mut anals: Vec<FileAnal> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for pf in files {
        let toks = lexer::lex(&pf.src);
        let sc = scopes::analyze(&toks);
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| {
                !matches!(
                    toks[i].kind,
                    lexer::TokKind::LineComment | lexer::TokKind::BlockComment
                )
            })
            .collect();

        let (waivers, mut bad) = rules::collect_waivers(&pf.path, &toks, &sc);
        diags.append(&mut bad); // W1 is never waivable
        let raw = rules::token_rules(&pf.path, &toks, &code, &sc, pf.class);

        let mut fns: Vec<FnAnal> = Vec::new();
        if pf.class.graph {
            for item in parser::parse_items(&toks, &code, &sc) {
                if item.is_test {
                    continue;
                }
                let ops = lockscope::extract_ops(&toks, &code, &item, pf.class.index_guard);
                fns.push(FnAnal { item, ops });
            }
        }
        anals.push(FileAnal {
            path: pf.path.clone(),
            class: pf.class,
            waivers,
            raw,
            fns,
        });
    }

    let graph = callgraph::Graph::build(&mut anals);
    let mut graph_raw = r6_lock_order::check(&graph);
    graph_raw.extend(r7_panic_prop::check(&graph, &anals));
    graph_raw.extend(r8_hold_blocking::check(&graph, &anals));
    // Route each graph diagnostic into its file's raw list so the normal
    // same-line / line-above waiver protocol applies to R6–R8 too.
    for d in graph_raw {
        match anals.iter_mut().find(|f| f.path == d.file) {
            Some(f) => f.raw.push(d),
            None => diags.push(d),
        }
    }

    let n_functions = graph.table.fns.len();
    let graph_json = graph.to_json(&anals);

    for f in &mut anals {
        let raw = std::mem::take(&mut f.raw);
        rules::apply_waivers(raw, &mut f.waivers, &mut diags);
        rules::unused_waiver_diags(&f.path, &f.waivers, &mut diags);
    }
    diags.sort();
    ProjectReport {
        diags,
        graph_json,
        n_files: anals.len(),
        n_functions,
    }
}

/// Lints one file standalone — the single-file view of [`lint_project`].
/// Cross-file call edges obviously cannot form, but every rule that can
/// fire within one file (including R6–R8 on local evidence) does.
pub fn lint_source(path: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
    lint_project(&[ProjectFile {
        path: path.to_string(),
        src: src.to_string(),
        class,
    }])
    .diags
}

/// Builds the [`ProjectFile`] set for a workspace checkout: every
/// in-scope `.rs` file under `crates/`, `shims/`, `tests/`, `examples/`,
/// in sorted order.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn workspace_files(root: &Path) -> io::Result<Vec<ProjectFile>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "shims", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(root, &dir, &mut files)?;
        }
    }
    // Deterministic order regardless of directory-entry order.
    files.sort();

    let mut out: Vec<ProjectFile> = Vec::new();
    for rel in &files {
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let Some(class) = classify(&rel_str) else {
            continue;
        };
        let src = std::fs::read_to_string(root.join(rel))?;
        out.push(ProjectFile {
            path: rel_str,
            src,
            class,
        });
    }
    Ok(out)
}

/// Lints every in-scope `.rs` file under `root` (a workspace checkout)
/// as one project. Returns the full report; [`lint_workspace`] is the
/// diagnostics-only shorthand.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace_report(root: &Path) -> io::Result<ProjectReport> {
    Ok(lint_project(&workspace_files(root)?))
}

/// Lints every in-scope `.rs` file under `root` (a workspace checkout).
/// Returns all diagnostics sorted by file and line; empty means clean.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_workspace_report(root)?.diags)
}

/// Deletes every **unused** waiver comment in the workspace (the W2
/// findings): a waiver on its own line is removed whole; a trailing
/// waiver is cut back to the code before it. Returns the edited
/// workspace-relative paths with the number of waivers removed from each.
///
/// # Errors
/// Propagates I/O errors from linting, re-reading, or rewriting files.
pub fn fix_waivers(root: &Path) -> io::Result<Vec<(String, usize)>> {
    let report = lint_workspace_report(root)?;
    let mut by_file: std::collections::BTreeMap<String, Vec<u32>> =
        std::collections::BTreeMap::new();
    for d in &report.diags {
        if d.rule == Rule::UnusedWaiver {
            by_file.entry(d.file.clone()).or_default().push(d.line);
        }
    }

    let mut edited: Vec<(String, usize)> = Vec::new();
    for (rel, lines) in &by_file {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path)?;
        let mut kept: Vec<&str> = Vec::new();
        let mut removed = 0usize;
        for (i, line) in src.lines().enumerate() {
            let lineno = (i + 1) as u32;
            if !lines.contains(&lineno) {
                kept.push(line);
                continue;
            }
            removed += 1;
            let Some(at) = line.find("// lint:allow") else {
                kept.push(line); // defensive: diagnostic without a comment
                continue;
            };
            let head = line[..at].trim_end();
            if !head.is_empty() {
                kept.push(head); // trailing waiver: keep the code
            }
        }
        let mut out = kept.join("\n");
        if src.ends_with('\n') {
            out.push('\n');
        }
        std::fs::write(&path, out)?;
        edited.push((rel.clone(), removed));
    }
    Ok(edited)
}

/// Renders diagnostics as a machine-readable JSON array (`[]` when clean).
/// Hand-rolled on purpose: the linter stays dependency-free.
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn escape(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    out.push_str("\\u");
                    let code = c as u32;
                    for shift in [12u32, 8, 4, 0] {
                        let digit = (code >> shift) & 0xF;
                        out.push(char::from_digit(digit, 16).unwrap_or('0'));
                    }
                }
                c => out.push(c),
            }
        }
    }
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":\"");
        escape(d.rule.slug(), &mut out);
        out.push_str("\",\"code\":\"");
        escape(d.rule.code(), &mut out);
        out.push_str("\",\"file\":\"");
        escape(&d.file, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"message\":\"");
        escape(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_match_the_policy() {
        let core = classify("crates/core/src/greedy.rs").expect("in scope");
        assert!(core.nondet_iteration && core.panic_path);
        assert!(core.narrowing_cast && core.float_accum);
        assert!(!core.crate_root);

        let cli = classify("crates/cli/src/commands.rs").expect("in scope");
        assert!(!cli.panic_path && !cli.nondet_iteration);

        // The serving layer hands out results over the wire: both the
        // determinism rule and the no-panic rule apply in full.
        let serve = classify("crates/serve/src/server.rs").expect("in scope");
        assert!(serve.nondet_iteration && serve.panic_path);
        assert!(!serve.narrowing_cast && !serve.float_accum);
        // The delta splice indexes frames with u32 — narrowing is audited.
        let delta = classify("crates/serve/src/delta.rs").expect("in scope");
        assert!(delta.narrowing_cast && !delta.float_accum);

        // The scatter/gather replay carries both hot-path rule sets: shard
        // ids and candidate rows narrow to u32, and its gain accumulation
        // must stay in the canonical serial order.
        let shard = classify("crates/core/src/shard.rs").expect("in scope");
        assert!(shard.narrowing_cast && shard.float_accum);

        // The lane module carries both hot-path rule sets: its bit-level
        // exponent assembly must not hide narrowing casts, and its running
        // products/bands are float accumulation. The Hilbert curve joins
        // the Morton code under the narrowing rule.
        let lanes = classify("crates/influence/src/lanes.rs").expect("in scope");
        assert!(lanes.narrowing_cast && lanes.float_accum);
        let hilbert = classify("crates/geo/src/hilbert.rs").expect("in scope");
        assert!(hilbert.narrowing_cast && !hilbert.float_accum);

        // The candidate sweep produces result data (R1) and carries both
        // hot-path rule sets: grid/anchor arithmetic narrows, and its
        // density scores feed deterministic ranking. The competition-model
        // module defines the per-class gain weights themselves.
        let sweep = classify("crates/candgen/src/sweep.rs").expect("in scope");
        assert!(sweep.nondet_iteration && sweep.panic_path);
        assert!(sweep.narrowing_cast && sweep.float_accum);
        let model = classify("crates/influence/src/model.rs").expect("in scope");
        assert!(model.nondet_iteration && model.panic_path);
        assert!(model.narrowing_cast && model.float_accum);

        let data_root = classify("crates/data/src/lib.rs").expect("in scope");
        assert!(data_root.crate_root && data_root.panic_path);
        assert!(!data_root.nondet_iteration);

        let shim = classify("shims/serde/src/parse.rs").expect("in scope");
        assert!(!shim.panic_path && !shim.crate_root);
        let shim_root = classify("shims/serde/src/lib.rs").expect("in scope");
        assert!(shim_root.crate_root);

        assert!(classify("crates/lint/tests/fixtures/r2.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let diags = vec![Diagnostic {
            file: "a\\b.rs".into(),
            line: 3,
            rule: Rule::PanicPath,
            message: "say \"no\"".into(),
        }];
        let json = to_json(&diags);
        assert!(json.contains("\"file\":\"a\\\\b.rs\""));
        assert!(json.contains("\"say \\\"no\\\"\""));
        assert_eq!(to_json(&[]), "[]");
    }
}
