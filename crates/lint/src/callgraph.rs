//! The inter-procedural substrate: resolved call edges, the global lock
//! graph, and the three reachability closures (locks, blocking, panics)
//! that R6/R7/R8 consume — plus the `--graph-json` dump.
//!
//! All closures are computed over the *resolved* edge set, which is an
//! under-approximation (see [`crate::symbols`]); the rules therefore err
//! toward silence, never toward false findings.

use crate::lockscope::PanicSite;
use crate::rules::Rule;
use crate::symbols::SymbolTable;
use crate::FileAnal;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One edge of the global lock-acquisition graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock held at the acquisition.
    pub from: String,
    /// Lock acquired (directly, or inside the callee closure).
    pub to: String,
    /// Witness site (file path, 1-based line).
    pub file: String,
    /// Witness line.
    pub line: u32,
    /// For edges closed through a callee: the called function's name.
    pub via: Option<String>,
}

/// A witness for "this function can reach X": the next callee on a
/// shortest path, plus the base site description.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Next function id on the path (`None`: the base site is in this
    /// very function).
    pub next: Option<u32>,
    /// Base description, e.g. ``"`.join()`"`` or ``"`.unwrap()`"``.
    pub what: String,
    /// File of the base site.
    pub file: String,
    /// Line of the base site.
    pub line: u32,
}

/// The built graph over one analysis set.
#[derive(Debug, Default)]
pub struct Graph {
    /// Symbols (function ids index into `table.fns`).
    pub table: SymbolTable,
    /// Resolved callees per function (deduplicated, sorted).
    pub edges: Vec<Vec<u32>>,
    /// Resolved target of each call site, aligned with
    /// `files[f].fns[i].ops.calls`.
    pub call_targets: Vec<Vec<Option<u32>>>,
    /// Locks transitively acquirable per function.
    pub locks_reach: Vec<BTreeSet<String>>,
    /// Blocking reachability witness per function.
    pub blocking_reach: Vec<Option<Witness>>,
    /// Panic reachability witness per function (unwaived sources only).
    pub panic_reach: Vec<Option<Witness>>,
    /// The global lock graph.
    pub lock_edges: Vec<LockEdge>,
}

impl Graph {
    /// Builds the graph over `files`, marking panic-path /
    /// panic-propagation waivers that suppress a panic source as used.
    pub(crate) fn build(files: &mut [FileAnal]) -> Graph {
        let table = SymbolTable::build(files);
        let n = table.fns.len();
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut call_targets: Vec<Vec<Option<u32>>> = vec![Vec::new(); n];

        for (id, meta) in table.fns.iter().enumerate() {
            let ops = &files[meta.file_idx].fns[meta.fn_idx].ops;
            let mut targets = Vec::with_capacity(ops.calls.len());
            for call in &ops.calls {
                let target = table.resolve(call, meta);
                if let Some(t) = target {
                    edges[id].push(t);
                }
                targets.push(target);
            }
            edges[id].sort_unstable();
            edges[id].dedup();
            call_targets[id] = targets;
        }

        // Panic sources: macro/indexing sites plus unresolved
        // unwrap/expect calls, minus waived ones. A waiver consumed here
        // counts as used even when R2 also fires on the same line.
        let mut panic_sources: Vec<Vec<PanicSite>> = vec![Vec::new(); n];
        for (id, meta) in table.fns.iter().enumerate() {
            // Only panic-path-scoped files contribute sources: shims and
            // binaries panic by design, exactly like the std methods the
            // resolver refuses to alias.
            if !files[meta.file_idx].class.panic_path {
                continue;
            }
            let mut sites: Vec<PanicSite> = Vec::new();
            {
                let ops = &files[meta.file_idx].fns[meta.fn_idx].ops;
                sites.extend(ops.panics.iter().cloned());
                for (call, target) in ops.calls.iter().zip(&call_targets[id]) {
                    if call.panicky && target.is_none() {
                        sites.push(PanicSite {
                            line: call.line,
                            what: format!("`.{}()`", call.name),
                        });
                    }
                }
            }
            let waivers = &mut files[meta.file_idx].waivers;
            sites.retain(|s| {
                let w = waivers.iter_mut().find(|w| {
                    matches!(w.rule, Rule::PanicPath | Rule::PanicPropagation)
                        && (w.line == s.line || w.line + 1 == s.line)
                });
                match w {
                    Some(w) => {
                        w.used = true;
                        false
                    }
                    None => true,
                }
            });
            panic_sources[id] = sites;
        }

        // Reverse adjacency for the multi-source BFS closures.
        let mut redges: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, outs) in edges.iter().enumerate() {
            for &t in outs {
                redges[t as usize].push(id as u32);
            }
        }

        let blocking_reach = reach(
            &redges,
            (0..n).filter_map(|id| {
                let meta = &table.fns[id];
                let ops = &files[meta.file_idx].fns[meta.fn_idx].ops;
                let b = ops.blocking.first()?;
                Some((
                    id as u32,
                    Witness {
                        next: None,
                        what: format!("`{}`", b.what),
                        file: files[meta.file_idx].path.clone(),
                        line: b.line,
                    },
                ))
            }),
        );
        let panic_reach = reach(
            &redges,
            (0..n).filter_map(|id| {
                let meta = &table.fns[id];
                let s = panic_sources[id].first()?;
                Some((
                    id as u32,
                    Witness {
                        next: None,
                        what: s.what.clone(),
                        file: files[meta.file_idx].path.clone(),
                        line: s.line,
                    },
                ))
            }),
        );

        // Lock closure: fixpoint over own acquisitions ∪ callee closures.
        let mut locks_reach: Vec<BTreeSet<String>> = (0..n)
            .map(|id| {
                let meta = &table.fns[id];
                files[meta.file_idx].fns[meta.fn_idx]
                    .ops
                    .acquires
                    .iter()
                    .filter(|a| !a.param_rooted)
                    .map(|a| a.lock.clone())
                    .collect()
            })
            .collect();
        let mut queue: VecDeque<u32> = (0..n as u32).collect();
        let mut queued = vec![true; n];
        while let Some(id) = queue.pop_front() {
            queued[id as usize] = false;
            let mut grown: Vec<String> = Vec::new();
            for &t in &edges[id as usize] {
                for l in &locks_reach[t as usize] {
                    if !locks_reach[id as usize].contains(l) {
                        grown.push(l.clone());
                    }
                }
            }
            if !grown.is_empty() {
                locks_reach[id as usize].extend(grown);
                for &c in &redges[id as usize] {
                    if !queued[c as usize] {
                        queued[c as usize] = true;
                        queue.push_back(c);
                    }
                }
            }
        }

        // The global lock graph: direct held→acquired edges, plus edges
        // closed through a resolved callee's lock closure.
        let mut lock_edges: BTreeSet<LockEdge> = BTreeSet::new();
        for (id, meta) in table.fns.iter().enumerate() {
            let file = &files[meta.file_idx];
            let ops = &file.fns[meta.fn_idx].ops;
            for acq in &ops.acquires {
                if acq.param_rooted {
                    continue;
                }
                for h in &acq.held {
                    lock_edges.insert(LockEdge {
                        from: h.clone(),
                        to: acq.lock.clone(),
                        file: file.path.clone(),
                        line: acq.line,
                        via: None,
                    });
                }
            }
            for (call, target) in ops.calls.iter().zip(&call_targets[id]) {
                let Some(t) = target else { continue };
                if call.held.is_empty() {
                    continue;
                }
                for l in &locks_reach[*t as usize] {
                    for h in &call.held {
                        lock_edges.insert(LockEdge {
                            from: h.clone(),
                            to: l.clone(),
                            file: file.path.clone(),
                            line: call.line,
                            via: Some(table.fns[*t as usize].name.clone()),
                        });
                    }
                }
            }
        }

        Graph {
            table,
            edges,
            call_targets,
            locks_reach,
            blocking_reach,
            panic_reach,
            lock_edges: lock_edges.into_iter().collect(),
        }
    }

    /// The shortest witness call chain from `id` following `field`'s
    /// next-hops, as function names (`id` first).
    pub fn chain(&self, mut id: u32, field: &[Option<Witness>]) -> Vec<String> {
        let mut names = vec![self.table.fns[id as usize].name.clone()];
        let mut hops = 0usize;
        while let Some(w) = &field[id as usize] {
            let Some(next) = w.next else { break };
            id = next;
            names.push(self.table.fns[id as usize].name.clone());
            hops += 1;
            if hops > self.table.fns.len() {
                break; // defensive: witness fields are acyclic by construction
            }
        }
        names
    }

    /// Machine-readable dump of the call + lock graph.
    pub(crate) fn to_json(&self, files: &[FileAnal]) -> String {
        let esc = |s: &str| -> String {
            let mut out = String::new();
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out
        };
        let mut out = String::from("{\n  \"functions\": [");
        for (id, meta) in self.table.fns.iter().enumerate() {
            let file = &files[meta.file_idx];
            let ops = &file.fns[meta.fn_idx].ops;
            if id > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"id\":");
            out.push_str(&id.to_string());
            out.push_str(",\"name\":\"");
            if let Some(ty) = &meta.self_type {
                out.push_str(&esc(ty));
                out.push_str("::");
            }
            out.push_str(&esc(&meta.name));
            out.push_str("\",\"file\":\"");
            out.push_str(&esc(&file.path));
            out.push_str("\",\"line\":");
            out.push_str(&meta.line.to_string());
            out.push_str(",\"public\":");
            out.push_str(if meta.is_public { "true" } else { "false" });
            out.push_str(",\"calls\":[");
            for (i, t) in self.edges[id].iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.to_string());
            }
            out.push_str("],\"acquires\":[");
            let mut acqs: Vec<&str> = ops
                .acquires
                .iter()
                .filter(|a| !a.param_rooted)
                .map(|a| a.lock.as_str())
                .collect();
            acqs.sort_unstable();
            acqs.dedup();
            for (i, l) in acqs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&esc(l));
                out.push('"');
            }
            out.push_str("],\"blocking\":[");
            let mut blocks: Vec<&str> = ops.blocking.iter().map(|b| b.what.as_str()).collect();
            blocks.sort_unstable();
            blocks.dedup();
            for (i, b) in blocks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&esc(b));
                out.push('"');
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"lock_edges\": [");
        for (i, e) in self.lock_edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"from\":\"");
            out.push_str(&esc(&e.from));
            out.push_str("\",\"to\":\"");
            out.push_str(&esc(&e.to));
            out.push_str("\",\"file\":\"");
            out.push_str(&esc(&e.file));
            out.push_str("\",\"line\":");
            out.push_str(&e.line.to_string());
            if let Some(via) = &e.via {
                out.push_str(",\"via\":\"");
                out.push_str(&esc(via));
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}");
        out
    }
}

/// Multi-source BFS over the reverse edge set: every function that can
/// reach a base gets a [`Witness`] whose `next` hop walks a shortest
/// path toward it. Deterministic: sources enqueue in id order.
fn reach(
    redges: &[Vec<u32>],
    sources: impl Iterator<Item = (u32, Witness)>,
) -> Vec<Option<Witness>> {
    let mut field: Vec<Option<Witness>> = vec![None; redges.len()];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for (id, w) in sources {
        if field[id as usize].is_none() {
            field[id as usize] = Some(w);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        let base = field[id as usize].clone();
        let Some(base) = base else { continue };
        for &caller in &redges[id as usize] {
            if field[caller as usize].is_none() {
                field[caller as usize] = Some(Witness {
                    next: Some(id),
                    what: base.what.clone(),
                    file: base.file.clone(),
                    line: base.line,
                });
                queue.push_back(caller);
            }
        }
    }
    field
}

/// Finds elementary cycles in the lock graph: one representative shortest
/// cycle per strongly-connected component (self-loops included), in
/// lexical node order. Returns `(cycle node list, edges along it)`.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Vec<LockEdge>> {
    // Adjacency over lock names.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        adj.entry(&e.to).or_default();
    }
    let edge_of = |from: &str, to: &str| -> LockEdge {
        edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .cloned()
            .unwrap_or(LockEdge {
                from: from.to_string(),
                to: to.to_string(),
                file: String::new(),
                line: 0,
                via: None,
            })
    };

    let mut cycles: Vec<Vec<LockEdge>> = Vec::new();
    let mut in_cycle: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if in_cycle.contains(start) {
            continue;
        }
        // Shortest path start → start via BFS (length ≥ 1).
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(start);
        let mut closing_hop: Option<&str> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            if let Some(nexts) = adj.get(u) {
                for &v in nexts {
                    if v == start {
                        closing_hop = Some(u);
                        break 'bfs;
                    }
                    if !prev.contains_key(v) {
                        prev.insert(v, u);
                        queue.push_back(v);
                    }
                }
            }
        }
        let Some(mut cur) = closing_hop else {
            continue;
        };
        // Reconstruct start → … → start.
        let mut rev: Vec<&str> = vec![start];
        while cur != start {
            rev.push(cur);
            let Some(&p) = prev.get(cur) else { break };
            cur = p;
        }
        rev.push(start);
        rev.reverse(); // start, …, start
        let cycle_edges: Vec<LockEdge> = rev.windows(2).map(|w| edge_of(w[0], w[1])).collect();
        for n in &rev {
            in_cycle.insert(n);
        }
        cycles.push(cycle_edges);
    }
    cycles
}
