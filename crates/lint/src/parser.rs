//! Item-level parsing over the token stream: functions, the `impl`/`mod`
//! context they live in, their visibility, parameter names and body token
//! ranges. This is deliberately **not** an expression grammar — the
//! inter-procedural rules only need to know *which* function a token
//! belongs to and *what* that function's call sites look like; the
//! call-site shapes themselves are extracted by [`crate::lockscope`].
//!
//! The parser is resilient by construction: it walks the code-token
//! stream with a context stack and plain brace counting, so any construct
//! it does not model (macros, closures, const blocks) simply passes
//! through without deraililng item boundaries.

use crate::lexer::{Tok, TokKind};
use crate::scopes::Scopes;

/// One parsed `fn` item with the context the symbol table needs.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self type the function is defined on, if any
    /// (last path segment: `impl std::fmt::Display for Foo` yields `Foo`).
    pub self_type: Option<String>,
    /// Inline `mod` chain enclosing the item within this file.
    pub inline_mods: Vec<String>,
    /// `pub` without a restriction (`pub(crate)`/`pub(super)` count as
    /// private: they are not workspace API entry points).
    pub is_public: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names (patterns reduced to their binding ident; `self`
    /// receivers appear as `"self"`).
    pub params: Vec<String>,
    /// Body range as **code-token indices** `[open_brace, close_brace]`
    /// into the `code` index slice, or `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// The item sits inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
}

/// One entry of the item-context stack `parse_items` maintains.
enum Ctx {
    /// Inline `mod name { … }`.
    Mod(String),
    /// `impl`/`trait` block carrying a self-type name.
    SelfTy(String),
    /// A header the parser tracked but could not name (e.g. `impl` on a
    /// reference type); functions inside get no self type.
    Other,
}

/// Keywords that can immediately precede `(` without being a call, and
/// idents that never name a parameter binding.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Parses every `fn` item in the file. `code` is the comment-free token
/// index slice (indices into `toks`) the caller also hands to the
/// lock-scope extractor, so body ranges line up between the two.
pub fn parse_items(toks: &[Tok<'_>], code: &[usize], scopes: &Scopes) -> Vec<FnItem> {
    let mut items: Vec<FnItem> = Vec::new();
    let mut stack: Vec<(Ctx, u32)> = Vec::new();
    let mut depth: u32 = 0;
    let mut ci = 0usize;

    while ci < code.len() {
        let t = &toks[code[ci]];
        match t.kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                ci += 1;
            }
            TokKind::Punct(b'}') => {
                while stack.last().is_some_and(|(_, d)| *d == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
                ci += 1;
            }
            TokKind::Ident if t.text == "mod" => {
                // `mod name {` opens a module context; `mod name;` does not.
                let name = code
                    .get(ci + 1)
                    .map(|&i| &toks[i])
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.to_string());
                let opens = code.get(ci + 2).is_some_and(|&i| toks[i].is_punct(b'{'));
                if let (Some(name), true) = (name, opens) {
                    stack.push((Ctx::Mod(name), depth + 1));
                    ci += 2; // land on the `{`
                } else {
                    ci += 1;
                }
            }
            TokKind::Ident if t.text == "impl" || t.text == "trait" => {
                let (self_ty, brace_ci) = parse_self_ty_header(toks, code, ci + 1);
                match brace_ci {
                    Some(j) => {
                        let ctx = match self_ty {
                            Some(ty) => Ctx::SelfTy(ty),
                            None => Ctx::Other,
                        };
                        stack.push((ctx, depth + 1));
                        ci = j; // land on the `{`
                    }
                    None => ci += 1,
                }
            }
            TokKind::Ident if t.text == "fn" => {
                if let Some((item, next_ci)) = parse_fn(toks, code, scopes, ci, &stack) {
                    items.push(item);
                    ci = next_ci;
                } else {
                    ci += 1;
                }
            }
            _ => ci += 1,
        }
    }
    items
}

/// Scans an `impl`/`trait` header starting just after the keyword: skips
/// generics, resolves `impl A for B` to `B`, stops at the opening brace.
/// Returns the self-type name and the code index of the `{`.
fn parse_self_ty_header(
    toks: &[Tok<'_>],
    code: &[usize],
    start: usize,
) -> (Option<String>, Option<usize>) {
    let mut angle = 0i32;
    let mut ty: Option<String> = None;
    let mut in_where = false;
    let mut j = start;
    while j < code.len() {
        let u = &toks[code[j]];
        match u.kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => {
                // `->` arrows inside `Fn() -> T` bounds are not closers.
                let arrow = j > 0 && toks[code[j - 1]].is_punct(b'-');
                if !arrow {
                    angle -= 1;
                }
            }
            TokKind::Punct(b'{') if angle <= 0 => {
                return (ty, Some(j));
            }
            TokKind::Punct(b';') if angle <= 0 => return (None, None),
            TokKind::Ident if angle <= 0 => {
                if u.text == "where" {
                    in_where = true;
                } else if u.text == "for" {
                    ty = None; // the real self type follows `for`
                } else if !in_where && !is_keyword(u.text) {
                    ty = Some(u.text.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

/// Parses one `fn` whose keyword sits at code index `ci`. Returns the item
/// and the code index to resume scanning at (just inside the body, so
/// nested items are parsed too).
fn parse_fn(
    toks: &[Tok<'_>],
    code: &[usize],
    scopes: &Scopes,
    ci: usize,
    stack: &[(Ctx, u32)],
) -> Option<(FnItem, usize)> {
    let name_tok = code.get(ci + 1).map(|&i| &toks[i])?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.to_string();
    let line = toks[code[ci]].line;

    // Visibility: walk back over signature qualifiers to a possible `pub`.
    let mut k = ci;
    while k > 0 {
        let p = &toks[code[k - 1]];
        let qual = matches!(p.kind, TokKind::Str)
            || p.is_ident("const")
            || p.is_ident("async")
            || p.is_ident("unsafe")
            || p.is_ident("extern");
        if qual {
            k -= 1;
        } else {
            break;
        }
    }
    // `pub fn` is public; `pub(crate) fn` ends in `)` and is not.
    let is_public = k > 0 && toks[code[k - 1]].is_ident("pub");

    // Skip generics after the name.
    let mut j = ci + 2;
    if code.get(j).is_some_and(|&i| toks[i].is_punct(b'<')) {
        let mut angle = 1i32;
        j += 1;
        while j < code.len() && angle > 0 {
            let u = &toks[code[j]];
            if u.is_punct(b'<') {
                angle += 1;
            } else if u.is_punct(b'>') && !toks[code[j - 1]].is_punct(b'-') {
                angle -= 1;
            }
            j += 1;
        }
    }

    // Parameter list.
    let mut params: Vec<String> = Vec::new();
    if code.get(j).is_some_and(|&i| toks[i].is_punct(b'(')) {
        let mut pdepth = 0i32;
        while j < code.len() {
            let u = &toks[code[j]];
            if u.is_punct(b'(') {
                pdepth += 1;
            } else if u.is_punct(b')') {
                pdepth -= 1;
                if pdepth == 0 {
                    j += 1;
                    break;
                }
            } else if pdepth == 1 && u.kind == TokKind::Ident && !is_keyword(u.text) {
                let colon = code.get(j + 1).is_some_and(|&i| toks[i].is_punct(b':'))
                    && !code.get(j + 2).is_some_and(|&i| toks[i].is_punct(b':'));
                if colon {
                    params.push(u.text.to_string());
                }
            } else if pdepth == 1 && u.is_ident("self") {
                params.push("self".to_string());
            }
            j += 1;
        }
    }

    // Return type / where clause, through the body `{` or a bodyless `;`.
    let mut wrap = 0i32; // () and [] nesting in the return type
    let mut body: Option<(usize, usize)> = None;
    while j < code.len() {
        let u = &toks[code[j]];
        match u.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => wrap += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => wrap -= 1,
            TokKind::Punct(b';') if wrap == 0 => {
                j += 1;
                break;
            }
            TokKind::Punct(b'{') if wrap == 0 => {
                let close = matching_brace(toks, code, j);
                body = Some((j, close));
                // Resume AT the `{`: the caller's depth tracking must see
                // it, or the body's `}` pops the enclosing impl context
                // one level early. Nested items still parse.
                break;
            }
            _ => {}
        }
        j += 1;
    }

    let inline_mods: Vec<String> = stack
        .iter()
        .filter_map(|(c, _)| match c {
            Ctx::Mod(name) => Some(name.clone()),
            _ => None,
        })
        .collect();
    let self_type = stack.iter().rev().find_map(|(c, _)| match c {
        Ctx::SelfTy(ty) => Some(ty.clone()),
        _ => None,
    });
    let is_test = scopes.is_test(code[ci]);

    Some((
        FnItem {
            name,
            self_type,
            inline_mods,
            is_public,
            line,
            params,
            body,
            is_test,
        },
        j,
    ))
}

/// Finds the code index of the `}` matching the `{` at code index `open`
/// (or the last token if unbalanced — the compiler owns well-formedness).
pub(crate) fn matching_brace(toks: &[Tok<'_>], code: &[usize], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < code.len() {
        let u = &toks[code[j]];
        if u.is_punct(b'{') {
            depth += 1;
        } else if u.is_punct(b'}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}
