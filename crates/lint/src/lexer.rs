//! A minimal Rust lexer: just enough token structure for line-accurate
//! static analysis, with strings, char literals, lifetimes, raw
//! strings/identifiers and (nested) comments handled correctly so rule
//! patterns never fire on text inside a literal or a comment.
//!
//! The lexer is deliberately byte-oriented: every syntactic delimiter of
//! Rust is ASCII, and UTF-8 continuation bytes can never collide with one,
//! so multi-byte characters inside identifiers, strings and comments pass
//! through untouched.

/// The coarse token classes the rule engine consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, stored without
    /// the `r#` prefix).
    Ident,
    /// A lifetime such as `'a` (stored without the quote).
    Lifetime,
    /// Numeric literal (integer or float, any base, including suffixes).
    Num,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte-character literal: `'x'`, `b'\n'`.
    Char,
    /// A single ASCII punctuation byte (`::` arrives as two `:` tokens).
    Punct(u8),
    /// `// …` comment (doc comments included); text excludes the slashes.
    LineComment,
    /// `/* … */` comment (nesting handled); text excludes the delimiters.
    BlockComment,
}

/// One lexed token: kind, source text, and the 1-based line it starts on.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Source text (comment delimiters / quote prefixes stripped where the
    /// kind's docs say so).
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok<'_> {
    /// Whether the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether the token is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Never fails: unterminated literals or
/// comments simply run to end of input (the compiler is the authority on
/// well-formedness; the linter only needs to never misclassify what *is*
/// well-formed).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Shebang on the very first line is not Rust syntax; skip it.
    if bytes.starts_with(b"#!") && !bytes.starts_with(b"#![") {
        while i < bytes.len() && bytes[i] != b'\n' {
            i += 1;
        }
    }

    // Counts the newlines inside a consumed span so multi-line tokens keep
    // the line counter honest.
    let newlines = |s: &[u8]| s.iter().filter(|&&b| b == b'\n').count() as u32;

    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let start_line = line;
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                i += 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: &src[start + 2..i],
                    line: start_line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start + 2);
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: &src[start + 2..end],
                    line: start_line,
                });
            }
            b'r' | b'b' | b'c' if starts_raw_or_prefixed(bytes, i) => {
                // One of: r"…", r#"…"#, r#ident, b"…", br#"…"#, b'…', c"…".
                let (tok_end, kind) = prefixed_literal(bytes, i);
                line += newlines(&bytes[start..tok_end]);
                let text = match kind {
                    TokKind::Ident => {
                        // Raw identifier r#foo: strip the prefix.
                        let p = start + 2;
                        &src[p..tok_end]
                    }
                    _ => &src[start..tok_end],
                };
                toks.push(Tok {
                    kind,
                    text,
                    line: start_line,
                });
                i = tok_end;
            }
            _ if is_ident_start(b) => {
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'0'..=b'9' => {
                i += 1;
                while i < bytes.len() && (is_ident_continue(bytes[i])) {
                    i += 1;
                }
                // Fractional part: a dot followed by a digit (not `..`).
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                }
                // Exponent sign: 1e-9 / 1E+9 (the `e` was consumed above).
                if i < bytes.len()
                    && (bytes[i] == b'+' || bytes[i] == b'-')
                    && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')
                {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'"' => {
                let end = skip_string(bytes, i);
                line += newlines(&bytes[start..end]);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: &src[start..end],
                    line: start_line,
                });
                i = end;
            }
            b'\'' => {
                let (end, kind) = char_or_lifetime(bytes, i);
                line += newlines(&bytes[start..end]);
                let text = if kind == TokKind::Lifetime {
                    &src[start + 1..end]
                } else {
                    &src[start..end]
                };
                toks.push(Tok {
                    kind,
                    text,
                    line: start_line,
                });
                i = end;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct(b),
                    text: &src[start..start + 1],
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Whether position `i` (at `r`, `b` or `c`) starts a raw identifier or a
/// prefixed literal rather than a plain identifier.
fn starts_raw_or_prefixed(bytes: &[u8], i: usize) -> bool {
    let b = bytes[i];
    match b {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => matches!(
            (bytes.get(i + 1), bytes.get(i + 2)),
            (Some(b'"'), _)
                | (Some(b'\''), _)
                | (Some(b'r'), Some(b'"'))
                | (Some(b'r'), Some(b'#'))
        ),
        b'c' => bytes.get(i + 1) == Some(&b'"'),
        _ => false,
    }
}

/// Consumes a prefixed literal (`r"…"`, `r#"…"#`, `r#ident`, `b"…"`,
/// `br#"…"#`, `b'…'`, `c"…"`) starting at `i`; returns (end, kind).
fn prefixed_literal(bytes: &[u8], i: usize) -> (usize, TokKind) {
    let mut j = i + 1; // past the r/b/c
    if bytes[i] == b'b' && bytes.get(j) == Some(&b'r') {
        j += 1;
    }
    if bytes[i] == b'b' && bytes.get(j) == Some(&b'\'') {
        let (end, _) = char_or_lifetime(bytes, j);
        return (end, TokKind::Char);
    }
    // Count raw-string hashes.
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    match bytes.get(j) {
        Some(b'"') => {
            // Raw string when `r`/`br` prefix (hashes ≥ 0), cooked otherwise.
            let raw = bytes[i] == b'r' || (bytes[i] == b'b' && bytes[i + 1] == b'r');
            if raw {
                j += 1;
                loop {
                    match bytes.get(j) {
                        None => return (bytes.len(), TokKind::Str),
                        Some(b'"') => {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && bytes.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                return (k, TokKind::Str);
                            }
                            j += 1;
                        }
                        Some(_) => j += 1,
                    }
                }
            } else {
                (skip_string(bytes, j), TokKind::Str)
            }
        }
        _ if hashes > 0 && bytes[i] == b'r' => {
            // Raw identifier r#name.
            let mut k = j;
            while k < bytes.len() && is_ident_continue(bytes[k]) {
                k += 1;
            }
            (k, TokKind::Ident)
        }
        _ => {
            // Plain identifier starting with r/b/c after all (e.g. `br0ken`
            // can't reach here, but be safe).
            let mut k = i + 1;
            while k < bytes.len() && is_ident_continue(bytes[k]) {
                k += 1;
            }
            (k, TokKind::Ident)
        }
    }
}

/// Consumes a cooked string starting at the opening quote; returns the
/// index one past the closing quote.
fn skip_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) at a `'`.
/// Returns (end index, kind).
fn char_or_lifetime(bytes: &[u8], i: usize) -> (usize, TokKind) {
    match bytes.get(i + 1) {
        None => (i + 1, TokKind::Punct(b'\'')),
        Some(b'\\') => {
            // Escaped char literal. The byte right after the backslash is
            // the escaped character and must be consumed unconditionally —
            // otherwise `'\\'` reads its own payload backslash as a fresh
            // escape and jumps past the closing quote. Multi-byte escapes
            // (`\x41`, `\u{..}`) are covered by the scan below.
            let mut j = i + 3;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return (j + 1, TokKind::Char),
                    _ => j += 1,
                }
            }
            (bytes.len(), TokKind::Char)
        }
        Some(&c) if is_ident_start(c) => {
            // `'x'` is a char literal; `'x` (no closing quote after one
            // ident char run) is a lifetime. Consume the ident run first.
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') && j == i + 2 {
                (j + 1, TokKind::Char)
            } else if bytes.get(j) == Some(&b'\'') && j > i + 2 {
                // Multi-char like 'ab' is not valid Rust; treat as char
                // literal so we never leak literal text into idents.
                (j + 1, TokKind::Char)
            } else {
                (j, TokKind::Lifetime)
            }
        }
        Some(_) => {
            // `'('` style char literal (any single non-ident char).
            if bytes.get(i + 2) == Some(&b'\'') {
                (i + 3, TokKind::Char)
            } else {
                (i + 1, TokKind::Punct(b'\''))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("fn foo(x: u32) -> bool { x.unwrap() }");
        assert!(ts.contains(&(TokKind::Ident, "unwrap".into())));
        assert!(ts.contains(&(TokKind::Punct(b'.'), ".".into())));
    }

    #[test]
    fn strings_hide_their_content() {
        let ts = kinds(r#"let s = "HashMap.unwrap() // not a comment";"#);
        assert!(!ts
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ts = kinds(r##"let s = r#"quote " inside"#; let t = 1;"##);
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(ts.contains(&(TokKind::Ident, "t".into())));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Ident).count(), 2);
        assert_eq!(
            ts.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nlet c = 2;";
        let toks = lex(src);
        let c = toks.iter().find(|t| t.is_ident("c")).expect("c exists");
        assert_eq!(c.line, 6);
    }

    #[test]
    fn comments_keep_text_for_waiver_parsing() {
        let toks = lex("// lint:allow(panic-path): reason here\nfoo();");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("lint:allow(panic-path)"));
    }

    #[test]
    fn raw_identifiers() {
        let ts = kinds("let r#type = 3;");
        assert!(ts.contains(&(TokKind::Ident, "type".into())));
    }

    #[test]
    fn numeric_literals_with_exponents_and_ranges() {
        let ts = kinds("let x = 1e-9; for i in 0..n {}");
        assert!(ts.contains(&(TokKind::Num, "1e-9".into())));
        assert!(ts.contains(&(TokKind::Num, "0".into())));
        assert!(ts.contains(&(TokKind::Ident, "n".into())));
    }

    #[test]
    fn escaped_backslash_char_literals_close_properly() {
        // Regression: the payload backslash of '\\' (and b'\\') must not
        // be read as the start of a second escape, which would overshoot
        // the closing quote and swallow the following code.
        let ts = kinds("match c { b'\\\\' => 1, b'\"' => 2, _ => x.unwrap() }");
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
        assert!(ts.contains(&(TokKind::Ident, "unwrap".into())));
        let ts = kinds("let q = '\\\\'; after");
        assert!(ts.contains(&(TokKind::Ident, "after".into())));
    }
}
