//! Per-function operation extraction: call sites, lock acquisitions and
//! the guard hold regions they open, direct blocking primitives, and
//! panic/indexing sites. The call graph consumes these summaries; nothing
//! here looks across function boundaries.
//!
//! ## The hold-region model
//!
//! Guard lifetimes follow edition-2021 temporary rules, approximated:
//!
//! * `let g = <path>.lock();` / `let g = lock(&path);` — **bound**: held
//!   until `drop(g)` or the enclosing block closes.
//! * any other acquisition — **temporary**: held to the end of the
//!   enclosing statement; for `match`/`if let` scrutinees that means
//!   through the construct's arms/body (edition 2021 keeps scrutinee
//!   temporaries alive that long).
//!
//! ## Acquisition forms
//!
//! * zero-argument `.lock()` / `.read()` / `.write()` method calls — the
//!   zero-arg requirement keeps `io::Read::read(&mut buf)` and friends
//!   out;
//! * the workspace's poison-recovering helper `lock(&path)` — a free call
//!   named exactly `lock` attributes the acquisition to the **caller**,
//!   so the helper's own parameter lock never becomes a graph node.
//!
//! Lock identity is the last path segment of the receiver
//! (`shared.queue` → `queue`); `self.x` receivers are qualified by the
//! impl type (`Flight.done`) so same-named fields on different types stay
//! distinct. An acquisition whose receiver is a bare function parameter
//! is tracked locally but excluded from the function's summary: the
//! caller-side attribution above covers it.

use crate::lexer::{Tok, TokKind};
use crate::parser::{is_keyword, FnItem};

/// Method names that acquire a guard when called with zero arguments.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Calls that block the current thread directly (I/O, sleeps, joins).
/// `join` only counts when zero-argument (a method with an argument is
/// `slice::join`); `wait`-family condvar calls are handled separately so
/// the guard they consume can be exempted.
const BLOCKING_CALLS: [&str; 10] = [
    "read_exact",
    "write_all",
    "read_to_end",
    "flush",
    "accept",
    "connect",
    "sleep",
    "recv",
    "recv_timeout",
    "park",
];

/// `std` method names the resolver must never map onto same-named
/// workspace methods: calls with these names get no call-graph edges.
/// Workspace methods deliberately avoid these names (and the linter's
/// self-run keeps the list honest: a collision shows up as a missing edge
/// in `--graph-json`, not a false diagnostic).
pub(crate) const STD_METHODS: [&str; 104] = [
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into",
    "into_inner",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "map",
    "map_err",
    "max",
    "max_by",
    "min",
    "min_by",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "partition_point",
    "position",
    "pop",
    "push",
    "push_str",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sqrt",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "truncate",
    "try_into",
    "zip",
];

/// One call expression, pre-resolution.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line.
    pub line: u32,
    /// The called name (last path segment / method name).
    pub name: String,
    /// Path segments before the name for free/qualified calls
    /// (`mc2ls_core::algorithms::f` → `["mc2ls_core", "algorithms"]`).
    pub qualifier: Vec<String>,
    /// Dotted receiver path for method calls when it is a plain
    /// ident/field chain (`"self"`, `"shared.engine"`); `None` for
    /// complex receivers.
    pub receiver: Option<String>,
    /// The call used method syntax.
    pub is_method: bool,
    /// `unwrap`/`expect` — a panic source unless it resolves to a
    /// workspace-defined method.
    pub panicky: bool,
    /// Lock names held at the call site (guards whose hold region covers
    /// this token), minus any guard this very call consumes
    /// (`Condvar::wait(guard)`).
    pub held: Vec<String>,
}

/// One lock acquisition.
#[derive(Debug, Clone)]
pub struct AcqSite {
    /// 1-based source line.
    pub line: u32,
    /// Lock identity (see module docs).
    pub lock: String,
    /// Locks already held when this one is acquired — each is a
    /// lock-order edge `held → lock`.
    pub held: Vec<String>,
    /// The receiver was a bare fn parameter: excluded from the summary.
    pub param_rooted: bool,
}

/// A direct blocking primitive (not a user-function call).
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// 1-based source line.
    pub line: u32,
    /// Which primitive (`read_exact`, `join`, `Condvar::wait`, …).
    pub what: String,
    /// Locks held across the primitive, minus the condvar-consumed guard.
    pub held: Vec<String>,
}

/// A site that panics outright: `panic!`-family macros and (in the
/// index-guard scope) slice indexing.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: u32,
    /// Description for diagnostics (`` `panic!` ``, `indexing`).
    pub what: String,
}

/// Everything the graph phase needs to know about one function body.
#[derive(Debug, Clone, Default)]
pub struct FnOps {
    /// Call expressions (resolution happens in the graph phase).
    pub calls: Vec<CallSite>,
    /// Lock acquisitions (including param-rooted ones, flagged).
    pub acquires: Vec<AcqSite>,
    /// Direct blocking primitives.
    pub blocking: Vec<BlockSite>,
    /// Unconditional panic sites (macros; indexing when in scope).
    pub panics: Vec<PanicSite>,
}

/// An active guard hold region during the body walk.
struct Hold {
    /// The `let` binding name, when bound (for `drop(g)` and condvar
    /// exemption matching).
    var: Option<String>,
    /// Lock identity.
    lock: String,
    /// Bound: expires when depth drops below this. Temp: `None`.
    bound_depth: Option<u32>,
    /// Temp: expires after this code index. Bound: `usize::MAX`.
    end_ci: usize,
    /// Acquired through a bare-parameter receiver.
    param_rooted: bool,
}

/// Extracts the operation summary of one function body. `index_guard`
/// turns on indexing-site collection (the R7 source scope).
pub fn extract_ops(toks: &[Tok<'_>], code: &[usize], item: &FnItem, index_guard: bool) -> FnOps {
    let mut ops = FnOps::default();
    let Some((open, close)) = item.body else {
        return ops;
    };
    let mut holds: Vec<Hold> = Vec::new();
    let mut depth: u32 = 0; // relative to the body block
    let mut stmt_start = open + 1;

    let mut ci = open + 1;
    while ci < close {
        // Expire temporary holds whose statement ended.
        holds.retain(|h| h.end_ci >= ci || h.bound_depth.is_some());
        let t = &toks[code[ci]];
        match t.kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                stmt_start = ci + 1;
            }
            TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                holds.retain(|h| h.bound_depth.is_none_or(|d| d <= depth));
                stmt_start = ci + 1;
            }
            TokKind::Punct(b';') => stmt_start = ci + 1,
            TokKind::Ident if !is_keyword(t.text) => {
                let next_open = code.get(ci + 1).is_some_and(|&i| toks[i].is_punct(b'('));
                let next_bang = code.get(ci + 1).is_some_and(|&i| toks[i].is_punct(b'!'));
                if next_bang {
                    if matches!(t.text, "panic" | "todo" | "unimplemented" | "unreachable") {
                        ops.panics.push(PanicSite {
                            line: t.line,
                            what: format!("`{}!`", t.text),
                        });
                    }
                    // Any other macro: just keep walking through its args.
                } else if next_open {
                    handle_call(
                        toks, code, item, ci, stmt_start, depth, &mut holds, &mut ops,
                    );
                }
            }
            TokKind::Punct(b'[') if index_guard => {
                // `expr[` — indexing can panic. `#[attr]`, `vec![…]`,
                // types and patterns are excluded by requiring the
                // previous code token to be a value-position ident, `)`
                // or `]`.
                let indexes = ci > 0
                    && match &toks[code[ci - 1]] {
                        p if p.is_punct(b')') || p.is_punct(b']') => true,
                        p => p.kind == TokKind::Ident && !is_keyword(p.text),
                    };
                if indexes {
                    ops.panics.push(PanicSite {
                        line: t.line,
                        what: "indexing".into(),
                    });
                }
            }
            _ => {}
        }
        ci += 1;
    }
    ops
}

/// Handles one `name(`-shaped call expression at code index `ci`.
#[allow(clippy::too_many_arguments)]
fn handle_call(
    toks: &[Tok<'_>],
    code: &[usize],
    item: &FnItem,
    ci: usize,
    stmt_start: usize,
    depth: u32,
    holds: &mut Vec<Hold>,
    ops: &mut FnOps,
) {
    let t = &toks[code[ci]];
    let name = t.text;
    // Tuple-struct / enum-variant constructors are capitalised and never
    // name workspace functions.
    if name.chars().next().is_some_and(char::is_uppercase) {
        return;
    }
    let line = t.line;
    let prev_dot = ci > 0 && toks[code[ci - 1]].is_punct(b'.');
    let prev_path =
        ci > 1 && toks[code[ci - 1]].is_punct(b':') && toks[code[ci - 2]].is_punct(b':');
    let zero_args = code.get(ci + 2).is_some_and(|&i| toks[i].is_punct(b')'));
    let receiver = if prev_dot {
        receiver_path(toks, code, ci - 1)
    } else {
        None
    };
    let arg0 = arg0_path(toks, code, ci + 1);
    let held_names = |holds: &[Hold]| -> Vec<String> {
        let mut v: Vec<String> = holds
            .iter()
            .filter(|h| !h.param_rooted)
            .map(|h| h.lock.clone())
            .collect();
        v.dedup();
        v
    };

    // `drop(g)` releases a bound guard early.
    if name == "drop" && !prev_dot && !prev_path {
        if let Some(g) = &arg0 {
            holds.retain(|h| h.var.as_deref() != Some(g.as_str()));
        }
        return;
    }

    // Condvar waits: blocking, but the guard passed in is the sanctioned
    // hold — only *other* guards held across the wait are hazards.
    if prev_dot && matches!(name, "wait" | "wait_timeout" | "wait_while") && !zero_args {
        let held: Vec<String> = holds
            .iter()
            .filter(|h| !h.param_rooted && h.var != arg0)
            .map(|h| h.lock.clone())
            .collect();
        ops.blocking.push(BlockSite {
            line,
            what: format!("Condvar::{name}"),
            held,
        });
        return;
    }

    // Acquisitions: `.lock()`/`.read()`/`.write()` with no args, or the
    // caller-attributed `lock(&path)` helper.
    let method_acq = prev_dot && zero_args && ACQUIRE_METHODS.contains(&name) && receiver.is_some();
    let helper_acq = !prev_dot && !prev_path && name == "lock" && arg0.is_some();
    if method_acq || helper_acq {
        let path = if method_acq {
            receiver.clone().unwrap_or_default()
        } else {
            arg0.clone().unwrap_or_default()
        };
        let segs: Vec<&str> = path.split('.').collect();
        let param_rooted = segs.len() == 1 && item.params.iter().any(|p| p == segs[0]);
        let lock = lock_identity(&segs, item);
        ops.acquires.push(AcqSite {
            line,
            lock: lock.clone(),
            held: held_names(holds),
            param_rooted,
        });
        let close = matching_paren(toks, code, ci + 1);
        let (var, bound_depth, end_ci) = binding_of(toks, code, stmt_start, ci, close, depth);
        holds.push(Hold {
            var,
            lock,
            bound_depth,
            end_ci,
            param_rooted,
        });
        return;
    }

    // Direct blocking primitives.
    let blocking = BLOCKING_CALLS.contains(&name);
    let join_block = name == "join" && prev_dot && zero_args;
    if blocking || join_block {
        ops.blocking.push(BlockSite {
            line,
            what: name.to_string(),
            held: held_names(holds),
        });
        return;
    }

    // Everything else is a call-graph candidate.
    let panicky = prev_dot && matches!(name, "unwrap" | "expect");
    let qualifier = if prev_path {
        qualifier_path(toks, code, ci)
    } else {
        Vec::new()
    };
    ops.calls.push(CallSite {
        line,
        name: name.to_string(),
        qualifier,
        receiver,
        is_method: prev_dot,
        panicky,
        held: held_names(holds),
    });
}

/// Lock identity from receiver/argument path segments: the last segment,
/// qualified by the impl type for `self.field` receivers.
fn lock_identity(segs: &[&str], item: &FnItem) -> String {
    let last = segs.last().copied().unwrap_or("?");
    if segs.len() >= 2 && segs[0] == "self" {
        if let Some(ty) = &item.self_type {
            return format!("{ty}.{last}");
        }
    }
    last.to_string()
}

/// The dotted receiver path ending at the `.` at code index `dot`, when
/// it is a plain ident/field chain (`a.b.c`). `None` for anything else.
fn receiver_path(toks: &[Tok<'_>], code: &[usize], dot: usize) -> Option<String> {
    let mut segs: Vec<&str> = Vec::new();
    let mut j = dot; // points at a `.`
    while j >= 1 {
        let prev = &toks[code[j - 1]];
        if prev.kind != TokKind::Ident || is_keyword(prev.text) {
            return None;
        }
        segs.push(prev.text);
        if j >= 2 && toks[code[j - 2]].is_punct(b'.') {
            j -= 2;
        } else {
            // Chain start: reject if it continues leftwards into a call
            // or index result (`f(x).lock()`), which `)`/`]` would show.
            if j >= 2 {
                let before = &toks[code[j - 2]];
                if before.is_punct(b')') || before.is_punct(b']') || before.is_punct(b'?') {
                    return None;
                }
            }
            segs.reverse();
            return Some(segs.join("."));
        }
    }
    None
}

/// First argument of the call whose `(` sits at code index `open`, when
/// it is `&path` / `&mut path` / a bare dotted path followed by `,`/`)`.
fn arg0_path(toks: &[Tok<'_>], code: &[usize], open: usize) -> Option<String> {
    let mut j = open + 1;
    while code
        .get(j)
        .is_some_and(|&i| toks[i].is_punct(b'&') || toks[i].is_ident("mut"))
    {
        j += 1;
    }
    let mut segs: Vec<&str> = Vec::new();
    loop {
        let t = code.get(j).map(|&i| &toks[i])?;
        if t.kind != TokKind::Ident || is_keyword(t.text) {
            return None;
        }
        segs.push(t.text);
        match code.get(j + 1).map(|&i| &toks[i]) {
            Some(n) if n.is_punct(b'.') => j += 2,
            Some(n) if n.is_punct(b',') || n.is_punct(b')') => {
                return Some(segs.join("."));
            }
            _ => return None,
        }
    }
}

/// Leading path segments of a `a::b::name(` call, outermost first.
fn qualifier_path(toks: &[Tok<'_>], code: &[usize], name_ci: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = name_ci;
    while j >= 3
        && toks[code[j - 1]].is_punct(b':')
        && toks[code[j - 2]].is_punct(b':')
        && toks[code[j - 3]].kind == TokKind::Ident
    {
        segs.push(toks[code[j - 3]].text.to_string());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// Code index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok<'_>], code: &[usize], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < code.len() {
        let u = &toks[code[j]];
        if u.is_punct(b'(') {
            depth += 1;
        } else if u.is_punct(b')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// Determines how the acquisition ending at code index `close` binds:
/// `let name = <acq>;` → bound (name, depth); anything else → temporary
/// with a computed statement-end index.
fn binding_of(
    toks: &[Tok<'_>],
    code: &[usize],
    stmt_start: usize,
    acq_ci: usize,
    close: usize,
    depth: u32,
) -> (Option<String>, Option<u32>, usize) {
    let is = |j: usize, f: &dyn Fn(&Tok<'_>) -> bool| code.get(j).is_some_and(|&i| f(&toks[i]));
    if is(stmt_start, &|t| t.is_ident("let")) {
        let mut j = stmt_start + 1;
        if is(j, &|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = code
            .get(j)
            .map(|&i| &toks[i])
            .filter(|t| t.kind == TokKind::Ident && !is_keyword(t.text))
            .map(|t| t.text.to_string());
        if let Some(name) = name {
            // Direct binding: `=` right after the pattern, only receiver
            // path tokens between `=` and the call, `;` right after it.
            let eq_at = j + 1;
            let direct_rhs = (eq_at + 1..=acq_ci).all(|k| {
                is(k, &|t| {
                    (t.kind == TokKind::Ident && !is_keyword(t.text))
                        || t.is_punct(b'.')
                        || t.is_punct(b'&')
                })
            });
            if is(eq_at, &|t| t.is_punct(b'='))
                && direct_rhs
                && is(close + 1, &|t| t.is_punct(b';'))
            {
                return (Some(name), Some(depth), usize::MAX);
            }
        }
    }
    (None, None, statement_end(toks, code, close))
}

/// End of the enclosing statement/construct for a temporary guard created
/// at brace depth `depth`, scanning from just past the acquisition:
/// the first top-level `;`, the close of a trailing construct body
/// (`match`/`if let` arms — edition 2021 keeps scrutinee temporaries
/// alive through them), or the end of the enclosing block.
fn statement_end(toks: &[Tok<'_>], code: &[usize], from: usize) -> usize {
    let mut d = 0i64;
    let mut j = from + 1;
    while j < code.len() {
        let t = &toks[code[j]];
        if t.is_punct(b';') && d == 0 {
            return j;
        } else if t.is_punct(b'{') {
            d += 1;
        } else if t.is_punct(b'}') {
            if d == 0 {
                return j; // enclosing block closed
            }
            d -= 1;
            if d == 0 {
                // A construct body at statement depth closed; the
                // statement continues only through `else` chains or
                // method/`?` continuations.
                let cont = code.get(j + 1).is_some_and(|&i| {
                    let n = &toks[i];
                    n.is_ident("else") || n.is_punct(b'.') || n.is_punct(b'?')
                });
                if !cont {
                    return j;
                }
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}
