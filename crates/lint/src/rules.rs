//! The rule engine: five determinism/safety rules over the token stream,
//! plus the waiver protocol (`// lint:allow(<rule>): <reason>`).
//!
//! Rules fire on *code* tokens only (the lexer already separates strings,
//! char literals and comments), and never inside `#[cfg(test)]` /
//! `#[test]` spans for the library-code rules. A waiver suppresses
//! diagnostics of its rule on the waiver's own line and the line directly
//! below it; a waiver that suppresses nothing is itself an error, as is a
//! waiver without a written reason — waivers are documentation, not mute
//! buttons.

use crate::lexer::{Tok, TokKind};
use crate::scopes::Scopes;

/// Every rule the linter knows, including the waiver-protocol errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — `HashMap`/`HashSet` in result-producing library code.
    NondetIteration,
    /// R2 — `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library
    /// code.
    PanicPath,
    /// R3 — any `unsafe` token, or a crate root missing
    /// `#![forbid(unsafe_code)]`.
    UnsafeCode,
    /// R4 — narrowing `as` cast in the CSR/Morton/heap hot paths.
    NarrowingCast,
    /// R5 — ad-hoc float accumulation outside the canonical gain routine.
    FloatAccum,
    /// R6 — cycle in the global lock-acquisition graph.
    LockOrder,
    /// R7 — public entry point transitively reaching a panic site.
    PanicPropagation,
    /// R8 — guard held across a blocking call in serve-worker code.
    HoldAcrossBlocking,
    /// W1 — malformed waiver (unknown rule or missing reason).
    BadWaiver,
    /// W2 — waiver that suppressed nothing.
    UnusedWaiver,
}

impl Rule {
    /// Stable machine-readable slug (used in waivers and JSON output).
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NondetIteration => "nondet-iteration",
            Rule::PanicPath => "panic-path",
            Rule::UnsafeCode => "unsafe-code",
            Rule::NarrowingCast => "narrowing-cast",
            Rule::FloatAccum => "float-accum",
            Rule::LockOrder => "lock-order",
            Rule::PanicPropagation => "panic-propagation",
            Rule::HoldAcrossBlocking => "hold-across-blocking",
            Rule::BadWaiver => "bad-waiver",
            Rule::UnusedWaiver => "unused-waiver",
        }
    }

    /// Short code (the rule table in DESIGN.md uses these).
    pub fn code(self) -> &'static str {
        match self {
            Rule::NondetIteration => "R1",
            Rule::PanicPath => "R2",
            Rule::UnsafeCode => "R3",
            Rule::NarrowingCast => "R4",
            Rule::FloatAccum => "R5",
            Rule::LockOrder => "R6",
            Rule::PanicPropagation => "R7",
            Rule::HoldAcrossBlocking => "R8",
            Rule::BadWaiver => "W1",
            Rule::UnusedWaiver => "W2",
        }
    }

    /// Parses a waiver slug (both `panic-path` and `R2` spellings work).
    pub fn from_waiver_name(name: &str) -> Option<Rule> {
        let all = [
            Rule::NondetIteration,
            Rule::PanicPath,
            Rule::UnsafeCode,
            Rule::NarrowingCast,
            Rule::FloatAccum,
            Rule::LockOrder,
            Rule::PanicPropagation,
            Rule::HoldAcrossBlocking,
        ];
        all.into_iter()
            .find(|r| r.slug() == name || r.code() == name)
    }
}

/// One finding, file/line addressed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path as given to the linter (workspace-relative in CLI use).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file,
            self.line,
            self.rule.code(),
            self.rule.slug(),
            self.message
        )
    }
}

/// Which rules apply to a file — derived from workspace layout by the
/// walker, or set directly by the self-tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// R1: result-producing library crate (`core`, `index`, `influence`,
    /// `geo`).
    pub nondet_iteration: bool,
    /// R2: library code (not `cli`, `bench`, shims, tests or benches).
    pub panic_path: bool,
    /// R4: CSR/Morton/heap hot-path file.
    pub narrowing_cast: bool,
    /// R5: parallel-join / gain-materialisation file.
    pub float_accum: bool,
    /// R3 structural half: this file is a crate root that must carry
    /// `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// The file's functions join the workspace call/lock graph (library
    /// and shim sources; integration tests and benches stay out).
    pub graph: bool,
    /// Binary-crate file (`cli`/`bench`): in the graph, but its functions
    /// resolve only from their own crate and are never R7 entry points.
    pub bin_crate: bool,
    /// R8: serve-worker file — guards must not be held across blocking.
    pub hold_across_blocking: bool,
    /// R7 indexing half: request-path file where unguarded slice indexing
    /// counts as a panic source.
    pub index_guard: bool,
}

impl FileClass {
    /// Everything on — the strictest class (used by fixtures).
    pub fn strict() -> Self {
        FileClass {
            nondet_iteration: true,
            panic_path: true,
            narrowing_cast: true,
            float_accum: true,
            crate_root: false,
            graph: true,
            bin_crate: false,
            hold_across_blocking: true,
            index_guard: true,
        }
    }
}

/// Functions allowed to accumulate floats directly: the canonical gain
/// materialisation (`Σ counts[w]/(w+1)`) every selector funnels through.
const FLOAT_ALLOWLIST: [&str; 2] = ["canonical_gain", "canonical_cinf"];

/// Hash-keyed container types whose iteration order is nondeterministic.
const HASH_TYPES: [&str; 6] = [
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
];

/// Narrowing integer cast targets (`as usize`/`as u64`/`as f64` are
/// widening on every supported platform and stay allowed).
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// An inline waiver with use tracking. Shared between the token rules and
/// the graph rules: a `panic-path`/`panic-propagation` waiver consumed by
/// the R7 source filter counts as used exactly like an R2 suppression.
#[derive(Debug)]
pub(crate) struct Waiver {
    pub(crate) rule: Rule,
    pub(crate) line: u32,
    pub(crate) used: bool,
}

/// Collects every waiver in the file, emitting W1 diagnostics for the
/// malformed ones. Test spans are excluded: no rule fires there, so a
/// waiver there could never be used.
pub(crate) fn collect_waivers(
    path: &str,
    toks: &[Tok<'_>],
    scopes: &Scopes,
) -> (Vec<Waiver>, Vec<Diagnostic>) {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment || scopes.is_test(i) {
            continue;
        }
        let body = t.text.trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: Rule::BadWaiver,
                message: "unterminated waiver: expected `lint:allow(<rule>): <reason>`".into(),
            });
            continue;
        };
        let name = rest[..close].trim();
        let Some(rule) = Rule::from_waiver_name(name) else {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: Rule::BadWaiver,
                message: format!("waiver names unknown rule `{name}`"),
            });
            continue;
        };
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: Rule::BadWaiver,
                message: format!(
                    "waiver for `{}` carries no reason — write `lint:allow({}): <why this is sound>`",
                    rule.slug(),
                    rule.slug()
                ),
            });
            continue;
        }
        waivers.push(Waiver {
            rule,
            line: t.line,
            used: false,
        });
    }
    (waivers, diags)
}

/// Runs the token-level rules R1–R5 (plus the crate-root audit) and
/// returns the **raw** diagnostics, before waiver application. `code` is
/// the comment-free token index slice (adjacency patterns must not be
/// split by an interleaved comment).
pub(crate) fn token_rules(
    path: &str,
    toks: &[Tok<'_>],
    code: &[usize],
    scopes: &Scopes,
    class: FileClass,
) -> Vec<Diagnostic> {
    let tok = |ci: usize| -> Option<&Tok<'_>> { code.get(ci).map(|&i| &toks[i]) };

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut push = |rule: Rule, line: u32, message: String| {
        raw.push(Diagnostic {
            file: path.to_string(),
            line,
            rule,
            message,
        });
    };

    for ci in 0..code.len() {
        let i = code[ci];
        let t = &toks[i];
        let in_test = scopes.is_test(i);

        // R3: `unsafe` anywhere, tests included — the determinism guarantee
        // is memory-safety-shaped too.
        if t.is_ident("unsafe") {
            push(
                Rule::UnsafeCode,
                t.line,
                "`unsafe` is forbidden across the workspace".into(),
            );
            continue;
        }
        if in_test {
            continue;
        }

        // R1: hash-keyed containers in result-producing library code.
        if class.nondet_iteration && t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text) {
            push(
                Rule::NondetIteration,
                t.line,
                format!(
                    "`{}` in result-producing code: iteration order is nondeterministic — \
                     use `BTreeMap`/`BTreeSet` or a sorted `Vec`",
                    t.text
                ),
            );
        }

        // R2: panicking shortcuts in library code.
        if class.panic_path {
            let method_call = |name: &str| {
                ci >= 1
                    && tok(ci - 1).is_some_and(|p| p.is_punct(b'.'))
                    && t.is_ident(name)
                    && tok(ci + 1).is_some_and(|n| n.is_punct(b'('))
            };
            if method_call("unwrap") || method_call("expect") {
                push(
                    Rule::PanicPath,
                    t.line,
                    format!(
                        "`.{}()` in library code: return a typed error, or waive with the \
                         invariant that makes this infallible",
                        t.text
                    ),
                );
            }
            if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
                && tok(ci + 1).is_some_and(|n| n.is_punct(b'!'))
            {
                push(
                    Rule::PanicPath,
                    t.line,
                    format!("`{}!` in library code", t.text),
                );
            }
        }

        // R4: narrowing `as` casts on the hot paths.
        if class.narrowing_cast
            && t.is_ident("as")
            && tok(ci + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && NARROW_TARGETS.contains(&n.text))
        {
            let target = tok(ci + 1).map(|n| n.text).unwrap_or("?");
            push(
                Rule::NarrowingCast,
                t.line,
                format!(
                    "unchecked narrowing `as {target}` on a hot path: use `try_from` or waive \
                     with the bound that keeps the value in range"
                ),
            );
        }

        // R5: float accumulation outside the canonical gain routine.
        if class.float_accum
            && !scopes
                .enclosing_fn(i)
                .is_some_and(|f| FLOAT_ALLOWLIST.contains(&f))
        {
            let float_ident = |s: &str| s == "f64" || s == "f32";
            // `.sum::<f64>()` / `.product::<f32>()` turbofish.
            if (t.is_ident("sum") || t.is_ident("product"))
                && tok(ci + 1).is_some_and(|a| a.is_punct(b':'))
                && tok(ci + 2).is_some_and(|a| a.is_punct(b':'))
                && tok(ci + 3).is_some_and(|a| a.is_punct(b'<'))
                && tok(ci + 4).is_some_and(|a| a.kind == TokKind::Ident && float_ident(a.text))
            {
                push(
                    Rule::FloatAccum,
                    t.line,
                    format!(
                        "`.{}::<f64>()` outside the canonical gain routine: float reduction \
                         order must be canonicalised (route through `canonical_gain`) or waived",
                        t.text
                    ),
                );
            }
            // `.sum()` / `.product()` whose enclosing statement (or small
            // fn signature) names a float type.
            else if (t.is_ident("sum") || t.is_ident("product"))
                && ci >= 1
                && tok(ci - 1).is_some_and(|p| p.is_punct(b'.'))
                && tok(ci + 1).is_some_and(|n| n.is_punct(b'('))
                && statement_mentions_float(toks, code, ci, float_ident)
            {
                push(
                    Rule::FloatAccum,
                    t.line,
                    format!(
                        "float-typed `.{}()` outside the canonical gain routine: float \
                         reduction order must be canonicalised or waived",
                        t.text
                    ),
                );
            }
            // `.fold(0.0, …)` with a float seed.
            if t.is_ident("fold")
                && ci >= 1
                && tok(ci - 1).is_some_and(|p| p.is_punct(b'.'))
                && tok(ci + 1).is_some_and(|n| n.is_punct(b'('))
                && tok(ci + 2).is_some_and(|a| {
                    a.kind == TokKind::Num
                        && (a.text.contains('.')
                            || a.text.contains("f64")
                            || a.text.contains("f32"))
                })
            {
                push(
                    Rule::FloatAccum,
                    t.line,
                    "float-seeded `.fold(…)` outside the canonical gain routine".into(),
                );
            }
        }
    }

    // R3 structural half: crate roots must carry `#![forbid(unsafe_code)]`.
    if class.crate_root && !has_forbid_unsafe(toks) {
        push(
            Rule::UnsafeCode,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
        );
    }
    raw
}

/// Applies the waiver protocol: a waiver covers its own line and the next
/// one; matched raw diagnostics mark it used, unmatched ones pass through.
pub(crate) fn apply_waivers(
    raw: Vec<Diagnostic>,
    waivers: &mut [Waiver],
    out: &mut Vec<Diagnostic>,
) {
    for d in raw {
        let waived = waivers
            .iter_mut()
            .find(|w| w.rule == d.rule && (w.line == d.line || w.line + 1 == d.line));
        match waived {
            Some(w) => w.used = true,
            None => out.push(d),
        }
    }
}

/// Emits the W2 diagnostics for waivers nothing consumed.
pub(crate) fn unused_waiver_diags(path: &str, waivers: &[Waiver], out: &mut Vec<Diagnostic>) {
    for w in waivers {
        if !w.used {
            out.push(Diagnostic {
                file: path.to_string(),
                line: w.line,
                rule: Rule::UnusedWaiver,
                message: format!(
                    "waiver for `{}` suppresses nothing — remove it (stale waivers hide \
                     future violations)",
                    w.rule.slug()
                ),
            });
        }
    }
}

/// Whether the statement around code-token `ci` mentions a float type.
/// Scans backwards to the nearest `;`/`{`/`}`; when the boundary is a `{`,
/// keeps scanning through the enclosing signature (tail-expression returns
/// like `-> f64 { ….sum() }`) until an item boundary.
fn statement_mentions_float(
    toks: &[Tok<'_>],
    code: &[usize],
    ci: usize,
    is_float: impl Fn(&str) -> bool,
) -> bool {
    let mut passed_open_brace = false;
    for back in (0..ci).rev() {
        let t = &toks[code[back]];
        match t.kind {
            TokKind::Ident if is_float(t.text) => return true,
            TokKind::Ident if passed_open_brace && t.text == "fn" => return false,
            TokKind::Punct(b';') | TokKind::Punct(b'}') => return false,
            TokKind::Punct(b'{') if passed_open_brace => return false,
            TokKind::Punct(b'{') => passed_open_brace = true,
            _ => {}
        }
        if ci - back > 96 {
            return false;
        }
    }
    false
}

/// Detects the inner attribute `#![forbid(unsafe_code)]` token sequence.
fn has_forbid_unsafe(toks: &[Tok<'_>]) -> bool {
    let code: Vec<&Tok<'_>> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    code.windows(7).any(|w| {
        w[0].is_punct(b'#')
            && w[1].is_punct(b'!')
            && w[2].is_punct(b'[')
            && w[3].is_ident("forbid")
            && w[4].is_punct(b'(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(b')')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        crate::lint_source("mem.rs", src, FileClass::strict())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_source_is_clean() {
        let d = run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_in_string_or_comment_does_not_fire() {
        let d = run(
            "fn f() -> &'static str {\n // .unwrap() here is prose\n \"call .unwrap() later\"\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn waiver_covers_next_line_and_is_counted_used() {
        let src = "fn f(x: Option<u32>) -> u32 {\n  // lint:allow(panic-path): x is Some by construction\n  x.unwrap()\n}";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unused_waiver_is_an_error() {
        let src = "// lint:allow(panic-path): nothing here panics\nfn f() {}";
        let d = run(src);
        assert_eq!(rules_of(&d), vec![Rule::UnusedWaiver]);
    }

    #[test]
    fn waiver_without_reason_is_an_error() {
        let src = "// lint:allow(panic-path)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == Rule::BadWaiver), "{d:?}");
        assert!(d.iter().any(|d| d.rule == Rule::PanicPath), "{d:?}");
    }

    #[test]
    fn test_modules_are_exempt_from_library_rules() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { let _ = unsafe { std::mem::zeroed::<u8>() }; }\n}";
        let d = run(src);
        assert_eq!(rules_of(&d), vec![Rule::UnsafeCode]);
    }

    #[test]
    fn float_sum_inside_canonical_gain_is_allowed() {
        let src = "fn canonical_gain(counts: &[u32]) -> f64 {\n  counts.iter().map(|&n| n as f64).sum::<f64>()\n}";
        // `as f64` is widening (not flagged); the sum is allowlisted.
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }
}
