//! The `mc2ls-lint` binary: lints the workspace tree and exits non-zero
//! on any diagnostic. CI runs it before clippy; `--json` feeds the
//! experiments-smoke emptiness check.
//!
//! ```text
//! cargo run -p mc2ls-lint -- --workspace-root . [--json]
//! ```

#![forbid(unsafe_code)]
// Diagnostics on stdout/stderr are this binary's entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mc2ls-lint [--workspace-root <dir>] [--json]

Determinism & safety linter for the MC2LS workspace.
Exits 0 when clean, 1 when any diagnostic fires, 2 on usage/I/O errors.

options:
  --workspace-root <dir>  workspace checkout to lint (default: .)
  --json                  emit diagnostics as a JSON array on stdout
  --help                  print this help";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace-root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --workspace-root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let diags = match mc2ls_lint::lint_workspace(&root) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!("error: cannot lint {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", mc2ls_lint::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("mc2ls-lint: clean");
        } else {
            println!("mc2ls-lint: {} diagnostic(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
