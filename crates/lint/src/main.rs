//! The `mc2ls-lint` binary: lints the workspace tree and exits non-zero
//! on any diagnostic. CI runs it before clippy; `--json` feeds the
//! experiments-smoke emptiness check and the runtime budget assertion.
//!
//! ```text
//! cargo run -p mc2ls-lint -- --workspace-root . [--json] [--graph-json g.json]
//! ```

#![forbid(unsafe_code)]
// Diagnostics on stdout/stderr are this binary's entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: mc2ls-lint [--workspace-root <dir>] [--json] \
[--graph-json <path>] [--fix-waivers]

Determinism & safety linter for the MC2LS workspace (rules R1-R8, W1-W2).
Exits 0 when clean, 1 when any diagnostic fires, 2 on usage/I/O errors.

options:
  --workspace-root <dir>  workspace checkout to lint (default: .)
  --json                  emit diagnostics as a JSON array on stdout,
                          followed by one runtime-footer JSON object line
  --graph-json <path>     also dump the call/lock graph as JSON to <path>
  --fix-waivers           delete unused `// lint:allow` waivers in place,
                          report what was removed, and exit
  --help                  print this help";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut graph_json: Option<PathBuf> = None;
    let mut fix = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace-root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --workspace-root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--graph-json" => match args.next() {
                Some(p) => graph_json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --graph-json needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fix-waivers" => fix = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if fix {
        return match mc2ls_lint::fix_waivers(&root) {
            Ok(edited) if edited.is_empty() => {
                println!("mc2ls-lint: no unused waivers");
                ExitCode::SUCCESS
            }
            Ok(edited) => {
                let total: usize = edited.iter().map(|(_, n)| n).sum();
                for (file, n) in &edited {
                    println!("{file}: removed {n} unused waiver(s)");
                }
                println!("mc2ls-lint: removed {total} unused waiver(s)");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("error: cannot fix waivers under {}: {err}", root.display());
                ExitCode::from(2)
            }
        };
    }

    let started = Instant::now();
    let report = match mc2ls_lint::lint_workspace_report(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: cannot lint {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let runtime_ms = started.elapsed().as_millis();

    if let Some(path) = &graph_json {
        if let Err(err) = std::fs::write(path, &report.graph_json) {
            eprintln!("error: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    let diags = &report.diags;
    if json {
        println!("{}", mc2ls_lint::to_json(diags));
        // One self-audit footer line: CI asserts the linter stays fast
        // enough to run on every push (runtime_ms budget).
        println!(
            "{{\"runtime_ms\":{runtime_ms},\"files\":{},\"functions\":{},\"diagnostics\":{}}}",
            report.n_files,
            report.n_functions,
            diags.len()
        );
    } else {
        for d in diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!(
                "mc2ls-lint: clean ({} files, {} functions, {runtime_ms} ms)",
                report.n_files, report.n_functions
            );
        } else {
            println!("mc2ls-lint: {} diagnostic(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
