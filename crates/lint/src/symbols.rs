//! The workspace-wide symbol table: every parsed function, addressable by
//! name and by `(self type, name)`, plus the **deliberately approximate**
//! call-target resolution the graph rules build on.
//!
//! Resolution is an under-approximation tuned for this workspace's
//! idioms — it must never invent an edge that creates a false diagnostic,
//! while finding enough real edges to make R6–R8 useful:
//!
//! 1. `self.method(…)` resolves through the enclosing impl type.
//! 2. `a::b::name(…)` resolves when the last qualifier segment names a
//!    workspace crate (`mc2ls_core` → `core`), module, or impl type.
//! 3. Unqualified method calls fall back to a workspace-unique method of
//!    that name — unless the name is on the `std` denylist
//!    ([`crate::lockscope::STD_METHODS`]), which keeps `.len()`/`.get()`
//!    and friends edge-free.
//! 4. Plain free calls prefer same-file, then same-crate, then a
//!    workspace-unique match.
//! 5. `unwrap`/`expect` resolve through rules 1–2 only (a shim defining
//!    its own `fn expect` is a call, not a panic); unresolved they become
//!    panic sources.
//!
//! Functions in binary crates (`cli`, `bench`) resolve only from their
//! own crate: a library call must never alias onto a binary helper, or
//! the binaries' sanctioned panic shortcuts would leak into library
//! reachability.

use crate::lockscope::{CallSite, STD_METHODS};
use crate::FileAnal;
use std::collections::BTreeMap;

/// One function the table knows, with the context resolution needs.
#[derive(Debug, Clone)]
pub struct FnMeta {
    /// Function name.
    pub name: String,
    /// Impl/trait self type, if any.
    pub self_type: Option<String>,
    /// Module path: crate name + file modules + inline modules.
    pub module: Vec<String>,
    /// Crate name (`core`, `serve`, `serde`, …).
    pub crate_name: String,
    /// Index of the defining file in the analysis set.
    pub file_idx: usize,
    /// Index of the function within that file's `fns`.
    pub fn_idx: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `pub` without restriction.
    pub is_public: bool,
    /// Public function in a panic-path-scoped file: an R7 entry point.
    pub is_entry: bool,
    /// Defined in a binary crate (same-crate resolution only).
    pub bin_crate: bool,
}

/// The symbol table over one analysis set (workspace or fixture).
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All functions, in (file, definition) order — ids are indices.
    pub fns: Vec<FnMeta>,
    by_name: BTreeMap<String, Vec<u32>>,
    by_type_method: BTreeMap<(String, String), Vec<u32>>,
}

/// Derives `(crate name, module path)` from a workspace-relative path:
/// `crates/core/src/algorithms/iqt.rs` → `("core", ["core", "algorithms",
/// "iqt"])`; `mod.rs`/`lib.rs`/`main.rs` fold into their directory.
fn module_of(path: &str) -> (String, Vec<String>) {
    let rest = path
        .strip_prefix("crates/")
        .or_else(|| path.strip_prefix("shims/"));
    let Some(rest) = rest else {
        // Fixture / ad-hoc file: a crate of its own, named by file stem.
        let stem = path
            .rsplit('/')
            .next()
            .unwrap_or(path)
            .trim_end_matches(".rs");
        return (stem.to_string(), vec![stem.to_string()]);
    };
    let Some((krate, tail)) = rest.split_once('/') else {
        return (rest.to_string(), vec![rest.to_string()]);
    };
    let mut module = vec![krate.to_string()];
    if let Some(in_src) = tail.strip_prefix("src/") {
        for seg in in_src.split('/') {
            let seg = seg.trim_end_matches(".rs");
            if !matches!(seg, "lib" | "main" | "mod") {
                module.push(seg.to_string());
            }
        }
    }
    (krate.to_string(), module)
}

/// Strips the workspace crate prefix from a path qualifier:
/// `mc2ls_core` → `core` (shim crates keep their names).
fn normalize_crate_seg(seg: &str) -> &str {
    seg.strip_prefix("mc2ls_").unwrap_or(seg)
}

impl SymbolTable {
    /// Builds the table over all graph-scoped files' parsed functions.
    pub(crate) fn build(files: &[FileAnal]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (file_idx, f) in files.iter().enumerate() {
            let (crate_name, file_module) = module_of(&f.path);
            for (fn_idx, fa) in f.fns.iter().enumerate() {
                let item = &fa.item;
                let mut module = file_module.clone();
                module.extend(item.inline_mods.iter().cloned());
                let id = table.fns.len() as u32;
                let meta = FnMeta {
                    name: item.name.clone(),
                    self_type: item.self_type.clone(),
                    module,
                    crate_name: crate_name.clone(),
                    file_idx,
                    fn_idx,
                    line: item.line,
                    is_public: item.is_public,
                    is_entry: f.class.panic_path && item.is_public,
                    bin_crate: f.class.bin_crate,
                };
                table.by_name.entry(meta.name.clone()).or_default().push(id);
                if let Some(ty) = &meta.self_type {
                    table
                        .by_type_method
                        .entry((ty.clone(), meta.name.clone()))
                        .or_default()
                        .push(id);
                }
                table.fns.push(meta);
            }
        }
        table
    }

    /// Resolves a call site from `caller` to at most one target function
    /// id, following the module-level resolution rules.
    pub fn resolve(&self, call: &CallSite, caller: &FnMeta) -> Option<u32> {
        let visible = |id: &&u32| -> bool {
            let c = &self.fns[**id as usize];
            !c.bin_crate || c.crate_name == caller.crate_name
        };

        // Rule 1: `self.method(…)`.
        if call.is_method && call.receiver.as_deref() == Some("self") {
            if let Some(ty) = &caller.self_type {
                if let Some(ids) = self.by_type_method.get(&(ty.clone(), call.name.clone())) {
                    let same_crate = ids
                        .iter()
                        .find(|&&id| self.fns[id as usize].crate_name == caller.crate_name);
                    return same_crate.or_else(|| ids.first()).copied();
                }
            }
        }

        // Rule 2: qualified paths.
        if let Some(q) = call.qualifier.last() {
            let q = normalize_crate_seg(q);
            let (q, same_crate_only) = match q {
                "crate" | "self" | "super" => (caller.crate_name.as_str(), true),
                other => (other, false),
            };
            let ids = self.by_name.get(&call.name)?;
            let matched: Vec<u32> = ids
                .iter()
                .filter(visible)
                .filter(|&&id| {
                    let c = &self.fns[id as usize];
                    if same_crate_only {
                        return c.crate_name == caller.crate_name;
                    }
                    c.self_type.as_deref() == Some(q)
                        || c.crate_name == q
                        || c.module.iter().any(|m| m == q)
                })
                .copied()
                .collect();
            return pick(&self.fns, &matched, caller);
        }

        // Rule 5 restriction: unresolved panicky names are panic sources,
        // never fallback-resolved (`Option::unwrap` must not alias).
        if call.panicky {
            return None;
        }

        if call.is_method {
            // Rule 3: workspace-unique method fallback.
            if STD_METHODS.contains(&call.name.as_str()) {
                return None;
            }
            let ids = self.by_name.get(&call.name)?;
            let methods: Vec<u32> = ids
                .iter()
                .filter(visible)
                .filter(|&&id| self.fns[id as usize].self_type.is_some())
                .copied()
                .collect();
            return match methods.as_slice() {
                [one] => Some(*one),
                _ => None,
            };
        }

        // Rule 4: plain free calls.
        let ids = self.by_name.get(&call.name)?;
        let free: Vec<u32> = ids
            .iter()
            .filter(visible)
            .filter(|&&id| self.fns[id as usize].self_type.is_none())
            .copied()
            .collect();
        let same_file: Vec<u32> = free
            .iter()
            .filter(|&&id| self.fns[id as usize].file_idx == caller.file_idx)
            .copied()
            .collect();
        if let [one] = same_file.as_slice() {
            return Some(*one);
        }
        pick(&self.fns, &free, caller)
    }
}

/// Deterministic candidate selection: a unique match wins; otherwise a
/// unique same-crate match; otherwise unresolved.
fn pick(fns: &[FnMeta], ids: &[u32], caller: &FnMeta) -> Option<u32> {
    if let [one] = ids {
        return Some(*one);
    }
    let same_crate: Vec<u32> = ids
        .iter()
        .filter(|&&id| fns[id as usize].crate_name == caller.crate_name)
        .copied()
        .collect();
    if let [one] = same_crate.as_slice() {
        return Some(*one);
    }
    None
}
