//! Structural context over a token stream: which tokens live inside test
//! code (`#[cfg(test)]` items, `#[test]` functions) and which function body
//! encloses each token. The rule engine needs both — library-code rules
//! must not fire on tests, and the float-accumulation rule exempts the
//! canonical gain routines by name.

use crate::lexer::{Tok, TokKind};

/// Per-file structural context, indexed by token position.
#[derive(Debug)]
pub struct Scopes {
    /// `in_test[i]` — token `i` is inside a test item.
    in_test: Vec<bool>,
    /// `fn_name[i]` — name of the innermost function whose body contains
    /// token `i` (index into `names`), or `u32::MAX` outside any body.
    fn_of: Vec<u32>,
    names: Vec<String>,
}

impl Scopes {
    /// Whether token `i` is inside `#[cfg(test)]` / `#[test]` code.
    pub fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// The name of the innermost function enclosing token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        let id = *self.fn_of.get(i)?;
        self.names.get(id as usize).map(String::as_str)
    }
}

/// Whether the attribute token slice (the tokens between `#[` and `]`)
/// marks a test item: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`,
/// or `#[cfg(any(test, …))]` — but never `#[cfg(not(test))]`.
fn attr_marks_test(attr: &[Tok<'_>]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    if !attr.first().is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    let has_test = attr.iter().any(|t| t.is_ident("test"));
    let has_not = attr.iter().any(|t| t.is_ident("not"));
    has_test && !has_not
}

/// Analyses the token stream of one file.
pub fn analyze(toks: &[Tok<'_>]) -> Scopes {
    let mut in_test = vec![false; toks.len()];
    let mut fn_of = vec![u32::MAX; toks.len()];
    let mut names: Vec<String> = Vec::new();

    // Pass 1: test spans. Walk items; a `#[test]`-ish attribute marks the
    // item it precedes (through its `;` or matching close brace).
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct(b'#') && toks.get(i + 1).is_some_and(|t| t.is_punct(b'[')) {
            let attr_start = i;
            let mut marks_test = false;
            // Consume a run of consecutive outer attributes.
            while i < toks.len()
                && toks[i].is_punct(b'#')
                && toks.get(i + 1).is_some_and(|t| t.is_punct(b'['))
            {
                let body_start = i + 2;
                let mut depth = 1usize;
                let mut j = body_start;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct(b'[') {
                        depth += 1;
                    } else if toks[j].is_punct(b']') {
                        depth -= 1;
                    }
                    j += 1;
                }
                marks_test |= attr_marks_test(&toks[body_start..j.saturating_sub(1)]);
                i = j;
            }
            if marks_test {
                let end = item_end(toks, i);
                for flag in &mut in_test[attr_start..end.min(toks.len())] {
                    *flag = true;
                }
                i = end;
            }
        } else {
            i += 1;
        }
    }

    // Pass 2: enclosing function bodies. A stack of (name id, brace depth
    // at entry); a body opens at the first `{` after the `fn` signature
    // (parens/brackets balanced) and closes when the depth returns.
    let mut brace_depth = 0i64;
    let mut stack: Vec<(u32, i64)> = Vec::new();
    let mut pending_fn: Option<u32> = None; // fn seen, body brace not yet
    let mut sig_depth = 0i64; // () + [] + <> nesting inside a signature
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if t.text == "fn" && pending_fn.is_none() => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        let id = names.len() as u32;
                        names.push(name_tok.text.to_string());
                        pending_fn = Some(id);
                        sig_depth = 0;
                    }
                }
            }
            TokKind::Punct(b'(') | TokKind::Punct(b'[') if pending_fn.is_some() => sig_depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') if pending_fn.is_some() => sig_depth -= 1,
            TokKind::Punct(b';') if pending_fn.is_some() && sig_depth == 0 => {
                pending_fn = None; // bodyless (trait method declaration)
            }
            TokKind::Punct(b'{') => {
                brace_depth += 1;
                if sig_depth == 0 {
                    if let Some(id) = pending_fn.take() {
                        stack.push((id, brace_depth));
                    }
                }
            }
            TokKind::Punct(b'}') => {
                if let Some(&(_, entry)) = stack.last() {
                    if brace_depth == entry {
                        stack.pop();
                    }
                }
                brace_depth -= 1;
            }
            _ => {}
        }
        if let Some(&(id, _)) = stack.last() {
            fn_of[i] = id;
        }
        i += 1;
    }

    Scopes {
        in_test,
        fn_of,
        names,
    }
}

/// Index one past the end of the item starting at `start`: through the
/// matching `}` of its first body brace, or through its terminating `;`.
fn item_end(toks: &[Tok<'_>], start: usize) -> usize {
    let mut depth = 0i64;
    let mut j = start;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(b';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let toks = lex(src);
        let sc = analyze(&toks);
        let unwrap_pos = toks.iter().position(|t| t.is_ident("unwrap")).expect("has");
        let tail_pos = toks.iter().position(|t| t.is_ident("tail")).expect("has");
        assert!(sc.is_test(unwrap_pos));
        assert!(!sc.is_test(tail_pos));
    }

    #[test]
    fn test_fn_attribute_is_marked() {
        let src = "#[test]\nfn roundtrip() { a(); }\nfn lib() { b(); }";
        let toks = lex(src);
        let sc = analyze(&toks);
        let a = toks.iter().position(|t| t.is_ident("a")).expect("has");
        let b = toks.iter().position(|t| t.is_ident("b")).expect("has");
        assert!(sc.is_test(a));
        assert!(!sc.is_test(b));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(not(test))]\nfn shipped() { x(); }";
        let toks = lex(src);
        let sc = analyze(&toks);
        let x = toks.iter().position(|t| t.is_ident("x")).expect("has");
        assert!(!sc.is_test(x));
    }

    #[test]
    fn enclosing_fn_names_nest() {
        let src = "fn outer() { fn inner() { body(); } tail(); }";
        let toks = lex(src);
        let sc = analyze(&toks);
        let body = toks.iter().position(|t| t.is_ident("body")).expect("has");
        let tail = toks.iter().position(|t| t.is_ident("tail")).expect("has");
        assert_eq!(sc.enclosing_fn(body), Some("inner"));
        assert_eq!(sc.enclosing_fn(tail), Some("outer"));
    }

    #[test]
    fn fn_with_generics_and_where_clause() {
        let src = "fn g<T: Ord>(x: T) -> Vec<T> where T: Clone { inner(); }";
        let toks = lex(src);
        let sc = analyze(&toks);
        let inner = toks.iter().position(|t| t.is_ident("inner")).expect("has");
        assert_eq!(sc.enclosing_fn(inner), Some("g"));
    }

    #[test]
    fn trait_method_declaration_has_no_body() {
        let src = "trait T { fn decl(&self) -> u32; }\nfn real() { x(); }";
        let toks = lex(src);
        let sc = analyze(&toks);
        let x = toks.iter().position(|t| t.is_ident("x")).expect("has");
        assert_eq!(sc.enclosing_fn(x), Some("real"));
    }
}
