//! R1 fixture: hash-keyed containers in result-producing code.
use std::collections::HashMap;

fn cache() -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}

fn dedup(xs: &[u32]) -> usize {
    let s: std::collections::HashSet<u32> = xs.iter().copied().collect();
    s.len()
}
