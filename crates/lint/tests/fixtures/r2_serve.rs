//! R2 fixture: panicking shortcuts on serve-style network/file paths.
//! A query server must degrade to typed errors, never abort a worker.

use std::io::Read;
use std::sync::Mutex;

fn read_frame(stream: &mut std::net::TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("peer hung up");
    payload
}

fn load_snapshot(path: &str) -> Vec<u8> {
    std::fs::read(path).expect("snapshot file present")
}

fn cache_len(cache: &Mutex<Vec<u8>>) -> usize {
    cache.lock().unwrap().len()
}
