//! Lexer-robustness fixture: every rule pattern below sits inside a
//! string, char literal, or comment — nothing may fire.
//
// A line comment mentioning .unwrap() and HashMap and unsafe.

/* A block comment: panic!("no") /* nested: x as u32 */ still comment */

fn strings() -> &'static str {
    "HashMap::new().unwrap(); unsafe { x as u32 }; xs.iter().sum::<f64>()"
}

fn raw_strings() -> &'static str {
    r#"a "quoted" .expect("x") and panic!() inside a raw string"#
}

fn escaped_backslash_char() -> (char, char) {
    // '\\' must not swallow the code after it (regression: self-lexing).
    ('\\', '\'')
}

fn lifetimes_are_not_chars<'a>(x: &'a str) -> &'a str {
    x
}

fn byte_strings() -> &'static [u8] {
    b"contains .unwrap() too"
}
