//! R5 fixture: ad-hoc float accumulation outside the canonical routine.

fn turbofish(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn inferred(xs: &[f64]) -> f64 {
    let total: f64 = xs.iter().copied().sum();
    total
}

fn seeded(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b)
}

fn canonical_gain(counts: &[u32]) -> f64 {
    counts.iter().map(|&n| f64::from(n)).sum::<f64>()
}
