//! Waiver-protocol fixture: one honoured waiver, one unused waiver, one
//! reasonless waiver, one naming an unknown rule.

fn honoured(x: Option<u32>) -> u32 {
    // lint:allow(panic-path): x is Some by construction at every call site
    x.unwrap()
}

// lint:allow(panic-path): nothing on the next line panics
fn unused() -> u32 {
    7
}

fn reasonless(x: Option<u32>) -> u32 {
    // lint:allow(panic-path)
    x.unwrap()
}

fn unknown_rule(x: Option<u32>) -> u32 {
    // lint:allow(no-such-rule): creative spelling
    x.unwrap()
}
