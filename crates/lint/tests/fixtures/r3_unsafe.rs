//! R3 fixture: an `unsafe` block, in a crate root missing the forbid
//! attribute (both halves of the rule fire).

fn zeroed() -> u8 {
    unsafe { std::mem::zeroed() }
}
