//! R7 fixture: public entries that can reach a panic transitively — a
//! free-function chain, a method chain, and direct slice indexing — plus
//! the shapes that must stay silent: a panic in the entry itself (R2's
//! jurisdiction), and a source waived where the invariant lives.

pub fn entry_chain(x: Option<u32>) -> u32 {
    helper(x) // R7: reaches helper's unwrap
}

fn helper(x: Option<u32>) -> u32 {
    x.unwrap() // R2 fires here, at the source
}

pub fn entry_indexing(xs: &[u32]) -> u32 {
    xs[0] // R7: unguarded indexing in a public entry
}

pub fn entry_direct(x: Option<u32>) -> u32 {
    x.unwrap() // R2 only: the source is the entry itself
}

pub fn entry_waived(kind: u8) -> u32 {
    dispatch(kind)
}

fn dispatch(kind: u8) -> u32 {
    match kind {
        0 => 10,
        1 => 20,
        // lint:allow(panic-propagation): callers validate kind against the wire schema first
        _ => unreachable!("validated upstream"),
    }
}

pub struct Widget {
    inner: Option<u32>,
}

impl Widget {
    pub fn get(&self) -> u32 {
        self.raw() // R7: reaches raw's unwrap through the impl
    }

    fn raw(&self) -> u32 {
        self.inner.unwrap() // R2 fires here too
    }
}
