//! R8 fixture: guards held across blocking — a direct `write_all`, a call
//! that transitively reaches `flush`, and a call that acquires another
//! lock — plus the two sanctioned shapes that must stay silent: a
//! `Condvar` wait consuming the held guard, and drop-before-blocking.

use std::net::TcpStream;
use std::sync::{Condvar, Mutex, MutexGuard};

struct Worker {
    q: Mutex<Vec<u8>>,
    out: Mutex<u8>,
    cv: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn net_send(s: &mut TcpStream) {
    s.flush().ok();
}

impl Worker {
    fn flush_locked(&self, s: &mut TcpStream) {
        let g = lock(&self.q);
        s.write_all(&g).ok(); // R8: guard held across blocking write
    }

    fn notify(&self, s: &mut TcpStream) {
        let g = lock(&self.q);
        self.emit(s); // R8: emit reaches flush
        drop(g);
    }

    fn emit(&self, s: &mut TcpStream) {
        net_send(s);
    }

    fn relock(&self) {
        let g = lock(&self.q);
        self.swap_out(); // R8: swap_out acquires Worker.out
        drop(g);
    }

    fn swap_out(&self) {
        let o = lock(&self.out);
        drop(o);
    }

    fn wait_for_work(&self) {
        let mut g = lock(&self.q);
        while g.is_empty() {
            g = self.cv.wait(g); // clean: the wait consumes the guard
        }
    }

    fn drain(&self, s: &mut TcpStream) {
        let g = lock(&self.q);
        let data = g.clone();
        drop(g);
        s.write_all(&data).ok(); // clean: guard dropped before blocking
    }
}
