//! R6 fixture: a two-lock cycle between `Pair.a` and `Pair.b` — one
//! direction acquired directly, the other closed through a callee — plus
//! a consistently-ordered pair that must stay silent.

use std::sync::{Mutex, MutexGuard};

struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Pair {
    fn ab(&self) -> u32 {
        let ga = lock(&self.a);
        let gb = lock(&self.b); // edge Pair.a -> Pair.b (direct)
        *ga + *gb
    }

    fn ba(&self) -> u32 {
        let gb = lock(&self.b);
        let x = self.tail(); // edge Pair.b -> Pair.a (via tail)
        *gb + x
    }

    fn tail(&self) -> u32 {
        let ga = lock(&self.a);
        *ga
    }
}

struct Ordered {
    c: Mutex<u32>,
    d: Mutex<u32>,
}

impl Ordered {
    fn first(&self) -> u32 {
        let gc = lock(&self.c);
        let gd = lock(&self.d); // edge Ordered.c -> Ordered.d
        *gc + *gd
    }

    fn second(&self) -> u32 {
        let gc = lock(&self.c);
        let gd = lock(&self.d); // same order: no cycle
        *gc - *gd
    }
}
