//! R2 fixture: panicking shortcuts in library code.

fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("needs two elements")
}

fn unreached() -> u32 {
    panic!("boom")
}

fn later() -> u32 {
    todo!()
}
