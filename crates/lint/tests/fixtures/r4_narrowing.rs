//! R4 fixture: unchecked narrowing casts on a hot path.

fn offsets(total: usize, n: u64) -> (u32, i16) {
    let a = total as u32;
    let b = n as i16;
    (a, b)
}

fn widening_is_fine(x: u32) -> (usize, u64, f64) {
    (x as usize, x as u64, x as f64)
}
