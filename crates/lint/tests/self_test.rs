//! Fixture-driven self-tests: each fixture under `tests/fixtures/` holds
//! known violations; the assertions pin the exact rule **and line** of
//! every expected diagnostic, so a lexer or scope regression shows up as a
//! changed line number, not a silent miss.
//!
//! The fixture directory is excluded from the workspace walk
//! (`classify` skips `/fixtures/` paths), so these violations never leak
//! into a real lint run.

#![forbid(unsafe_code)]

use mc2ls_lint::{lint_project, lint_source, FileClass, ProjectFile, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// `(rule, line)` pairs of the diagnostics, in sorted order.
fn hits(name: &str, class: FileClass) -> Vec<(Rule, u32)> {
    lint_source(name, &fixture(name), class)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn r1_flags_hash_containers_at_exact_lines() {
    let got = hits("r1_nondet.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::NondetIteration, 2),  // use std::collections::HashMap;
            (Rule::NondetIteration, 4),  // -> HashMap<u32, u32>
            (Rule::NondetIteration, 5),  // HashMap::new()
            (Rule::NondetIteration, 11), // HashSet<u32> annotation
        ]
    );
}

#[test]
fn r2_flags_each_panicking_shortcut() {
    let got = hits("r2_panic.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::PanicPath, 4),  // .unwrap()
            (Rule::PanicPath, 8),  // .expect(…)
            (Rule::PanicPath, 12), // panic!
            (Rule::PanicPath, 16), // todo!
        ]
    );
}

#[test]
fn r2_flags_serve_style_network_and_file_shortcuts() {
    // Serving code is the R2 scope's reason to exist: a worker thread that
    // unwraps a socket read or a lock takes the whole server down.
    let got = hits("r2_serve.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::PanicPath, 9),  // .unwrap() on a socket read
            (Rule::PanicPath, 11), // .expect(…) on a socket read
            (Rule::PanicPath, 16), // .expect(…) on a file read
            (Rule::PanicPath, 20), // .unwrap() on a mutex lock
        ]
    );
}

#[test]
fn r2_is_off_for_panic_exempt_classes() {
    let got = hits("r2_panic.rs", FileClass::default());
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r3_flags_unsafe_and_missing_forbid() {
    let class = FileClass {
        crate_root: true,
        ..FileClass::default()
    };
    let got = hits("r3_unsafe.rs", class);
    assert_eq!(
        got,
        vec![
            (Rule::UnsafeCode, 1), // crate root missing #![forbid(unsafe_code)]
            (Rule::UnsafeCode, 5), // the unsafe block
        ]
    );
}

#[test]
fn r4_flags_narrowing_not_widening() {
    let got = hits("r4_narrowing.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::NarrowingCast, 4), // total as u32
            (Rule::NarrowingCast, 5), // n as i16
        ]
    );
}

#[test]
fn r5_flags_each_accumulation_shape_but_not_the_canonical_routine() {
    let got = hits("r5_float.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::FloatAccum, 4),  // .sum::<f64>() turbofish
            (Rule::FloatAccum, 8),  // float-typed .sum()
            (Rule::FloatAccum, 13), // float-seeded .fold(0.0, …)
        ]
    );
}

#[test]
fn waiver_protocol_honours_uses_and_flags_abuse() {
    let got = hits("waivers.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::UnusedWaiver, 9), // waiver covering a non-violation
            (Rule::BadWaiver, 15),   // missing reason
            (Rule::PanicPath, 16),   // reasonless waiver does not suppress
            (Rule::BadWaiver, 20),   // unknown rule name
            (Rule::PanicPath, 21),   // unknown-rule waiver does not suppress
        ]
    );
}

#[test]
fn r6_reports_the_exact_witness_cycle() {
    // R8 would also flag `self.tail()` under a held guard; switch it off
    // so this test pins R6 alone.
    let class = FileClass {
        hold_across_blocking: false,
        ..FileClass::strict()
    };
    let diags = lint_source("r6_lockorder.rs", &fixture("r6_lockorder.rs"), class);
    assert_eq!(
        diags.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>(),
        vec![(Rule::LockOrder, 19)] // the Pair.a -> Pair.b acquisition
    );
    // The witness must spell out the full cycle: the direct edge, then
    // the edge closed through the callee, with sites and the via hop.
    assert_eq!(
        diags[0].message,
        "lock-order cycle: `Pair.a` -> `Pair.b` (r6_lockorder.rs:19) -> \
         `Pair.a` (r6_lockorder.rs:25, via `tail`) — acquire these locks in \
         one global order, or waive with the protocol that prevents \
         concurrent entry"
    );
}

#[test]
fn r7_flags_entries_not_sources_and_honours_source_waivers() {
    let got = hits("r7_panicprop.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::PanicPropagation, 6),  // entry_chain -> helper -> unwrap
            (Rule::PanicPath, 11),        // the unwrap itself (R2)
            (Rule::PanicPropagation, 14), // entry_indexing: xs[0]
            (Rule::PanicPath, 19),        // entry_direct: source in the entry is R2 only
            (Rule::PanicPropagation, 40), // Widget::get -> raw -> unwrap
            (Rule::PanicPath, 45),        // raw's unwrap (R2)
        ]
    );
    // entry_waived -> dispatch is silent: the panic-propagation waiver at
    // the unreachable! source suppressed it — and counted as used (no W2).
    assert!(!got.iter().any(|&(_, l)| l == 22 || l == 31));
}

#[test]
fn r7_witness_chain_names_the_shortest_path() {
    let diags = lint_source(
        "r7_panicprop.rs",
        &fixture("r7_panicprop.rs"),
        FileClass::strict(),
    );
    let chain = diags
        .iter()
        .find(|d| d.rule == Rule::PanicPropagation && d.line == 6)
        .expect("entry_chain diagnostic");
    assert!(
        chain.message.contains("entry_chain -> helper")
            && chain.message.contains("`.unwrap()` at r7_panicprop.rs:11"),
        "{}",
        chain.message
    );
}

#[test]
fn r8_flags_held_guards_but_not_condvar_or_dropped_ones() {
    let got = hits("r8_holdblock.rs", FileClass::strict());
    assert_eq!(
        got,
        vec![
            (Rule::HoldAcrossBlocking, 26), // write_all under the queue guard
            (Rule::HoldAcrossBlocking, 31), // emit() reaches flush
            (Rule::HoldAcrossBlocking, 41), // swap_out() takes Worker.out
        ]
    );
}

#[test]
fn graph_rules_cross_file_boundaries() {
    // The panic source lives in one file, the public entry in another:
    // only whole-project analysis can connect them.
    let entry = ProjectFile {
        path: "crates/app/src/lib.rs".into(),
        src: "pub fn run(x: Option<u32>) -> u32 {\n    mc2ls_util::pick(x)\n}\n".into(),
        class: FileClass::strict(),
    };
    let util = ProjectFile {
        path: "crates/util/src/lib.rs".into(),
        src: "pub fn pick(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n".into(),
        class: FileClass {
            panic_path: true,
            graph: true,
            ..FileClass::default()
        },
    };
    let report = lint_project(&[entry, util]);
    let got: Vec<(Rule, &str, u32)> = report
        .diags
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        got,
        vec![
            // run -> pick crosses the crate boundary; pick itself holds
            // the source, so it stays R2-only jurisdiction.
            (Rule::PanicPropagation, "crates/app/src/lib.rs", 1),
            (Rule::PanicPath, "crates/util/src/lib.rs", 2),
        ]
    );
    assert_eq!(report.n_files, 2);
    assert_eq!(report.n_functions, 2);
    // The graph dump knows both functions and the resolved edge.
    assert!(report.graph_json.contains("\"name\":\"run\""));
    assert!(report.graph_json.contains("\"name\":\"pick\""));
}

#[test]
fn violations_inside_strings_and_comments_never_fire() {
    let class = FileClass {
        crate_root: false,
        ..FileClass::strict()
    };
    let got = hits("tricky_lexing.rs", class);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn every_violation_fixture_is_nonempty_under_its_class() {
    // The CI gate relies on a non-zero exit for any violation; pin that
    // each fixture actually produces at least one diagnostic.
    for name in [
        "r1_nondet.rs",
        "r2_panic.rs",
        "r2_serve.rs",
        "r4_narrowing.rs",
        "r5_float.rs",
        "waivers.rs",
    ] {
        assert!(
            !lint_source(name, &fixture(name), FileClass::strict()).is_empty(),
            "{name} unexpectedly clean"
        );
    }
    let root = FileClass {
        crate_root: true,
        ..FileClass::default()
    };
    assert!(!lint_source("r3_unsafe.rs", &fixture("r3_unsafe.rs"), root).is_empty());
}

#[test]
fn the_workspace_tree_itself_is_clean() {
    // Walk upward from the crate dir to the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/lint sits two levels below the root");
    let diags = mc2ls_lint::lint_workspace(root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace not lint-clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(mc2ls_lint::to_json(&diags), "[]");
}
