//! Integration test for `fix_waivers`: builds a throwaway workspace in
//! the cargo temp dir, plants one used and two unused waivers, and
//! asserts the unused ones are excised — whole-line waivers vanish,
//! trailing waivers are cut back to the code — while the used one stays.

#![forbid(unsafe_code)]

const SRC: &str = "#![forbid(unsafe_code)]\n\
\n\
// lint:allow(nondet-iteration): keyed lookup table only; never iterated\n\
use std::collections::HashMap;\n\
\n\
pub fn double(x: u32) -> u32 {\n\
    // lint:allow(panic-path): nothing here panics\n\
    x * 2\n\
}\n\
\n\
pub fn tail(x: u32) -> u32 {\n\
    x + 1 // lint:allow(float-accum): stale trailing note\n\
}\n";

#[test]
fn fix_waivers_removes_only_the_unused_ones() {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("fix_waivers_ws");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    let lib = src_dir.join("lib.rs");
    std::fs::write(&lib, SRC).expect("write fixture workspace");

    // Sanity: before the fix, exactly the two unused waivers fire.
    let before = mc2ls_lint::lint_workspace(&root).expect("lint");
    assert_eq!(
        before.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>(),
        vec![
            (mc2ls_lint::Rule::UnusedWaiver, 7),
            (mc2ls_lint::Rule::UnusedWaiver, 12),
        ]
    );

    let edited = mc2ls_lint::fix_waivers(&root).expect("fix");
    assert_eq!(edited, vec![("crates/core/src/lib.rs".to_string(), 2)]);

    let after = std::fs::read_to_string(&lib).expect("reread");
    // The used waiver survives; both unused ones are gone; the trailing
    // waiver's code line survives without the comment.
    assert!(after.contains("keyed lookup table only"));
    assert!(!after.contains("nothing here panics"));
    assert!(!after.contains("stale trailing note"));
    assert!(after.contains("\nx + 1\n"));
    assert_eq!(after.lines().count(), SRC.lines().count() - 1);

    // And the workspace is now clean — the fix converges in one pass.
    let diags = mc2ls_lint::lint_workspace(&root).expect("relint");
    assert!(diags.is_empty(), "{diags:?}");
}
