//! Unit tests for the item-level parser and the call-resolution
//! fallbacks: context nesting (mods, impls, nested items), signature
//! shapes (generics, `pub(crate)`, bodyless decls), and the symbol-table
//! rules exercised through whole-project lints.

#![forbid(unsafe_code)]

use mc2ls_lint::lexer::{lex, TokKind};
use mc2ls_lint::parser::{parse_items, FnItem};
use mc2ls_lint::scopes::analyze;
use mc2ls_lint::{lint_project, FileClass, ProjectFile, Rule};

fn parse(src: &str) -> Vec<FnItem> {
    let toks = lex(src);
    let scopes = analyze(&toks);
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    parse_items(&toks, &code, &scopes)
}

#[test]
fn impl_context_survives_across_methods() {
    let items = parse(
        "struct A;\n\
         impl A {\n\
             fn one(&self) {}\n\
             fn two(&self) { if true { let _ = 1; } }\n\
             fn three(&self) {}\n\
         }\n\
         fn free() {}\n",
    );
    let tys: Vec<(&str, Option<&str>)> = items
        .iter()
        .map(|i| (i.name.as_str(), i.self_type.as_deref()))
        .collect();
    assert_eq!(
        tys,
        vec![
            ("one", Some("A")),
            ("two", Some("A")),
            ("three", Some("A")),
            ("free", None),
        ]
    );
}

#[test]
fn nested_mods_impls_and_items_keep_their_contexts() {
    let items = parse(
        "mod outer {\n\
             pub mod inner {\n\
                 struct B;\n\
                 impl B {\n\
                     pub fn m(&self) {\n\
                         fn local() {}\n\
                     }\n\
                 }\n\
             }\n\
             fn tail() {}\n\
         }\n",
    );
    let got: Vec<(&str, Option<&str>, &[String], bool)> = items
        .iter()
        .map(|i| {
            (
                i.name.as_str(),
                i.self_type.as_deref(),
                i.inline_mods.as_slice(),
                i.is_public,
            )
        })
        .collect();
    let om = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
    assert_eq!(got[0], ("m", Some("B"), &om(&["outer", "inner"])[..], true));
    // The item nested in `m`'s body inherits every enclosing context.
    assert_eq!(
        got[1],
        ("local", Some("B"), &om(&["outer", "inner"])[..], false)
    );
    // `tail` sits after `inner` closed: only `outer` remains.
    assert_eq!(got[2], ("tail", None, &om(&["outer"])[..], false));
}

#[test]
fn generic_fns_trait_impls_and_visibility_parse() {
    let items = parse(
        "pub fn frob<T: Into<String>, const N: usize>(xs: [T; N], k: usize) -> Option<T> {\n\
             None\n\
         }\n\
         pub(crate) fn shy(n: u32) -> u32 { n }\n\
         impl<T> Clone for Holder<T> where T: Clone {\n\
             fn clone(&self) -> Self { Holder }\n\
         }\n\
         trait Greet {\n\
             fn hello(&self);\n\
             fn bye(&self) {}\n\
         }\n",
    );
    assert_eq!(items[0].name, "frob");
    assert!(items[0].is_public);
    assert_eq!(items[0].params, vec!["xs".to_string(), "k".to_string()]);
    assert!(items[0].body.is_some());

    // `pub(crate)` is not workspace-public: no R7 entry point.
    assert_eq!(items[1].name, "shy");
    assert!(!items[1].is_public);

    // `impl A for B` resolves the self type to `B`.
    assert_eq!(items[2].name, "clone");
    assert_eq!(items[2].self_type.as_deref(), Some("Holder"));

    // Bodyless trait decls parse without a body; defaults get one.
    assert_eq!(items[3].name, "hello");
    assert!(items[3].body.is_none());
    assert_eq!(items[4].name, "bye");
    assert!(items[4].body.is_some());
}

#[test]
fn unique_method_fallback_resolves_but_std_names_never_do() {
    // `fetch` is workspace-unique: the method fallback finds it even
    // without knowing the receiver's type, so the entry is flagged.
    let caller = ProjectFile {
        path: "crates/app/src/lib.rs".into(),
        src: "pub fn run(s: &Store) -> u32 {\n    s.fetch()\n}\n".into(),
        class: FileClass::strict(),
    };
    let store = ProjectFile {
        path: "crates/store/src/lib.rs".into(),
        src: "impl Store {\n    fn fetch(&self) -> u32 {\n        self.v.unwrap()\n    }\n}\n"
            .into(),
        class: FileClass {
            panic_path: true,
            graph: true,
            ..FileClass::default()
        },
    };
    let diags = lint_project(&[caller, store]).diags;
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::PanicPropagation && d.file.contains("app")),
        "{diags:?}"
    );

    // `get` is on the std denylist: a workspace-unique `get` with a panic
    // inside must NOT capture arbitrary `.get()` receivers.
    let caller = ProjectFile {
        path: "crates/app/src/lib.rs".into(),
        src: "pub fn run(s: &Store) -> u32 {\n    s.get()\n}\n".into(),
        class: FileClass::strict(),
    };
    let store = ProjectFile {
        path: "crates/store/src/lib.rs".into(),
        src: "impl Store {\n    fn get(&self) -> u32 {\n        self.v.unwrap()\n    }\n}\n".into(),
        class: FileClass {
            panic_path: true,
            graph: true,
            ..FileClass::default()
        },
    };
    let diags = lint_project(&[caller, store]).diags;
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == Rule::PanicPropagation && d.file.contains("app")),
        "{diags:?}"
    );
}
