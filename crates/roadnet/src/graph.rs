//! The road graph: embedded nodes, weighted undirected edges.

use mc2ls_geo::Point;
use mc2ls_index::RTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Index of a road-network node.
pub type NodeId = u32;

/// An undirected road network with planar node coordinates (km) and edge
/// lengths (km). Edge lengths must be at least the Euclidean distance of
/// their endpoints (roads cannot be shorter than a straight line); the
/// constructor enforces this, which in turn guarantees
/// `network_distance ≥ euclidean_distance` everywhere.
///
/// # Examples
/// ```
/// use mc2ls_geo::Point;
/// use mc2ls_roadnet::{dijkstra, RoadNetwork};
///
/// let net = RoadNetwork::new(
///     vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
///     &[(0, 1, 1.2), (1, 2, 1.0)],
/// );
/// let dist = dijkstra(&net, 0);
/// assert_eq!(dist[2], 2.2);
/// assert_eq!(net.nearest_node(&Point::new(1.9, 0.1)), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    adj: Vec<Vec<(NodeId, f64)>>,
    /// Spatial index over node positions, rebuilt on (de)serialisation.
    #[serde(skip, default)]
    node_index: Option<RTree>,
}

impl RoadNetwork {
    /// Creates a network from node coordinates and undirected edges
    /// `(a, b, length_km)`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, non-positive lengths,
    /// or lengths below the straight-line distance.
    pub fn new(nodes: Vec<Point>, edges: &[(NodeId, NodeId, f64)]) -> Self {
        let mut adj = vec![Vec::new(); nodes.len()];
        for &(a, b, len) in edges {
            assert!(a != b, "self-loop at node {a}");
            assert!(
                (a as usize) < nodes.len() && (b as usize) < nodes.len(),
                "edge ({a},{b}) out of range"
            );
            assert!(len > 0.0, "edge length must be positive");
            let straight = nodes[a as usize].distance(&nodes[b as usize]);
            assert!(
                len >= straight - 1e-9,
                "edge ({a},{b}) shorter ({len}) than the straight line ({straight})"
            );
            adj[a as usize].push((b, len));
            adj[b as usize].push((a, len));
        }
        let node_index = Some(RTree::bulk_load(
            nodes
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, *p))
                .collect(),
        ));
        RoadNetwork {
            nodes,
            adj,
            node_index,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Coordinates of a node.
    pub fn position(&self, n: NodeId) -> Point {
        self.nodes[n as usize]
    }

    /// Neighbours with edge lengths.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, f64)] {
        &self.adj[n as usize]
    }

    /// The node nearest to `p` (best-first search on the node R-tree; a
    /// linear scan fallback covers deserialised networks whose index was
    /// skipped).
    pub fn nearest_node(&self, p: &Point) -> NodeId {
        assert!(!self.nodes.is_empty(), "empty network");
        if let Some(index) = &self.node_index {
            // lint:allow(panic-path): the index is built from self.nodes, asserted non-empty above
            return index.nearest(p).expect("non-empty index").0;
        }
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (i, q) in self.nodes.iter().enumerate() {
            let d = p.distance_sq(q);
            if d < best_d {
                best_d = d;
                best = i as u32;
            }
        }
        best
    }

    /// Synthetic Manhattan-style grid: `nx × ny` intersections spaced
    /// `spacing` km apart with jittered coordinates, street edges between
    /// neighbours (detour factor from the jitter), and a few random
    /// expressway shortcuts. Deterministic in `seed`.
    pub fn city_grid(nx: usize, ny: usize, spacing: f64, seed: u64) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid needs at least 2×2 intersections");
        assert!(spacing > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let jitter = spacing * 0.2;
        let nodes: Vec<Point> = (0..nx * ny)
            .map(|i| {
                let gx = (i % nx) as f64 * spacing;
                let gy = (i / nx) as f64 * spacing;
                Point::new(
                    gx + (rng.gen::<f64>() - 0.5) * jitter,
                    gy + (rng.gen::<f64>() - 0.5) * jitter,
                )
            })
            .collect();
        let idx = |x: usize, y: usize| (y * nx + x) as NodeId;
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let push =
            |edges: &mut Vec<(NodeId, NodeId, f64)>, a: NodeId, b: NodeId, rng: &mut StdRng| {
                let straight = nodes[a as usize].distance(&nodes[b as usize]);
                // Streets meander a little: 0–15% detour.
                let len = straight * (1.0 + rng.gen::<f64>() * 0.15);
                edges.push((a, b, len));
            };
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    push(&mut edges, idx(x, y), idx(x + 1, y), &mut rng);
                }
                if y + 1 < ny {
                    push(&mut edges, idx(x, y), idx(x, y + 1), &mut rng);
                }
            }
        }
        // Shortcuts: ~2% of node count, connecting random distinct nodes.
        let shortcuts = (nx * ny / 50).max(1);
        for _ in 0..shortcuts {
            let a = rng.gen_range(0..nx * ny) as NodeId;
            let b = rng.gen_range(0..nx * ny) as NodeId;
            if a != b {
                push(&mut edges, a, b, &mut rng);
            }
        }
        RoadNetwork::new(nodes, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_net() -> RoadNetwork {
        // 4 nodes in a unit square, edges around the perimeter.
        RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let net = square_net();
        assert_eq!(net.n(), 4);
        assert_eq!(net.edge_count(), 4);
        assert_eq!(net.neighbors(0).len(), 2);
        assert_eq!(net.position(2), Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn rejects_too_short_edge() {
        RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)],
            &[(0, 1, 4.0)], // straight line is 5
        );
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        RoadNetwork::new(vec![Point::ORIGIN], &[(0, 0, 1.0)]);
    }

    #[test]
    fn nearest_node_snaps() {
        let net = square_net();
        assert_eq!(net.nearest_node(&Point::new(0.1, 0.2)), 0);
        assert_eq!(net.nearest_node(&Point::new(0.9, 0.95)), 2);
    }

    #[test]
    fn city_grid_shape() {
        let net = RoadNetwork::city_grid(10, 8, 0.5, 3);
        assert_eq!(net.n(), 80);
        // Grid edges: 9*8 + 10*7 = 142, plus ≥1 shortcut.
        assert!(net.edge_count() >= 142);
        // Deterministic in the seed.
        let again = RoadNetwork::city_grid(10, 8, 0.5, 3);
        assert_eq!(net.edge_count(), again.edge_count());
        assert_eq!(net.position(37), again.position(37));
    }

    #[test]
    fn city_grid_edges_respect_metric_lower_bound() {
        let net = RoadNetwork::city_grid(6, 6, 1.0, 9);
        for a in 0..net.n() as NodeId {
            for &(b, len) in net.neighbors(a) {
                assert!(len >= net.position(a).distance(&net.position(b)) - 1e-9);
            }
        }
    }
}
