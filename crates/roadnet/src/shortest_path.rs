//! Dijkstra shortest paths over the road network.

use crate::{NodeId, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry (BinaryHeap is a max-heap, so order is reversed).
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// One-to-all Dijkstra. Unreachable nodes get `f64::INFINITY`.
pub fn dijkstra(net: &RoadNetwork, source: NodeId) -> Vec<f64> {
    bounded_dijkstra(net, source, f64::INFINITY)
}

/// Dijkstra truncated at `radius`: nodes farther than `radius` keep
/// `f64::INFINITY`. This is the network-space analogue of the Euclidean
/// pruning circles — everything beyond the radius provably cannot
/// contribute influence, so the search never visits it.
pub fn bounded_dijkstra(net: &RoadNetwork, source: NodeId, radius: f64) -> Vec<f64> {
    assert!((source as usize) < net.n(), "source out of range");
    let mut dist = vec![f64::INFINITY; net.n()];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node as usize] {
            continue; // stale entry
        }
        for &(next, len) in net.neighbors(node) {
            let nd = d + len;
            if nd <= radius && nd < dist[next as usize] {
                dist[next as usize] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_geo::Point;

    fn diamond() -> RoadNetwork {
        //    1
        //  /   \
        // 0     3 --- 4
        //  \   /
        //    2
        RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(1.0, -1.0),
                Point::new(2.0, 0.0),
                Point::new(4.0, 0.0),
            ],
            &[
                (0, 1, 1.5),
                (0, 2, 2.0),
                (1, 3, 1.5),
                (2, 3, 1.5),
                (3, 4, 2.0),
            ],
        )
    }

    #[test]
    fn shortest_paths_on_diamond() {
        let d = dijkstra(&diamond(), 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.5);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], 3.0); // via node 1
        assert_eq!(d[4], 5.0);
    }

    #[test]
    fn bounded_search_stops_at_radius() {
        let d = bounded_dijkstra(&diamond(), 0, 2.5);
        assert_eq!(d[1], 1.5);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], f64::INFINITY);
        assert_eq!(d[4], f64::INFINITY);
    }

    #[test]
    fn disconnected_nodes_stay_infinite() {
        let net = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(9.0, 9.0),
            ],
            &[(0, 1, 1.0)],
        );
        let d = dijkstra(&net, 0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], f64::INFINITY);
    }

    #[test]
    fn matches_floyd_warshall_on_random_grid() {
        let net = RoadNetwork::city_grid(5, 5, 1.0, 17);
        let n = net.n();
        // Floyd–Warshall reference.
        let mut fw = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in fw.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for a in 0..n as NodeId {
            for &(b, len) in net.neighbors(a) {
                let cur = fw[a as usize][b as usize];
                if len < cur {
                    fw[a as usize][b as usize] = len;
                    fw[b as usize][a as usize] = len;
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = fw[i][k] + fw[k][j];
                    if via < fw[i][j] {
                        fw[i][j] = via;
                    }
                }
            }
        }
        for s in [0usize, 7, 13, 24] {
            let d = dijkstra(&net, s as NodeId);
            for (t, &dt) in d.iter().enumerate() {
                assert!(
                    (dt - fw[s][t]).abs() < 1e-9,
                    "s={s} t={t}: {dt} vs {}",
                    fw[s][t]
                );
            }
        }
    }

    #[test]
    fn network_distance_dominates_euclidean() {
        let net = RoadNetwork::city_grid(6, 6, 1.0, 5);
        let d = dijkstra(&net, 0);
        let origin = net.position(0);
        for (t, &dt) in d.iter().enumerate() {
            if dt.is_finite() {
                assert!(dt >= origin.distance(&net.position(t as NodeId)) - 1e-9);
            }
        }
    }
}
