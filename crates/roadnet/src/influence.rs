//! MC²LS influence relationships under network distances.

use crate::{bounded_dijkstra, dijkstra, NodeId, RoadNetwork};
use mc2ls_core::{greedy, InfluenceSets, Solution};
use mc2ls_influence::{non_influence_radius, MovingUser, ProbabilityFunction};

/// An MC²LS instance living on a road network: every user position,
/// facility and candidate is snapped to its nearest network node, and all
/// distances are shortest-path distances.
#[derive(Debug, Clone)]
pub struct NetworkProblem<PF: ProbabilityFunction = mc2ls_influence::Sigmoid> {
    /// Snapped positions per user (one node per original position;
    /// duplicates are meaningful — two visits to one mall count twice,
    /// exactly as in the Euclidean model).
    pub user_nodes: Vec<Vec<NodeId>>,
    /// Snapped competitor facilities.
    pub facility_nodes: Vec<NodeId>,
    /// Snapped candidate sites.
    pub candidate_nodes: Vec<NodeId>,
    /// Number of sites to open.
    pub k: usize,
    /// Influence threshold `τ ∈ (0, 1)`.
    pub tau: f64,
    /// Distance-probability function (applied to km of road distance).
    pub pf: PF,
}

impl<PF: ProbabilityFunction> NetworkProblem<PF> {
    /// Snaps a Euclidean MC²LS instance onto a road network.
    pub fn snap(
        network: &RoadNetwork,
        users: &[MovingUser],
        facilities: &[mc2ls_geo::Point],
        candidates: &[mc2ls_geo::Point],
        k: usize,
        tau: f64,
        pf: PF,
    ) -> Self {
        assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1)");
        assert!(k >= 1 && k <= candidates.len(), "invalid k");
        NetworkProblem {
            user_nodes: snap_users(network, users),
            facility_nodes: facilities.iter().map(|p| network.nearest_node(p)).collect(),
            candidate_nodes: candidates.iter().map(|p| network.nearest_node(p)).collect(),
            k,
            tau,
            pf,
        }
    }

    /// The largest per-user position count.
    pub fn r_max(&self) -> usize {
        self.user_nodes.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Snaps each user position to its nearest network node.
pub fn snap_users(network: &RoadNetwork, users: &[MovingUser]) -> Vec<Vec<NodeId>> {
    users
        .iter()
        .map(|u| {
            u.positions()
                .iter()
                .map(|p| network.nearest_node(p))
                .collect()
        })
        .collect()
}

/// Computes the exact influence relationships under network distances.
///
/// Pruning: a bounded Dijkstra to the network `NIR = mMR(τ, r_max)` first
/// filters users with no position in reach (Corollary 2 holds verbatim in
/// any metric); only facilities with at least one surviving user pay for a
/// full Dijkstra to evaluate the exact cumulative probability.
pub fn network_influence_sets<PF: ProbabilityFunction>(
    network: &RoadNetwork,
    problem: &NetworkProblem<PF>,
) -> InfluenceSets {
    let n_users = problem.user_nodes.len();
    let nir = non_influence_radius(&problem.pf, problem.tau, problem.r_max());

    // node → users with a position snapped there (for the NIR filter).
    let mut users_at_node: Vec<Vec<u32>> = vec![Vec::new(); network.n()];
    for (o, nodes) in problem.user_nodes.iter().enumerate() {
        for &n in nodes {
            users_at_node[n as usize].push(o as u32);
        }
    }
    for list in &mut users_at_node {
        list.dedup();
    }

    let evaluate = |site: NodeId| -> Vec<u32> {
        let Some(radius) = nir else {
            return Vec::new(); // no user can ever be influenced
        };
        // Phase 1: bounded search = candidate users.
        let bounded = bounded_dijkstra(network, site, radius);
        let mut candidates: Vec<u32> = Vec::new();
        for (node, d) in bounded.iter().enumerate() {
            if d.is_finite() {
                candidates.extend_from_slice(&users_at_node[node]);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return Vec::new();
        }
        // Phase 2: exact cumulative probability over full distances.
        let dist = dijkstra(network, site);
        let target = 1.0 - problem.tau;
        candidates
            .into_iter()
            .filter(|&o| {
                let mut product = 1.0f64;
                for &n in &problem.user_nodes[o as usize] {
                    let d = dist[n as usize];
                    if d.is_finite() {
                        product *= 1.0 - problem.pf.prob(d);
                        if product <= target {
                            return true;
                        }
                    }
                }
                product <= target
            })
            .collect()
    };

    let omega_c: Vec<Vec<u32>> = problem
        .candidate_nodes
        .iter()
        .map(|&c| evaluate(c))
        .collect();

    // Facility side, restricted to users some candidate influences.
    let mut relevant = vec![false; n_users];
    for list in &omega_c {
        for &o in list {
            relevant[o as usize] = true;
        }
    }
    let mut f_count = vec![0u32; n_users];
    for &f in &problem.facility_nodes {
        for o in evaluate(f) {
            if relevant[o as usize] {
                f_count[o as usize] += 1;
            }
        }
    }

    InfluenceSets::new(omega_c, f_count)
}

/// Solves the network MC²LS instance with the shared greedy.
pub fn solve_network<PF: ProbabilityFunction>(
    network: &RoadNetwork,
    problem: &NetworkProblem<PF>,
) -> Solution {
    let sets = network_influence_sets(network, problem);
    greedy::select(&sets, problem.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_geo::Point;
    use mc2ls_influence::{Sigmoid, Step};

    /// A 1-D road: 6 nodes in a line, 1 km apart.
    fn line() -> RoadNetwork {
        let nodes: Vec<Point> = (0..6).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges: Vec<(NodeId, NodeId, f64)> = (0..5)
            .map(|i| (i as NodeId, i as NodeId + 1, 1.0))
            .collect();
        RoadNetwork::new(nodes, &edges)
    }

    fn user_at(nodes: &[u32]) -> Vec<NodeId> {
        nodes.to_vec()
    }

    #[test]
    fn network_influence_matches_manual_computation() {
        // Step PF with range 1.5 km: a site influences a user iff some
        // position is within 1.5 road-km.
        let net = line();
        let problem = NetworkProblem {
            user_nodes: vec![user_at(&[0, 1]), user_at(&[4, 5]), user_at(&[2])],
            facility_nodes: vec![5],
            candidate_nodes: vec![0, 3],
            k: 1,
            tau: 0.5,
            pf: Step::new(0.9, 1.5),
        };
        let sets = network_influence_sets(&net, &problem);
        // Candidate at node 0: users 0 (positions 0,1) and 2 (pos 2 at
        // distance 2 > 1.5? no) — user 2's position is 2 km away, excluded.
        assert_eq!(sets.omega(0), [0]);
        // Candidate at node 3: user 1 (position 4 at 1 km), user 2 (pos 2
        // at 1 km).
        assert_eq!(sets.omega(1), [1, 2]);
        // Facility at node 5 influences user 1 only; f_count restricted to
        // candidate-influenced users.
        assert_eq!(sets.f_count, vec![0, 1, 0]);
    }

    #[test]
    fn greedy_picks_better_network_site() {
        let net = line();
        let problem = NetworkProblem {
            user_nodes: vec![user_at(&[0, 1]), user_at(&[4, 5]), user_at(&[2])],
            facility_nodes: vec![],
            candidate_nodes: vec![0, 3],
            k: 1,
            tau: 0.5,
            pf: Step::new(0.9, 1.5),
        };
        let sol = solve_network(&net, &problem);
        assert_eq!(sol.selected, vec![1]); // candidate at node 3 covers 2 users
        assert!((sol.cinf - 2.0).abs() < 1e-9);
    }

    #[test]
    fn network_detour_changes_the_decision() {
        // Two sites equidistant in Euclidean space, but the road detours:
        // user reachable in a straight line may be far by road.
        //   0 --- 1 (1 km)        3 is Euclidean-close to 0 but only
        //   connected through 1-2 (long way around).
        let net = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
        );
        let problem = NetworkProblem {
            user_nodes: vec![user_at(&[3, 3])],
            facility_nodes: vec![],
            candidate_nodes: vec![0, 2],
            k: 1,
            tau: 0.5,
            pf: Step::new(0.9, 1.5),
        };
        let sets = network_influence_sets(&net, &problem);
        // Euclidean distance 0→3 is 1 km, but road distance is 3 km: no
        // influence. Candidate at node 2 is 1 road-km away: influences.
        assert!(sets.omega(0).is_empty());
        assert_eq!(sets.omega(1), [0]);
    }

    #[test]
    fn sigmoid_on_network_matches_bruteforce() {
        let net = RoadNetwork::city_grid(6, 6, 0.8, 21);
        let pf = Sigmoid::paper_default();
        // Users with a handful of snapped positions scattered on the grid.
        let user_nodes: Vec<Vec<NodeId>> = (0..12)
            .map(|i| (0..4).map(|j| ((i * 7 + j * 5) % 36) as NodeId).collect())
            .collect();
        let problem = NetworkProblem {
            user_nodes: user_nodes.clone(),
            facility_nodes: vec![1, 8],
            candidate_nodes: vec![0, 17, 35],
            k: 2,
            tau: 0.6,
            pf,
        };
        let sets = network_influence_sets(&net, &problem);
        // Brute force: full Dijkstra per site, full product per user.
        for (ci, &site) in problem.candidate_nodes.iter().enumerate() {
            let dist = dijkstra(&net, site);
            let mut expect: Vec<u32> = Vec::new();
            for (o, nodes) in user_nodes.iter().enumerate() {
                let mut prod = 1.0;
                for &n in nodes {
                    prod *= 1.0 - pf.prob(dist[n as usize]);
                }
                if 1.0 - prod >= 0.6 {
                    expect.push(o as u32);
                }
            }
            assert_eq!(sets.omega(ci), expect, "candidate {ci}");
        }
    }

    #[test]
    fn disconnected_components_are_never_influenced() {
        let net = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(50.0, 50.0),
            ],
            &[(0, 1, 1.0)],
        );
        let problem = NetworkProblem {
            user_nodes: vec![user_at(&[2, 2, 2])],
            facility_nodes: vec![],
            candidate_nodes: vec![0],
            k: 1,
            tau: 0.3,
            pf: Sigmoid::paper_default(),
        };
        let sets = network_influence_sets(&net, &problem);
        assert!(sets.omega(0).is_empty());
    }
}
