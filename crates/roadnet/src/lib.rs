//! Road-network substrate for MC²LS.
//!
//! The location-selection literature the paper builds on includes
//! road-network variants ([11] optimal location queries on road networks,
//! [27] k-facility relocation on road networks). This crate provides the
//! substrate to run MC²LS under **network distances** instead of Euclidean
//! ones:
//!
//! * [`RoadNetwork`] — an undirected weighted graph with embedded node
//!   coordinates, plus a synthetic city-grid generator;
//! * [`dijkstra`]/[`bounded_dijkstra`] — one-to-all and radius-bounded
//!   shortest paths;
//! * [`network_influence_sets`] — the MC²LS influence relationships when
//!   `d(v, p)` is the shortest-path distance between snapped positions,
//!   with the bounded search doing the pruning (positions farther than the
//!   network NIR cannot matter; Corollary 2 applies verbatim because
//!   network distance is still a metric).
//!
//! The Euclidean pruning rules (IA/NIB/IS/NIR squares) do not transfer to
//! network space, so this module prunes by bounded graph search — the same
//! role, played by the structure that fits the metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod influence;
mod shortest_path;

pub use graph::{NodeId, RoadNetwork};
pub use influence::{network_influence_sets, snap_users, solve_network, NetworkProblem};
pub use shortest_path::{bounded_dijkstra, dijkstra};
