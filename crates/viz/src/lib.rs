//! SVG renderings of MC²LS datasets and solutions.
//!
//! The paper's Fig. 9 shows the spatial distribution of users (gray),
//! existing facilities (green), candidates (red) and the selected result
//! (blue diamonds). [`render_scene`] reproduces that style as a
//! self-contained SVG string — no external graphics dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod svg;

pub use svg::SvgCanvas;

use mc2ls_core::{Problem, Solution};
use mc2ls_data::Dataset;
use mc2ls_geo::{Extent, Point, Rect};
use mc2ls_influence::ProbabilityFunction;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width_px: u32,
    /// At most this many user positions are drawn (uniform subsample).
    pub max_positions: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width_px: 800,
            max_positions: 20_000,
        }
    }
}

/// Renders a dataset alone (Fig. 9 style, before selection).
pub fn render_dataset(dataset: &Dataset, options: &RenderOptions) -> String {
    let positions: Vec<Point> = dataset
        .users
        .iter()
        .flat_map(|u| u.positions().iter().copied())
        .collect();
    render_points(&positions, &[], &[], &[], options)
}

/// Renders a full scene: user positions (gray), facilities (green),
/// candidates (red), selected sites (blue diamonds).
pub fn render_scene<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    solution: Option<&Solution>,
    options: &RenderOptions,
) -> String {
    let positions: Vec<Point> = problem
        .users
        .iter()
        .flat_map(|u| u.positions().iter().copied())
        .collect();
    let selected: Vec<Point> = solution
        .map(|s| {
            s.selected
                .iter()
                .map(|&c| problem.candidates[c as usize])
                .collect()
        })
        .unwrap_or_default();
    render_points(
        &positions,
        &problem.facilities,
        &problem.candidates,
        &selected,
        options,
    )
}

fn render_points(
    positions: &[Point],
    facilities: &[Point],
    candidates: &[Point],
    selected: &[Point],
    options: &RenderOptions,
) -> String {
    let mut extent = Extent::new();
    extent.add_all(positions);
    extent.add_all(facilities);
    extent.add_all(candidates);
    let world = extent
        .padded_rect(1.0)
        .unwrap_or_else(|| Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)));

    let mut canvas = SvgCanvas::new(world, options.width_px);
    let step = (positions.len() / options.max_positions.max(1)).max(1);
    for p in positions.iter().step_by(step) {
        canvas.circle(*p, 1.0, "#9e9e9e", 0.45);
    }
    for f in facilities {
        canvas.circle(*f, 3.0, "#2e7d32", 0.9);
    }
    for c in candidates {
        canvas.circle(*c, 3.0, "#c62828", 0.9);
    }
    for s in selected {
        canvas.diamond(*s, 6.0, "#1565c0", 1.0);
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn tiny_problem() -> Problem {
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.5)]),
            MovingUser::new(vec![Point::new(2.0, 1.0)]),
        ];
        Problem::new(
            users,
            vec![Point::new(1.0, 1.0)],
            vec![Point::new(0.2, 0.2), Point::new(2.0, 0.9)],
            1,
            0.5,
            Sigmoid::paper_default(),
        )
    }

    #[test]
    fn scene_svg_is_well_formed() {
        let p = tiny_problem();
        let svg = render_scene(&p, None, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 3 position dots + 1 facility + 2 candidates.
        assert_eq!(svg.matches("<circle").count(), 6);
        assert_eq!(svg.matches("<path").count(), 0);
    }

    #[test]
    fn selected_sites_appear_as_diamonds() {
        let p = tiny_problem();
        let sol = Solution {
            selected: vec![1],
            marginal_gains: vec![1.0],
            cinf: 1.0,
        };
        let svg = render_scene(&p, Some(&sol), &RenderOptions::default());
        assert_eq!(svg.matches("<polygon").count(), 1);
        assert!(svg.contains("#1565c0"));
    }

    #[test]
    fn subsampling_caps_point_count() {
        let users = vec![MovingUser::new(
            (0..1000)
                .map(|i| Point::new(i as f64 * 0.01, 0.0))
                .collect(),
        )];
        let dataset = Dataset::new("t".into(), users, vec![Point::ORIGIN], 10.0);
        let svg = render_dataset(
            &dataset,
            &RenderOptions {
                width_px: 400,
                max_positions: 100,
            },
        );
        let dots = svg.matches("<circle").count();
        assert!(dots <= 110, "got {dots} dots");
    }

    #[test]
    fn aspect_ratio_follows_world() {
        let p = tiny_problem();
        let svg = render_scene(
            &p,
            None,
            &RenderOptions {
                width_px: 500,
                max_positions: 10,
            },
        );
        assert!(svg.contains("width=\"500\""));
    }
}
