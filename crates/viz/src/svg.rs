//! A minimal SVG canvas with world-to-pixel projection.

use mc2ls_geo::{Point, Rect};
use std::fmt::Write as _;

/// An SVG document under construction, mapping world km coordinates into a
/// pixel viewport (y flipped so north is up).
#[derive(Debug)]
pub struct SvgCanvas {
    world: Rect,
    width: u32,
    height: u32,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas covering `world`, `width_px` pixels wide; the
    /// height follows the world aspect ratio.
    pub fn new(world: Rect, width_px: u32) -> Self {
        assert!(
            world.width() > 0.0 && world.height() > 0.0,
            "empty world rect"
        );
        assert!(width_px >= 16, "canvas too small");
        let height = ((width_px as f64) * world.height() / world.width()).round() as u32;
        SvgCanvas {
            world,
            width: width_px,
            height: height.max(16),
            body: String::new(),
        }
    }

    fn project(&self, p: Point) -> (f64, f64) {
        let x = (p.x - self.world.min.x) / self.world.width() * self.width as f64;
        let y = (1.0 - (p.y - self.world.min.y) / self.world.height()) * self.height as f64;
        (x, y)
    }

    /// Draws a filled circle of radius `r_px` pixels at world point `p`.
    pub fn circle(&mut self, p: Point, r_px: f64, fill: &str, opacity: f64) {
        let (x, y) = self.project(p);
        let _ = writeln!(
            self.body,
            r#"  <circle cx="{x:.1}" cy="{y:.1}" r="{r_px}" fill="{fill}" fill-opacity="{opacity}"/>"#
        );
    }

    /// Draws a filled diamond with half-diagonal `r_px` pixels.
    pub fn diamond(&mut self, p: Point, r_px: f64, fill: &str, opacity: f64) {
        let (x, y) = self.project(p);
        let _ = writeln!(
            self.body,
            r#"  <polygon points="{:.1},{:.1} {:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="{fill}" fill-opacity="{opacity}"/>"#,
            x,
            y - r_px,
            x + r_px,
            y,
            x,
            y + r_px,
            x - r_px,
            y
        );
    }

    /// Draws a text label anchored at world point `p`.
    pub fn text(&mut self, p: Point, content: &str, size_px: u32, fill: &str) {
        let (x, y) = self.project(p);
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"  <text x="{x:.1}" y="{y:.1}" font-size="{size_px}" font-family="sans-serif" fill="{fill}">{escaped}</text>"#
        );
    }

    /// Finalises the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas() -> SvgCanvas {
        SvgCanvas::new(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0)), 200)
    }

    #[test]
    fn projection_flips_y() {
        let c = canvas();
        let (x0, y0) = c.project(Point::new(0.0, 0.0));
        let (x1, y1) = c.project(Point::new(10.0, 5.0));
        assert_eq!((x0, y0), (0.0, 100.0)); // bottom-left → lower edge
        assert_eq!((x1, y1), (200.0, 0.0)); // top-right → upper edge
    }

    #[test]
    fn height_follows_aspect() {
        let c = canvas();
        assert_eq!(c.width, 200);
        assert_eq!(c.height, 100);
    }

    #[test]
    fn elements_are_emitted() {
        let mut c = canvas();
        c.circle(Point::new(5.0, 2.5), 2.0, "red", 1.0);
        c.diamond(Point::new(1.0, 1.0), 3.0, "blue", 0.8);
        c.text(Point::new(0.5, 4.5), "A & B", 12, "#333");
        let svg = c.finish();
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("A &amp; B"));
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    #[should_panic(expected = "empty world")]
    fn rejects_degenerate_world() {
        SvgCanvas::new(Rect::point(Point::ORIGIN), 100);
    }
}
