//! Prints the calibration statistics of the two dataset presets next to
//! the targets the paper reports (`cargo run -p mc2ls-data --example
//! calibration --release`). Scaled-down instances are used so the check
//! runs in seconds; the behavioural statistics are scale-invariant.

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

fn main() {
    println!(
        "{:<7} {:>6} {:>8} {:>7} {:>6} {:>10} {:>9}   target-ratio",
        "preset", "users", "pos", "mean_r", "r_max", "mbr_ratio", "skew"
    );
    for (name, cfg, target) in [
        ("C@0.2", mc2ls_data::presets::california_scaled(0.2), 0.085),
        ("N@0.5", mc2ls_data::presets::new_york_scaled(0.5), 0.029),
    ] {
        let d = cfg.generate();
        let s = d.stats();
        println!(
            "{name:<7} {:>6} {:>8} {:>7.1} {:>6} {:>10.4} {:>9.3}   {target}",
            s.n_users,
            s.n_positions,
            s.mean_positions,
            s.r_max,
            s.mean_mbr_area_ratio,
            s.hotspot_share
        );
    }
}
