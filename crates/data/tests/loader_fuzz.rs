//! Robustness: the check-in loader must never panic, whatever bytes it is
//! fed — SNAP dumps in the wild contain malformed rows, and a loader that
//! panics on them is useless.

use mc2ls_data::loader::{load_checkins, GeoBounds, LoadError};
use proptest::prelude::*;

proptest! {
    /// Arbitrary text: parse must return Ok or a clean error, never panic.
    #[test]
    fn arbitrary_text_never_panics(input in ".{0,2000}") {
        let _ = load_checkins(input.as_bytes(), "fuzz", None, 2);
    }

    /// Arbitrary bytes (not even UTF-8): same contract.
    #[test]
    fn arbitrary_bytes_never_panic(input in prop::collection::vec(any::<u8>(), 0..4000)) {
        let _ = load_checkins(input.as_slice(), "fuzz", Some(GeoBounds::new_york()), 1);
    }

    /// Structured-ish rows with random fields: rows with parseable numeric
    /// fields either contribute or are skipped; the result is consistent.
    #[test]
    fn semi_structured_rows(rows in prop::collection::vec(
        (any::<u16>(), -95.0f64..95.0, -190.0f64..190.0, any::<u32>()), 0..60)) {
        let mut text = String::new();
        for (user, lat, lon, loc) in &rows {
            text.push_str(&format!("{user}\t2010-01-01T00:00:00Z\t{lat}\t{lon}\t{loc}\n"));
        }
        match load_checkins(text.as_bytes(), "fuzz", None, 1) {
            Ok(d) => {
                // Every surviving user has at least one position and all
                // positions are finite.
                for u in &d.users {
                    prop_assert!(!u.is_empty());
                    for p in u.positions() {
                        prop_assert!(p.is_finite());
                    }
                }
            }
            Err(LoadError::Empty) => {
                // Legitimate when every row was the 0,0 sentinel or the
                // input was empty.
            }
            Err(LoadError::Io(e)) => return Err(TestCaseError::fail(format!("io: {e}"))),
        }
    }

    /// min_positions filtering is monotone: raising the threshold never
    /// increases the user count.
    #[test]
    fn min_positions_is_monotone(rows in prop::collection::vec(
        (0u16..20, 30.0f64..50.0, -80.0f64..-60.0), 1..80)) {
        let mut text = String::new();
        for (i, (user, lat, lon)) in rows.iter().enumerate() {
            text.push_str(&format!("{user}\t2010-01-01T00:00:00Z\t{lat}\t{lon}\t{i}\n"));
        }
        let count = |m: usize| load_checkins(text.as_bytes(), "fuzz", None, m)
            .map(|d| d.users.len())
            .unwrap_or(0);
        let (c1, c2, c3) = (count(1), count(2), count(3));
        prop_assert!(c1 >= c2 && c2 >= c3, "{c1} {c2} {c3}");
    }
}
