use mc2ls_geo::{Extent, Point, Rect};
use mc2ls_influence::MovingUser;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};

/// A loaded or generated dataset: moving users plus a pool of POI sites from
/// which experiments sample candidate and facility locations (the paper
/// chooses both "from real points of interest").
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label used in reports.
    pub name: String,
    /// The moving users `Ω`.
    pub users: Vec<MovingUser>,
    /// POI pool for site sampling.
    pub pois: Vec<Point>,
    /// Nominal side length of the study region in km.
    pub region_km: f64,
}

/// Summary statistics mirroring the ones the paper reports in §VII-A.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DatasetStats {
    /// `|Ω|`.
    pub n_users: usize,
    /// Total recorded positions.
    pub n_positions: usize,
    /// Mean positions per user.
    pub mean_positions: f64,
    /// Max positions over users (`r_max`).
    pub r_max: usize,
    /// Mean of (user-MBR area / region area) — the paper's ≈0.085 (C) and
    /// ≈0.029 (N).
    pub mean_mbr_area_ratio: f64,
    /// Share of all positions falling in the busiest 4% of grid cells
    /// (5×5 grid within a 25-cell partition): a skewness proxy.
    pub hotspot_share: f64,
}

impl Dataset {
    /// Assembles a dataset; `region_km` may exceed the data extent.
    pub fn new(name: String, users: Vec<MovingUser>, pois: Vec<Point>, region_km: f64) -> Self {
        assert!(!users.is_empty(), "a dataset must contain users");
        Dataset {
            name,
            users,
            pois,
            region_km,
        }
    }

    /// The bounding rectangle of all user positions.
    pub fn extent(&self) -> Rect {
        let mut e = Extent::new();
        for u in &self.users {
            e.add_all(u.positions());
        }
        // lint:allow(panic-path): Dataset::new rejects empty user lists and every user carries >= 1 position
        e.rect().expect("non-empty dataset")
    }

    /// Samples `n` distinct POI sites (deterministic in `seed`).
    ///
    /// # Panics
    /// Panics when fewer than `n` POIs exist.
    pub fn sample_sites(&self, n: usize, seed: u64) -> Vec<Point> {
        assert!(
            n <= self.pois.len(),
            "asked for {n} sites, pool has {}",
            self.pois.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.pois.len()).collect();
        idx.shuffle(&mut rng);
        idx[..n].iter().map(|&i| self.pois[i]).collect()
    }

    /// Samples disjoint candidate and facility site sets in one shot, the
    /// way the experiments need them.
    pub fn sample_sites_disjoint(
        &self,
        n_candidates: usize,
        n_facilities: usize,
        seed: u64,
    ) -> (Vec<Point>, Vec<Point>) {
        let all = self.sample_sites(n_candidates + n_facilities, seed);
        let (c, f) = all.split_at(n_candidates);
        (c.to_vec(), f.to_vec())
    }

    /// Computes the summary statistics.
    pub fn stats(&self) -> DatasetStats {
        let extent = self.extent();
        let region_area = extent.area().max(f64::MIN_POSITIVE);
        let n_users = self.users.len();
        let n_positions: usize = self.users.iter().map(MovingUser::len).sum();
        let mean_ratio = self
            .users
            .iter()
            .map(|u| u.mbr().area() / region_area)
            .sum::<f64>()
            / n_users as f64;

        // Skewness proxy: share of positions in the busiest cell of a 5×5
        // partition of the extent.
        let mut counts = [0usize; 25];
        for u in &self.users {
            for p in u.positions() {
                let cx = (((p.x - extent.min.x) / extent.width().max(1e-12)) * 5.0)
                    .floor()
                    .clamp(0.0, 4.0) as usize;
                let cy = (((p.y - extent.min.y) / extent.height().max(1e-12)) * 5.0)
                    .floor()
                    .clamp(0.0, 4.0) as usize;
                counts[cy * 5 + cx] += 1;
            }
        }
        let hotspot_share = counts.iter().copied().max().unwrap_or(0) as f64 / n_positions as f64;

        DatasetStats {
            n_users,
            n_positions,
            mean_positions: n_positions as f64 / n_users as f64,
            r_max: self.users.iter().map(MovingUser::len).max().unwrap_or(0),
            mean_mbr_area_ratio: mean_ratio,
            hotspot_share,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)]),
            MovingUser::new(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]),
        ];
        let pois = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        Dataset::new("tiny".into(), users, pois, 10.0)
    }

    #[test]
    fn stats_are_consistent() {
        let s = tiny().stats();
        assert_eq!(s.n_users, 2);
        assert_eq!(s.n_positions, 4);
        assert_eq!(s.r_max, 2);
        assert!((s.mean_positions - 2.0).abs() < 1e-12);
        assert!(s.mean_mbr_area_ratio > 0.0 && s.mean_mbr_area_ratio <= 1.0);
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let d = tiny();
        let a = d.sample_sites(5, 7);
        let b = d.sample_sites(5, 7);
        assert_eq!(a, b);
        let c = d.sample_sites(5, 8);
        assert_ne!(a, c);
        // All sampled sites are distinct pool entries.
        let mut xs: Vec<f64> = a.iter().map(|p| p.x).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        assert_eq!(xs.len(), 5);
    }

    #[test]
    fn disjoint_sampling_splits_pool() {
        let d = tiny();
        let (c, f) = d.sample_sites_disjoint(3, 4, 1);
        assert_eq!(c.len(), 3);
        assert_eq!(f.len(), 4);
        for p in &c {
            assert!(!f.contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "pool has")]
    fn oversampling_panics() {
        tiny().sample_sites(11, 0);
    }
}
