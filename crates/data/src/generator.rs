//! The synthetic moving-user generator.
//!
//! The model mirrors how check-in datasets arise: a city/region has a set of
//! **hotspots** (commercial centres, campuses, transit hubs) whose
//! popularity follows a Zipf-like law; each user frequents a handful of
//! hotspots within their personal **travel span** and records positions
//! scattered around those anchor hotspots. Skew, density and MBR size —
//! the three properties the paper's pruning behaviour depends on — are all
//! directly controlled.

use crate::dataset::Dataset;
use mc2ls_geo::Point;
use mc2ls_influence::MovingUser;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Dataset label used in reports.
    pub name: String,
    /// Number of moving users `|Ω|`.
    pub n_users: usize,
    /// Target total position count (the generator lands within a few
    /// percent; per-user counts are heavy-tailed like real check-ins).
    pub target_positions: usize,
    /// Side length of the square study region, km.
    pub region_km: f64,
    /// Number of activity hotspots.
    pub hotspots: usize,
    /// Zipf exponent of hotspot popularity: `0` = uniform mass (the paper's
    /// California), `≳1` = heavily skewed (the paper's New York).
    pub hotspot_skew: f64,
    /// Std-dev (km) of positions around a visited hotspot.
    pub local_spread_km: f64,
    /// Fraction of the region side within which one user's hotspots lie;
    /// directly controls the user-MBR/region area ratio the paper reports
    /// (≈0.085 for California, ≈0.029 for New York).
    pub travel_span: f64,
    /// Hotspots a user visits (inclusive range).
    pub hotspots_per_user: (usize, usize),
    /// Minimum positions per user (the paper trims single-position users).
    pub min_positions: usize,
    /// Number of POI sites generated for candidate/facility sampling.
    pub n_pois: usize,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl DatasetConfig {
    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        assert!(self.n_users > 0, "need at least one user");
        assert!(self.min_positions >= 1);
        assert!(self.hotspots >= 1);
        assert!(
            self.hotspots_per_user.0 >= 1 && self.hotspots_per_user.0 <= self.hotspots_per_user.1
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Hotspot centres, uniform over the region; popularity ∝ 1/rank^s.
        let centers: Vec<Point> = (0..self.hotspots)
            .map(|_| {
                Point::new(
                    rng.gen::<f64>() * self.region_km,
                    rng.gen::<f64>() * self.region_km,
                )
            })
            .collect();
        let weights: Vec<f64> = (1..=self.hotspots)
            .map(|rank| 1.0 / (rank as f64).powf(self.hotspot_skew))
            .collect();
        let total_w: f64 = weights.iter().sum();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total_w;
                Some(*acc)
            })
            .collect();
        let pick_hotspot = |rng: &mut StdRng| -> usize {
            let x: f64 = rng.gen();
            cumulative
                .partition_point(|&c| c < x)
                .min(self.hotspots - 1)
        };

        // Heavy-tailed per-user position counts (lognormal-ish via the
        // product of uniforms trick), normalised to the target total.
        let avg = self.target_positions as f64 / self.n_users as f64;
        let raw: Vec<f64> = (0..self.n_users)
            .map(|_| {
                let a: f64 = rng.gen::<f64>().max(1e-9);
                let b: f64 = rng.gen::<f64>().max(1e-9);
                // exp of a symmetric sum → lognormal-like multiplier.
                (-(a.ln() + b.ln()) / 2.0).exp()
            })
            .collect();
        let raw_sum: f64 = raw.iter().sum();
        let scale = avg * self.n_users as f64 / raw_sum;
        let counts: Vec<usize> = raw
            .iter()
            .map(|&x| ((x * scale).round() as usize).max(self.min_positions))
            .collect();

        let users: Vec<MovingUser> = counts
            .iter()
            .map(|&r| {
                // Personal hotspots: the first is popularity-weighted; the
                // rest lie within the travel span of it.
                let span = self.travel_span * self.region_km;
                let n_home = rng.gen_range(self.hotspots_per_user.0..=self.hotspots_per_user.1);
                let first = pick_hotspot(&mut rng);
                let mut homes = vec![centers[first]];
                let mut tries = 0;
                while homes.len() < n_home && tries < 64 {
                    tries += 1;
                    let h = centers[pick_hotspot(&mut rng)];
                    if h.distance(&homes[0]) <= span {
                        homes.push(h);
                    }
                }
                // If the skew leaves no nearby hotspot, synthesise one
                // inside the span so every user still has n_home anchors.
                while homes.len() < n_home {
                    let dx = (rng.gen::<f64>() - 0.5) * 2.0 * span;
                    let dy = (rng.gen::<f64>() - 0.5) * 2.0 * span;
                    homes.push(clamp_to(homes[0].translated(dx, dy), self.region_km));
                }
                let positions: Vec<Point> = (0..r)
                    .map(|_| {
                        let home = homes[rng.gen_range(0..homes.len())];
                        let p = Point::new(
                            home.x + gaussian(&mut rng) * self.local_spread_km,
                            home.y + gaussian(&mut rng) * self.local_spread_km,
                        );
                        clamp_to(p, self.region_km)
                    })
                    .collect();
                MovingUser::new(positions)
            })
            .collect();

        // POIs follow the position density: jittered copies of random user
        // positions (facilities open where customers are, the effect the
        // paper observes in Fig. 9(b)).
        let all_positions: Vec<Point> = users
            .iter()
            .flat_map(|u| u.positions().iter().copied())
            .collect();
        let pois: Vec<Point> = (0..self.n_pois)
            .map(|_| {
                let p = all_positions[rng.gen_range(0..all_positions.len())];
                clamp_to(
                    Point::new(
                        p.x + gaussian(&mut rng) * self.local_spread_km * 0.5,
                        p.y + gaussian(&mut rng) * self.local_spread_km * 0.5,
                    ),
                    self.region_km,
                )
            })
            .collect();

        Dataset::new(self.name.clone(), users, pois, self.region_km)
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn clamp_to(p: Point, side: f64) -> Point {
    Point::new(p.x.clamp(0.0, side), p.y.clamp(0.0, side))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            name: "test".into(),
            n_users: 200,
            target_positions: 3000,
            region_km: 50.0,
            hotspots: 20,
            hotspot_skew: 0.0,
            local_spread_km: 1.0,
            travel_span: 0.3,
            hotspots_per_user: (1, 3),
            min_positions: 2,
            n_pois: 300,
            seed: 42,
        }
    }

    #[test]
    fn respects_counts_and_bounds() {
        let cfg = small_cfg();
        let d = cfg.generate();
        assert_eq!(d.users.len(), 200);
        assert_eq!(d.pois.len(), 300);
        let total: usize = d.users.iter().map(|u| u.len()).sum();
        let err = (total as f64 - 3000.0).abs() / 3000.0;
        assert!(err < 0.25, "total positions {total} too far from target");
        for u in &d.users {
            assert!(u.len() >= 2);
            for p in u.positions() {
                assert!(p.x >= 0.0 && p.x <= 50.0 && p.y >= 0.0 && p.y <= 50.0);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = small_cfg();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.users.len(), b.users.len());
        for (ua, ub) in a.users.iter().zip(&b.users) {
            assert_eq!(ua.positions(), ub.positions());
        }
        assert_eq!(a.pois, b.pois);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_cfg();
        let a = cfg.generate();
        cfg.seed = 43;
        let b = cfg.generate();
        assert_ne!(a.users[0].positions(), b.users[0].positions());
    }

    #[test]
    fn skew_concentrates_mass() {
        // With heavy skew, the busiest cell should hold a much larger share
        // of positions than under uniform weights.
        let mut cfg = small_cfg();
        cfg.hotspot_skew = 0.0;
        let uniform = cfg.generate();
        cfg.hotspot_skew = 1.4;
        cfg.name = "skewed".into();
        let skewed = cfg.generate();
        let share = |d: &Dataset| {
            let mut counts = [0usize; 25];
            for u in &d.users {
                for p in u.positions() {
                    let cx = ((p.x / 10.0) as usize).min(4);
                    let cy = ((p.y / 10.0) as usize).min(4);
                    counts[cy * 5 + cx] += 1;
                }
            }
            let total: usize = counts.iter().sum();
            *counts.iter().max().unwrap() as f64 / total as f64
        };
        assert!(
            share(&skewed) > share(&uniform),
            "skewed={} uniform={}",
            share(&skewed),
            share(&uniform)
        );
    }

    #[test]
    fn travel_span_controls_mbr_ratio() {
        let mut cfg = small_cfg();
        cfg.travel_span = 0.05;
        let tight = cfg.generate().stats();
        cfg.travel_span = 0.6;
        cfg.name = "wide".into();
        let wide = cfg.generate().stats();
        assert!(wide.mean_mbr_area_ratio > tight.mean_mbr_area_ratio);
    }
}
