//! Loader for the SNAP check-in format used by the paper's real datasets
//! (Gowalla and Brightkite):
//!
//! ```text
//! [user] ⟨tab⟩ [check-in time] ⟨tab⟩ [latitude] ⟨tab⟩ [longitude] ⟨tab⟩ [location id]
//! ```
//!
//! Records are grouped per user, optionally clipped to a geographic
//! bounding box (e.g. the New York metro area), projected to planar km with
//! an equirectangular projection anchored at the data centroid, and users
//! with fewer than `min_positions` records are trimmed — exactly the
//! preprocessing the paper describes. POIs are taken to be the distinct
//! check-in locations, matching the paper's "real points of interest".

use crate::Dataset;
use mc2ls_geo::project::Equirectangular;
use mc2ls_geo::{Extent, Point};
use mc2ls_influence::MovingUser;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// A latitude/longitude window (degrees) used to clip check-ins.
#[derive(Debug, Clone, Copy)]
pub struct GeoBounds {
    /// Minimum latitude.
    pub min_lat: f64,
    /// Maximum latitude.
    pub max_lat: f64,
    /// Minimum longitude.
    pub min_lon: f64,
    /// Maximum longitude.
    pub max_lon: f64,
}

impl GeoBounds {
    /// The New York metro window used with the Brightkite dump.
    pub fn new_york() -> Self {
        GeoBounds {
            min_lat: 40.45,
            max_lat: 41.0,
            min_lon: -74.35,
            max_lon: -73.55,
        }
    }

    /// The state of California window used with the Gowalla dump.
    pub fn california() -> Self {
        GeoBounds {
            min_lat: 32.3,
            max_lat: 42.1,
            min_lon: -124.6,
            max_lon: -114.0,
        }
    }

    fn contains(&self, lat: f64, lon: f64) -> bool {
        lat >= self.min_lat && lat <= self.max_lat && lon >= self.min_lon && lon <= self.max_lon
    }
}

/// Errors the loader reports.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// No usable record survived parsing/clipping.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Empty => write!(f, "no usable check-in records"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a check-in stream into a [`Dataset`].
///
/// Malformed lines are skipped (real SNAP dumps contain a few); users with
/// fewer than `min_positions` surviving records are trimmed.
pub fn load_checkins<R: Read>(
    reader: R,
    name: &str,
    bounds: Option<GeoBounds>,
    min_positions: usize,
) -> Result<Dataset, LoadError> {
    let reader = BufReader::new(reader);
    let mut by_user: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut locations: BTreeMap<u64, (f64, f64)> = BTreeMap::new();

    for line in reader.lines() {
        let line = line?;
        let mut it = line.split('\t');
        let (Some(user), Some(_time), Some(lat), Some(lon)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            continue;
        };
        let loc_id = it.next();
        let (Ok(user), Ok(lat), Ok(lon)) =
            (user.parse::<u64>(), lat.parse::<f64>(), lon.parse::<f64>())
        else {
            continue;
        };
        if !lat.is_finite() || !lon.is_finite() || (lat == 0.0 && lon == 0.0) {
            continue; // SNAP dumps use 0,0 for unknown coordinates
        }
        if let Some(b) = &bounds {
            if !b.contains(lat, lon) {
                continue;
            }
        }
        by_user.entry(user).or_default().push((lat, lon));
        if let Some(Ok(loc)) = loc_id.map(str::parse::<u64>) {
            locations.entry(loc).or_insert((lat, lon));
        }
    }

    by_user.retain(|_, v| v.len() >= min_positions);
    if by_user.is_empty() {
        return Err(LoadError::Empty);
    }

    // Anchor the projection at the centroid of all surviving records.
    let (mut lat_sum, mut lon_sum, mut n) = (0.0, 0.0, 0usize);
    for records in by_user.values() {
        for (lat, lon) in records {
            lat_sum += lat;
            lon_sum += lon;
            n += 1;
        }
    }
    let proj = Equirectangular::new(lat_sum / n as f64, lon_sum / n as f64);

    let users: Vec<MovingUser> = by_user
        .values()
        .map(|records| {
            MovingUser::new(
                records
                    .iter()
                    .map(|&(lat, lon)| proj.project(lat, lon))
                    .collect(),
            )
        })
        .collect();

    let pois: Vec<Point> = locations
        .values()
        .filter(|(lat, lon)| bounds.is_none_or(|b| b.contains(*lat, *lon)))
        .map(|&(lat, lon)| proj.project(lat, lon))
        .collect();

    let mut e = Extent::new();
    for u in &users {
        e.add_all(u.positions());
    }
    // An empty extent can only come from every record being filtered
    // out, which is exactly the Empty error.
    let region = e.rect().ok_or(LoadError::Empty)?;
    Ok(Dataset::new(
        name.to_string(),
        users,
        pois,
        region.width().max(region.height()),
    ))
}

/// One timestamped check-in, surfaced as a replayable stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckinEvent {
    /// Raw SNAP user id.
    pub user: u64,
    /// Check-in time as Unix seconds (parsed from the ISO-8601 column).
    pub timestamp: i64,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// Parses a check-in stream into an **ordered event stream**: one
/// [`CheckinEvent`] per well-formed record, sorted by timestamp (stable —
/// records sharing a timestamp keep their file order). SNAP dumps store
/// each user's records newest-first, so the raw file order is *not* replay
/// order; this is the entry point for the streaming/update workloads.
///
/// The same hygiene as [`load_checkins`] applies — malformed lines,
/// non-finite coordinates, the `0,0` unknown-location sentinel and
/// unparseable timestamps are skipped, and an optional [`GeoBounds`] clips
/// geographically.
pub fn events<R: Read>(
    reader: R,
    bounds: Option<GeoBounds>,
) -> Result<Vec<CheckinEvent>, LoadError> {
    let reader = BufReader::new(reader);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let mut it = line.split('\t');
        let (Some(user), Some(time), Some(lat), Some(lon)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            continue;
        };
        let (Ok(user), Ok(lat), Ok(lon)) =
            (user.parse::<u64>(), lat.parse::<f64>(), lon.parse::<f64>())
        else {
            continue;
        };
        let Some(timestamp) = parse_timestamp(time) else {
            continue;
        };
        if !lat.is_finite() || !lon.is_finite() || (lat == 0.0 && lon == 0.0) {
            continue;
        }
        if let Some(b) = &bounds {
            if !b.contains(lat, lon) {
                continue;
            }
        }
        out.push(CheckinEvent {
            user,
            timestamp,
            lat,
            lon,
        });
    }
    if out.is_empty() {
        return Err(LoadError::Empty);
    }
    out.sort_by_key(|e| e.timestamp); // stable: ties keep file order
    Ok(out)
}

/// Parses the SNAP timestamp shape `YYYY-MM-DDThh:mm:ssZ` into Unix
/// seconds (proleptic Gregorian, no timezone other than `Z`). Returns
/// `None` for anything malformed.
fn parse_timestamp(s: &str) -> Option<i64> {
    let b = s.as_bytes();
    if b.len() != 20 || b[4] != b'-' || b[7] != b'-' || b[10] != b'T' {
        return None;
    }
    if b[13] != b':' || b[16] != b':' || b[19] != b'Z' {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> Option<i64> {
        let field = s.get(range)?;
        if !field.bytes().all(|c| c.is_ascii_digit()) {
            return None;
        }
        field.parse().ok()
    };
    let (y, m, d) = (num(0..4)?, num(5..7)?, num(8..10)?);
    let (hh, mm, ss) = (num(11..13)?, num(14..16)?, num(17..19)?);
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) || hh > 23 || mm > 59 || ss > 59 {
        return None;
    }
    // Days-from-civil (Howard Hinnant's algorithm), valid over the whole
    // proleptic Gregorian calendar.
    let y_adj = if m <= 2 { y - 1 } else { y };
    let era = y_adj.div_euclid(400);
    let yoe = y_adj - era * 400;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146097 + doe - 719468;
    Some(days * 86400 + hh * 3600 + mm * 60 + ss)
}

/// Loads a check-in file from disk; see [`load_checkins`].
pub fn load_checkin_file<P: AsRef<Path>>(
    path: P,
    name: &str,
    bounds: Option<GeoBounds>,
    min_positions: usize,
) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(path)?;
    load_checkins(file, name, bounds, min_positions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
0\t2010-10-19T23:55:27Z\t40.60\t-73.98\t12\n\
0\t2010-10-18T22:17:43Z\t40.61\t-73.99\t13\n\
0\t2010-10-17T11:12:01Z\t40.62\t-73.97\t14\n\
1\t2010-10-12T00:21:28Z\t40.70\t-73.90\t15\n\
1\t2010-10-11T20:21:20Z\t40.71\t-73.91\t16\n\
2\t2010-10-10T01:00:00Z\t51.50\t-0.12\t17\n\
3\t2010-10-09T01:00:00Z\t40.80\t-73.95\t18\n\
malformed line without tabs\n\
4\tbadtime\tnot_a_lat\t-73.9\t19\n\
5\t2010-10-08T00:00:00Z\t0.0\t0.0\t20\n";

    #[test]
    fn parses_and_groups_by_user() {
        let d = load_checkins(SAMPLE.as_bytes(), "sample", None, 2).unwrap();
        // Users 0 (3 recs) and 1 (2 recs) survive min_positions=2; users 2,
        // 3 have 1 record; 4 is malformed; 5 is the 0,0 sentinel.
        assert_eq!(d.users.len(), 2);
        assert_eq!(d.users[0].len(), 3);
        assert_eq!(d.users[1].len(), 2);
        assert!(!d.pois.is_empty());
    }

    #[test]
    fn bounds_clip_records() {
        let d = load_checkins(SAMPLE.as_bytes(), "ny", Some(GeoBounds::new_york()), 1).unwrap();
        // The London record (user 2) must be clipped; NY users survive.
        assert_eq!(d.users.len(), 3); // users 0, 1, 3
    }

    #[test]
    fn projection_preserves_local_scale() {
        let d = load_checkins(SAMPLE.as_bytes(), "sample", Some(GeoBounds::new_york()), 2).unwrap();
        // User 0's positions are ~1-2 km apart in reality.
        let pts = d.users[0].positions();
        let dist = pts[0].distance(&pts[1]);
        assert!(dist > 0.5 && dist < 3.0, "got {dist} km");
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(
            load_checkins("".as_bytes(), "x", None, 2),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn min_positions_one_keeps_singletons() {
        let d = load_checkins(SAMPLE.as_bytes(), "all", None, 1).unwrap();
        assert_eq!(d.users.len(), 4); // users 0, 1, 2, 3
    }

    #[test]
    fn events_are_ordered_by_timestamp() {
        // SAMPLE stores user 0's records newest-first (Oct 19, 18, 17) and
        // interleaves other users: the event stream must come back sorted.
        let evs = events(SAMPLE.as_bytes(), None).unwrap();
        assert_eq!(evs.len(), 7); // malformed + 0,0-sentinel lines skipped
        assert!(
            evs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
            "events must be timestamp-ordered"
        );
        // Replay order: the oldest record is user 3's Oct 9 check-in, the
        // newest is user 0's Oct 19 one.
        assert_eq!(evs[0].user, 3);
        assert_eq!(evs[6].user, 0);
        assert!((evs[6].lat - 40.60).abs() < 1e-12);
    }

    #[test]
    fn events_skip_malformed_timestamps() {
        // The `badtime` line and a handful of near-miss shapes all drop.
        let text = "\
7\tbadtime\t40.6\t-73.9\t1\n\
7\t2010-13-01T00:00:00Z\t40.6\t-73.9\t1\n\
7\t2010-10-19T24:00:00Z\t40.6\t-73.9\t1\n\
7\t2010-10-19 23:55:27Z\t40.6\t-73.9\t1\n\
7\t2010-10-19T23:55:27\t40.6\t-73.9\t1\n\
7\t2010-1-19T23:55:27ZZ\t40.6\t-73.9\t1\n\
7\t2010-10-19T23:55:27Z\t40.6\t-73.9\t1\n";
        let evs = events(text.as_bytes(), None).unwrap();
        assert_eq!(evs.len(), 1, "only the well-formed line survives");
        // 2010-10-19T23:55:27Z, checked against `date -d ... +%s`.
        assert_eq!(evs[0].timestamp, 1287532527);
    }

    #[test]
    fn out_of_order_records_are_stably_sorted() {
        // Two records share a timestamp; the earlier line must stay first.
        let text = "\
1\t2010-10-19T00:00:00Z\t40.60\t-73.98\t1\n\
2\t2010-10-18T00:00:00Z\t40.61\t-73.97\t2\n\
3\t2010-10-18T00:00:00Z\t40.62\t-73.96\t3\n";
        let evs = events(text.as_bytes(), None).unwrap();
        assert_eq!(
            evs.iter().map(|e| e.user).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
    }

    #[test]
    fn events_respect_bounds_and_empty_errors() {
        let evs = events(SAMPLE.as_bytes(), Some(GeoBounds::new_york())).unwrap();
        assert!(evs.iter().all(|e| e.user != 2), "London record clipped");
        assert!(matches!(
            events("junk\n".as_bytes(), None),
            Err(LoadError::Empty)
        ));
    }
}
