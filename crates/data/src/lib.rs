//! Dataset substrate for the MC²LS reproduction.
//!
//! The paper evaluates on two real check-in datasets that are not
//! redistributable here, so this crate provides:
//!
//! * [`DatasetConfig`]/[`Dataset`] — a synthetic moving-user generator whose
//!   knobs (hotspot skew, per-user travel span, position-count
//!   distribution) are calibrated against the statistics the paper reports
//!   for its datasets;
//! * [`presets`] — the calibrated **California** (Gowalla-like: 10,162
//!   users, ≈381k positions, near-uniform) and **New York**
//!   (Brightkite-like: 2,725 users, ≈34k positions, highly skewed) presets,
//!   plus scaled-down variants for fast iteration;
//! * [`loader`] — a parser for the real SNAP check-in format
//!   (`user ⟨tab⟩ time ⟨tab⟩ lat ⟨tab⟩ lon ⟨tab⟩ location_id`) so the
//!   harness runs on the true data when available;
//! * [`sampler`] — the subsampling utilities behind the paper's Fig. 10
//!   (user scaling) and Fig. 15/16 (position-count scaling) experiments;
//! * [`serialize`] — JSON persistence and SNAP-format export, so synthetic
//!   datasets interoperate with tools expecting the real dumps;
//! * [`trajectory`] — time-ordered commuter traces with slot tags, feeding
//!   the temporal variant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod generator;
pub mod loader;
pub mod presets;
pub mod sampler;
pub mod serialize;
pub mod trajectory;

pub use dataset::{Dataset, DatasetStats};
pub use generator::DatasetConfig;
