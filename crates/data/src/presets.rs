//! Calibrated dataset presets matching the statistics the paper reports for
//! its two real datasets (§VII-A):
//!
//! | property | California (Gowalla) | New York (Brightkite) |
//! |---|---|---|
//! | users | 10,162 | 2,725 |
//! | positions | 381,165 | 34,024 |
//! | user-MBR / region area | ≈ 0.085 | ≈ 0.029 |
//! | distribution | near-uniform | highly skewed, facilities overlap |
//! | positions per km² per user | ≈ 80% of N's | denser |
//!
//! The scaled variants keep every behavioural property (skew, density, MBR
//! ratios, heavy-tailed `r`) and shrink only the cardinalities, so tests and
//! quick experiments run in seconds.

use crate::generator::DatasetConfig;
use crate::Dataset;

/// Full-scale California-like preset (near-uniform, wide-roaming users).
pub fn california() -> DatasetConfig {
    DatasetConfig {
        name: "california".into(),
        n_users: 10_162,
        target_positions: 381_165,
        region_km: 300.0,
        hotspots: 160,
        hotspot_skew: 0.25,
        local_spread_km: 6.0,
        travel_span: 0.30,
        hotspots_per_user: (2, 4),
        min_positions: 2,
        n_pois: 4_000,
        seed: 0xCA11F0,
    }
}

/// Full-scale New York-like preset (skewed hotspots, compact users).
pub fn new_york() -> DatasetConfig {
    DatasetConfig {
        name: "new_york".into(),
        n_users: 2_725,
        target_positions: 34_024,
        region_km: 60.0,
        hotspots: 40,
        hotspot_skew: 1.25,
        local_spread_km: 1.8,
        travel_span: 0.25,
        hotspots_per_user: (2, 3),
        min_positions: 2,
        n_pois: 4_000,
        seed: 0x0E101,
    }
}

/// California preset with user/position counts scaled by `f ∈ (0, 1]`.
pub fn california_scaled(f: f64) -> DatasetConfig {
    scale(california(), f)
}

/// New York preset with user/position counts scaled by `f ∈ (0, 1]`.
pub fn new_york_scaled(f: f64) -> DatasetConfig {
    scale(new_york(), f)
}

fn scale(mut cfg: DatasetConfig, f: f64) -> DatasetConfig {
    assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1], got {f}");
    cfg.n_users = ((cfg.n_users as f64 * f).round() as usize).max(10);
    cfg.target_positions = ((cfg.target_positions as f64 * f).round() as usize).max(20);
    cfg.name = format!("{}_x{:.2}", cfg.name, f);
    cfg
}

/// Generates the full-scale California-like dataset.
pub fn california_dataset() -> Dataset {
    california().generate()
}

/// Generates the full-scale New York-like dataset.
pub fn new_york_dataset() -> Dataset {
    new_york().generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_california_matches_paper_statistics() {
        // 10% scale keeps the behavioural statistics; full scale is
        // exercised by the benchmark harness.
        let d = california_scaled(0.1).generate();
        let s = d.stats();
        assert_eq!(s.n_users, 1016);
        // Mean positions per user ≈ 37.5 like the paper's C.
        assert!(
            (s.mean_positions - 37.5).abs() < 6.0,
            "mean_positions={}",
            s.mean_positions
        );
        // MBR ratio near the paper's 0.085 (generous band: ±50%).
        assert!(
            s.mean_mbr_area_ratio > 0.04 && s.mean_mbr_area_ratio < 0.14,
            "mbr ratio {}",
            s.mean_mbr_area_ratio
        );
    }

    #[test]
    fn scaled_new_york_matches_paper_statistics() {
        let d = new_york_scaled(0.1).generate();
        let s = d.stats();
        assert_eq!(s.n_users, 273);
        assert!(
            (s.mean_positions - 12.5).abs() < 4.0,
            "mean_positions={}",
            s.mean_positions
        );
        assert!(
            s.mean_mbr_area_ratio > 0.012 && s.mean_mbr_area_ratio < 0.06,
            "mbr ratio {}",
            s.mean_mbr_area_ratio
        );
    }

    #[test]
    fn new_york_is_more_skewed_than_california() {
        let c = california_scaled(0.05).generate().stats();
        let n = new_york_scaled(0.2).generate().stats();
        assert!(
            n.hotspot_share > c.hotspot_share,
            "N share {} vs C share {}",
            n.hotspot_share,
            c.hotspot_share
        );
    }

    #[test]
    fn new_york_positions_are_denser() {
        // Paper: per-user positions per km² in C ≈ 80% of N's.
        let c = california_scaled(0.05).generate();
        let n = new_york_scaled(0.2).generate();
        let density = |d: &Dataset| {
            let s = d.stats();
            s.mean_positions / d.extent().area()
        };
        assert!(density(&n) > density(&c));
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn rejects_bad_scale() {
        california_scaled(1.5);
    }
}
