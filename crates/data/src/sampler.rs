//! Subsampling utilities behind the paper's scaling experiments.
//!
//! * Fig. 10 varies `|Ω|` — [`subset_users`] takes a deterministic random
//!   subset of users.
//! * Fig. 15/16 vary `r` — [`resample_positions`] keeps only users with more
//!   than `min_available` positions and randomly samples exactly `r` of each
//!   user's positions, matching the paper's protocol ("we choose users with
//!   over 30 positions … and randomly sample 10, 15, 20, 25, and 30").

use mc2ls_influence::MovingUser;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deterministic random subset of `n` users (all users when `n` exceeds
/// the population).
pub fn subset_users(users: &[MovingUser], n: usize, seed: u64) -> Vec<MovingUser> {
    if n >= users.len() {
        return users.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..users.len()).collect();
    idx.shuffle(&mut rng);
    let mut chosen: Vec<usize> = idx[..n].to_vec();
    chosen.sort_unstable(); // stable user ordering keeps runs comparable
    chosen.into_iter().map(|i| users[i].clone()).collect()
}

/// Keeps users with **more than** `min_available` positions and resamples
/// exactly `r` positions from each (`r ≤ min_available`).
///
/// # Panics
/// Panics when `r` is zero or exceeds `min_available`.
pub fn resample_positions(
    users: &[MovingUser],
    min_available: usize,
    r: usize,
    seed: u64,
) -> Vec<MovingUser> {
    assert!(r >= 1, "r must be positive");
    assert!(
        r <= min_available,
        "cannot sample {r} positions from users filtered at > {min_available}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    users
        .iter()
        .filter(|u| u.len() > min_available)
        .map(|u| {
            let mut idx: Vec<usize> = (0..u.len()).collect();
            idx.shuffle(&mut rng);
            let mut pick: Vec<usize> = idx[..r].to_vec();
            pick.sort_unstable();
            u.subsample(&pick)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_geo::Point;

    fn make_users(counts: &[usize]) -> Vec<MovingUser> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                MovingUser::new(
                    (0..r)
                        .map(|j| Point::new(i as f64, j as f64 * 0.1))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn subset_is_deterministic_and_sized() {
        let users = make_users(&[2, 3, 4, 5, 6, 7]);
        let a = subset_users(&users, 3, 9);
        let b = subset_users(&users, 3, 9);
        assert_eq!(a.len(), 3);
        assert_eq!(
            a.iter().map(|u| u.positions()[0]).collect::<Vec<_>>(),
            b.iter().map(|u| u.positions()[0]).collect::<Vec<_>>()
        );
        assert_eq!(subset_users(&users, 100, 9).len(), users.len());
    }

    #[test]
    fn resample_filters_and_sizes() {
        let users = make_users(&[5, 31, 40, 30, 45]);
        let out = resample_positions(&users, 30, 10, 1);
        // Only the users with > 30 positions survive (31, 40, 45).
        assert_eq!(out.len(), 3);
        for u in &out {
            assert_eq!(u.len(), 10);
        }
    }

    #[test]
    fn resampled_positions_come_from_the_user() {
        let users = make_users(&[35]);
        let out = resample_positions(&users, 30, 20, 2);
        let orig = users[0].positions();
        for p in out[0].positions() {
            assert!(orig.contains(p));
        }
    }

    #[test]
    fn resample_is_deterministic() {
        let users = make_users(&[35, 40]);
        let a = resample_positions(&users, 30, 15, 3);
        let b = resample_positions(&users, 30, 15, 3);
        for (ua, ub) in a.iter().zip(&b) {
            assert_eq!(ua.positions(), ub.positions());
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn rejects_oversampling() {
        let users = make_users(&[35]);
        resample_positions(&users, 30, 31, 0);
    }
}
