//! Time-ordered movement-trace generation.
//!
//! The flat generator ([`crate::DatasetConfig`]) produces unordered
//! position multisets — enough for the static MC²LS experiments. This
//! module generates **trajectories**: time-ordered traces following a
//! commuter pattern (home ↔ work anchors with noisy dwell positions),
//! tagged with the time slot of each record. Traces feed the temporal
//! variant directly and degrade gracefully to [`MovingUser`]s for the
//! static problem.

use mc2ls_geo::Point;
use mc2ls_influence::MovingUser;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One user's time-ordered trace: `(position, slot)` records in visit
/// order.
pub type Trace = Vec<(Point, u32)>;

/// Configuration of the commuter-trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Number of users.
    pub n_users: usize,
    /// Side of the square region, km.
    pub region_km: f64,
    /// Time slots per day (e.g. 3 = morning / afternoon / evening).
    pub slots_per_day: u32,
    /// Days of recorded activity per user.
    pub days: usize,
    /// Std-dev (km) of positions around the active anchor.
    pub dwell_spread_km: f64,
    /// Fraction of days with a recorded check-in per slot (sparsity of
    /// real check-in data; 1.0 = every slot every day).
    pub record_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            n_users: 500,
            region_km: 30.0,
            slots_per_day: 3,
            days: 7,
            dwell_spread_km: 0.6,
            record_rate: 0.7,
            seed: 42,
        }
    }
}

impl TrajectoryConfig {
    /// Generates one trace per user. Each user gets a home and a work
    /// anchor; morning/evening slots dwell near home, midday slots near
    /// work, mimicking commuter check-in rhythms. Users whose sampling
    /// produced no record receive one forced home check-in so every trace
    /// is non-empty.
    pub fn generate(&self) -> Vec<Trace> {
        assert!(self.n_users > 0);
        assert!(self.slots_per_day >= 1);
        assert!(self.days >= 1);
        assert!((0.0..=1.0).contains(&self.record_rate));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let site = |rng: &mut StdRng| {
            Point::new(
                rng.gen::<f64>() * self.region_km,
                rng.gen::<f64>() * self.region_km,
            )
        };
        (0..self.n_users)
            .map(|_| {
                let home = site(&mut rng);
                let work = site(&mut rng);
                let mut trace: Trace = Vec::new();
                for _day in 0..self.days {
                    for slot in 0..self.slots_per_day {
                        if rng.gen::<f64>() > self.record_rate {
                            continue;
                        }
                        // Midday slots at work; first/last near home.
                        let midday =
                            self.slots_per_day >= 3 && slot > 0 && slot < self.slots_per_day - 1;
                        let anchor = if midday { work } else { home };
                        let p = Point::new(
                            (anchor.x + gauss(&mut rng) * self.dwell_spread_km)
                                .clamp(0.0, self.region_km),
                            (anchor.y + gauss(&mut rng) * self.dwell_spread_km)
                                .clamp(0.0, self.region_km),
                        );
                        trace.push((p, slot));
                    }
                }
                if trace.is_empty() {
                    trace.push((home, 0));
                }
                trace
            })
            .collect()
    }
}

/// Collapses traces to static [`MovingUser`]s (drops slot tags).
pub fn to_moving_users(traces: &[Trace]) -> Vec<MovingUser> {
    traces
        .iter()
        .map(|t| MovingUser::new(t.iter().map(|&(p, _)| p).collect()))
        .collect()
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_non_empty_slot_tagged_traces() {
        let cfg = TrajectoryConfig {
            n_users: 50,
            ..TrajectoryConfig::default()
        };
        let traces = cfg.generate();
        assert_eq!(traces.len(), 50);
        for t in &traces {
            assert!(!t.is_empty());
            for &(p, slot) in t {
                assert!(slot < cfg.slots_per_day);
                assert!(p.x >= 0.0 && p.x <= cfg.region_km);
                assert!(p.y >= 0.0 && p.y <= cfg.region_km);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = TrajectoryConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = TrajectoryConfig {
            seed: 43,
            ..TrajectoryConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn record_rate_controls_density() {
        let sparse = TrajectoryConfig {
            record_rate: 0.2,
            ..TrajectoryConfig::default()
        };
        let dense = TrajectoryConfig {
            record_rate: 1.0,
            ..TrajectoryConfig::default()
        };
        let count = |ts: &[Trace]| ts.iter().map(Vec::len).sum::<usize>();
        assert!(count(&dense.generate()) > count(&sparse.generate()));
        // Full rate records every slot of every day.
        let full = dense.generate();
        assert_eq!(
            count(&full),
            dense.n_users * dense.days * dense.slots_per_day as usize
        );
    }

    #[test]
    fn commuter_pattern_separates_slots() {
        // With distant home/work anchors, midday positions cluster away
        // from morning positions for most users.
        let cfg = TrajectoryConfig {
            n_users: 100,
            region_km: 50.0,
            dwell_spread_km: 0.3,
            record_rate: 1.0,
            ..TrajectoryConfig::default()
        };
        let traces = cfg.generate();
        let mut separated = 0;
        for t in &traces {
            let centroid = |slot: u32| {
                let pts: Vec<Point> = t
                    .iter()
                    .filter(|&&(_, s)| s == slot)
                    .map(|&(p, _)| p)
                    .collect();
                let n = pts.len() as f64;
                Point::new(
                    pts.iter().map(|p| p.x).sum::<f64>() / n,
                    pts.iter().map(|p| p.y).sum::<f64>() / n,
                )
            };
            if centroid(0).distance(&centroid(1)) > 2.0 {
                separated += 1;
            }
        }
        // Home and work are independent uniforms on a 50 km square —
        // almost all users commute farther than 2 km.
        assert!(separated > 80, "only {separated} users separated");
    }

    #[test]
    fn conversion_to_moving_users_preserves_counts() {
        let traces = TrajectoryConfig::default().generate();
        let users = to_moving_users(&traces);
        assert_eq!(users.len(), traces.len());
        for (u, t) in users.iter().zip(&traces) {
            assert_eq!(u.len(), t.len());
        }
    }
}
