//! Dataset persistence: JSON save/load and SNAP check-in export.
//!
//! JSON is the native round-trip format (exact coordinates, POIs, name).
//! The check-in export writes the same tab-separated format the
//! [`crate::loader`] parses, so synthetic datasets can be fed to any tool
//! that consumes real Gowalla/Brightkite dumps.

use crate::Dataset;
use mc2ls_geo::project::Equirectangular;
use mc2ls_geo::Point;
use mc2ls_influence::MovingUser;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// The on-disk JSON schema.
#[derive(Debug, Serialize, Deserialize)]
struct DatasetFile {
    name: String,
    region_km: f64,
    users: Vec<Vec<Point>>,
    pois: Vec<Point>,
}

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "I/O error: {e}"),
            SerializeError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Writes a dataset as pretty JSON.
pub fn save_json<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), SerializeError> {
    let file = DatasetFile {
        name: dataset.name.clone(),
        region_km: dataset.region_km,
        users: dataset
            .users
            .iter()
            .map(|u| u.positions().to_vec())
            .collect(),
        pois: dataset.pois.clone(),
    };
    let json = serde_json::to_string(&file).map_err(|e| SerializeError::Format(e.to_string()))?;
    writer.write_all(json.as_bytes())?;
    Ok(())
}

/// Reads a dataset back from JSON.
pub fn load_json<R: Read>(mut reader: R) -> Result<Dataset, SerializeError> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    let file: DatasetFile =
        serde_json::from_str(&buf).map_err(|e| SerializeError::Format(e.to_string()))?;
    if file.users.is_empty() {
        return Err(SerializeError::Format("dataset has no users".into()));
    }
    if file.users.iter().any(Vec::is_empty) {
        return Err(SerializeError::Format("a user has no positions".into()));
    }
    Ok(Dataset::new(
        file.name,
        file.users.into_iter().map(MovingUser::new).collect(),
        file.pois,
        file.region_km,
    ))
}

/// Exports a dataset in the SNAP check-in TSV format
/// (`user ⟨tab⟩ time ⟨tab⟩ lat ⟨tab⟩ lon ⟨tab⟩ location_id`), unprojecting
/// planar km back to latitude/longitude around `anchor` (degrees). POIs
/// are emitted as the location ids of the nearest check-ins.
pub fn export_checkins<W: Write>(
    dataset: &Dataset,
    anchor: (f64, f64),
    mut writer: W,
) -> Result<(), SerializeError> {
    let proj = Equirectangular::new(anchor.0, anchor.1);
    let mut loc_id = 0u64;
    for (uid, user) in dataset.users.iter().enumerate() {
        for (i, p) in user.positions().iter().enumerate() {
            let (lat, lon) = proj.unproject(p);
            // Synthetic timestamps: one check-in per hour per user.
            writeln!(
                writer,
                "{uid}\t2010-01-01T{:02}:00:00Z\t{lat:.7}\t{lon:.7}\t{loc_id}",
                i % 24
            )?;
            loc_id += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load_checkins;

    fn tiny() -> Dataset {
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.5)]),
            MovingUser::new(vec![Point::new(-2.0, 3.0), Point::new(-2.1, 3.1)]),
        ];
        Dataset::new("tiny".into(), users, vec![Point::new(0.5, 0.5)], 10.0)
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let d = tiny();
        let mut buf = Vec::new();
        save_json(&d, &mut buf).unwrap();
        let back = load_json(buf.as_slice()).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.region_km, d.region_km);
        assert_eq!(back.pois, d.pois);
        assert_eq!(back.users.len(), d.users.len());
        for (a, b) in back.users.iter().zip(&d.users) {
            assert_eq!(a.positions(), b.positions());
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(matches!(
            load_json("not json".as_bytes()),
            Err(SerializeError::Format(_))
        ));
        assert!(matches!(
            load_json(r#"{"name":"x","region_km":1.0,"users":[],"pois":[]}"#.as_bytes()),
            Err(SerializeError::Format(_))
        ));
    }

    #[test]
    fn checkin_export_roundtrips_through_loader() {
        let d = tiny();
        let mut buf = Vec::new();
        export_checkins(&d, (40.7, -74.0), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 4);
        let back = load_checkins(text.as_bytes(), "roundtrip", None, 2).unwrap();
        assert_eq!(back.users.len(), 2);
        // The loader re-anchors at the centroid, so compare pairwise
        // distances rather than raw coordinates.
        for (a, b) in back.users.iter().zip(&d.users) {
            let da = a.positions()[0].distance(&a.positions()[1]);
            let db = b.positions()[0].distance(&b.positions()[1]);
            assert!((da - db).abs() / db < 0.01, "{da} vs {db}");
        }
    }
}
