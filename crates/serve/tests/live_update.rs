//! End-to-end exercise of live mode: a server started with an update
//! engine absorbs mobility batches through the UPDATE verb — no RELOAD —
//! and afterwards serves answers bit-identical to a from-scratch solve of
//! the mutated instance.

use mc2ls_core::algorithms::{solve_threaded, IqtConfig, Method, Selector};
use mc2ls_core::Problem;
use mc2ls_geo::Point;
use mc2ls_influence::{Model, MovingUser, Sigmoid};
use mc2ls_serve::{
    Client, LiveUpdater, QueryEngine, QueryRequest, ServeError, Server, ServerConfig, Snapshot,
    WireEvent,
};
use rand::prelude::*;

fn random_problem(seed: u64, n_users: usize, n_cands: usize) -> Problem<Sigmoid> {
    // Dense enough (tight extent, low τ) that influence sets are non-empty
    // and mobility events actually flip candidate memberships.
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |r: &mut StdRng| Point::new(r.gen_range(-4.0..4.0), r.gen_range(-4.0..4.0));
    let users = (0..n_users)
        .map(|_| {
            let n = rng.gen_range(1..4);
            MovingUser::new((0..n).map(|_| pt(&mut rng)).collect())
        })
        .collect();
    let facilities = (0..6).map(|_| pt(&mut rng)).collect();
    let candidates = (0..n_cands).map(|_| pt(&mut rng)).collect();
    Problem::new(
        users,
        facilities,
        candidates,
        3,
        0.25,
        Sigmoid::paper_default(),
    )
}

fn start_live(problem: &Problem<Sigmoid>, n_shards: usize) -> Server {
    let (live, snapshot, _prune) = LiveUpdater::new("live", problem, 2.0, 2, n_shards);
    let engine = QueryEngine::new(snapshot, 2);
    Server::start_live(
        ServerConfig {
            threads: 2,
            workers: 2,
            ..ServerConfig::default()
        },
        engine,
        live,
    )
    .expect("bind loopback")
}

fn query_for(problem: &Problem<Sigmoid>, k: usize) -> QueryRequest {
    QueryRequest {
        candidates: None,
        k,
        tau: problem.tau,
        block_size: problem.block_size,
        selector: Selector::Auto,
        pf_exact: false,
        model: Model::Cumulative,
    }
}

fn event(op: &str, user: u32, points: &[Point]) -> WireEvent {
    WireEvent {
        op: op.to_string(),
        user,
        xs: points.iter().map(|p| p.x).collect(),
        ys: points.iter().map(|p| p.y).collect(),
    }
}

/// Insert + checkin + delete over the wire, then the served answer equals
/// a from-scratch solve of the mutated instance, bit for bit — with zero
/// reloads.
#[test]
fn absorbed_updates_match_a_from_scratch_rebuild() {
    let problem = random_problem(91, 50, 14);
    for n_shards in [1usize, 2] {
        let server = start_live(&problem, n_shards);
        let mut client = Client::connect(&server.addr().to_string()).expect("connect");

        // Prime an answer so the epoch swap below is observable.
        let before = client.query(&query_for(&problem, 3)).expect("pre-update");

        let newcomer = vec![Point::new(1.5, -2.5), Point::new(2.0, -2.0)];
        let checkin = Point::new(-3.0, 4.0);
        let batch = vec![
            event("insert", 0, &newcomer),
            event("checkin", 2, &[checkin]),
            event("delete", 0, &[]),
        ];
        let report = client.update(&batch).expect("update accepted");
        assert_eq!(report.applied, 3);
        assert_eq!(report.compactions, 1);
        assert_eq!(
            report.n_users,
            problem.n_users() as u64,
            "+1 insert -1 delete"
        );
        assert_eq!(
            report.next_user_id as usize,
            problem.n_users(),
            "compaction re-densified the slots"
        );
        assert!(!report.touched_shards.is_empty());

        // The mutated instance, in the engine's compaction order: slot 0
        // tombstoned, survivors in slot order, the newcomer appended last.
        let mut users: Vec<MovingUser> = problem.users[1..].to_vec();
        let mut traj = users[1].positions().to_vec(); // slot 2 = survivor index 1
        traj.push(checkin);
        users[1] = MovingUser::new(traj);
        users.push(MovingUser::new(newcomer.clone()));
        let mutated = Problem::new(
            users,
            problem.facilities.clone(),
            problem.candidates.clone(),
            3,
            problem.tau,
            problem.pf,
        );
        let direct = solve_threaded(
            &mutated,
            Method::Iqt(IqtConfig::iqt(2.0)),
            Selector::Auto,
            1,
        );

        let answer = client.query(&query_for(&mutated, 3)).expect("post-update");
        assert!(!answer.cached, "the update must start a fresh epoch");
        assert_eq!(answer.solution.selected, direct.solution.selected);
        assert_eq!(
            answer.solution.cinf.to_bits(),
            direct.solution.cinf.to_bits(),
            "n_shards={n_shards}"
        );
        assert_eq!(
            before.solution.selected.len(),
            3,
            "sanity: the pre-update answer existed"
        );

        let stats = client.stats().expect("stats");
        assert_eq!(stats.updates_applied, 3);
        assert_eq!(stats.compactions, 1);
        assert!(stats.flipped_candidates > 0, "the events must flip sites");
        assert_eq!(stats.reloads, 0, "live absorption, not reload");
        assert_eq!(stats.meta.n_users, problem.n_users());
        server.shutdown();
    }
}

/// A malformed batch is rejected all-or-nothing: typed error, counters and
/// answers untouched.
#[test]
fn rejected_batches_change_nothing() {
    let problem = random_problem(92, 30, 10);
    let server = start_live(&problem, 2);
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let baseline = client.query(&query_for(&problem, 2)).expect("baseline");

    // The second event addresses a user that never existed: the insert
    // before it must not land either.
    let bad = vec![
        event("insert", 0, &[Point::new(0.0, 0.0)]),
        event("move", 9999, &[Point::new(1.0, 1.0)]),
    ];
    match client.update(&bad) {
        Err(ServeError::Remote { kind, message }) => {
            assert_eq!(kind, "update:rejected");
            assert!(message.contains("9999"), "{message}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    match client.update(&[event("warp", 0, &[])]) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "update:rejected"),
        other => panic!("expected rejection, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.updates_applied, 0);
    assert_eq!(stats.meta.n_users, problem.n_users());
    let again = client.query(&query_for(&problem, 2)).expect("query again");
    assert_eq!(
        again.solution.cinf.to_bits(),
        baseline.solution.cinf.to_bits()
    );
    server.shutdown();
}

/// A snapshot-serving (non-live) server answers UPDATE with a typed
/// `update:unsupported` error and keeps serving.
#[test]
fn non_live_servers_reject_the_update_verb() {
    let problem = random_problem(93, 25, 8);
    let (snapshot, _) = Snapshot::build_sharded("static", &problem, 2.0, 1, 2);
    let engine = QueryEngine::new(snapshot, 1);
    let server = Server::start(ServerConfig::default(), engine).expect("bind");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");

    match client.update(&[event("insert", 0, &[Point::new(0.0, 0.0)])]) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "update:unsupported"),
        other => panic!("expected unsupported, got {other:?}"),
    }
    client.ping().expect("connection survives");
    server.shutdown();
}
