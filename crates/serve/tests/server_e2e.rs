//! End-to-end exercise of the query server over real loopback sockets:
//! byte-identity of served answers against direct solves, cache hit
//! accounting, admission-control rejection, live stats, snapshot
//! hot-reload, and graceful shutdown that drains admitted connections.

use mc2ls_core::algorithms::{solve_threaded, IqtConfig, Method, Selector};
use mc2ls_core::{Problem, PruneStats, Solution};
use mc2ls_geo::Point;
use mc2ls_influence::{Model, MovingUser, Sigmoid};
use mc2ls_serve::{Client, QueryEngine, QueryRequest, ServeError, Server, ServerConfig, Snapshot};
use rand::prelude::*;
use std::time::Duration;

fn random_problem(seed: u64, n_users: usize, n_cands: usize) -> Problem<Sigmoid> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |r: &mut StdRng| Point::new(r.gen_range(-8.0..8.0), r.gen_range(-8.0..8.0));
    let users = (0..n_users)
        .map(|_| {
            let n = rng.gen_range(1..4);
            MovingUser::new((0..n).map(|_| pt(&mut rng)).collect())
        })
        .collect();
    let facilities = (0..6).map(|_| pt(&mut rng)).collect();
    let candidates = (0..n_cands).map(|_| pt(&mut rng)).collect();
    Problem::new(
        users,
        facilities,
        candidates,
        3,
        0.6,
        Sigmoid::paper_default(),
    )
}

fn start_server(problem: &Problem<Sigmoid>, config: ServerConfig) -> Server {
    let (snapshot, _) = Snapshot::build("e2e", problem, 2.0, 2);
    let engine = QueryEngine::new(snapshot, config.threads);
    Server::start(config, engine).expect("bind loopback")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("connect")
}

fn query_for(problem: &Problem<Sigmoid>, candidates: Option<Vec<u32>>, k: usize) -> QueryRequest {
    QueryRequest {
        candidates,
        k,
        tau: problem.tau,
        block_size: problem.block_size,
        selector: Selector::Auto,
        pf_exact: false,
        model: Model::Cumulative,
    }
}

fn assert_solutions_bit_identical(a: &Solution, b: &Solution, what: &str) {
    assert_eq!(a.selected, b.selected, "{what}: selected ids");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&a.marginal_gains),
        bits(&b.marginal_gains),
        "{what}: marginal gain bits"
    );
    assert_eq!(a.cinf.to_bits(), b.cinf.to_bits(), "{what}: cinf bits");
}

/// Served answers are byte-identical to direct `solve_threaded` runs, at
/// every server thread count, with the cache on and off — and carry
/// default `PruneStats`, the proof that serving ran zero influence-set
/// evaluations.
#[test]
fn served_answers_match_direct_solves_bit_for_bit() {
    let problem = random_problem(71, 70, 18);
    let direct = solve_threaded(
        &problem,
        Method::Iqt(IqtConfig::iqt(2.0)),
        Selector::Auto,
        1,
    );

    for threads in [1usize, 2, 4] {
        for cache_capacity in [0usize, 32] {
            let server = start_server(
                &problem,
                ServerConfig {
                    threads,
                    cache_capacity,
                    workers: 2,
                    ..ServerConfig::default()
                },
            );
            let mut client = connect(&server);
            // Ask twice so the second answer exercises the cache path
            // (when enabled); both must match the direct solve.
            for round in 0..2 {
                let answer = client
                    .query(&query_for(&problem, None, problem.k))
                    .expect("query");
                assert_solutions_bit_identical(
                    &answer.solution,
                    &direct.solution,
                    &format!("t={threads} cache={cache_capacity} round={round}"),
                );
                assert_eq!(answer.prune, PruneStats::default());
                assert_eq!(answer.cached, cache_capacity > 0 && round == 1);
            }
            server.shutdown();
        }
    }
}

/// Subset queries equal a from-scratch solve on the sub-instance.
#[test]
fn subset_queries_match_subinstance_solves() {
    let problem = random_problem(72, 60, 16);
    let server = start_server(&problem, ServerConfig::default());
    let mut client = connect(&server);

    for subset in [vec![0u32, 5, 9, 13], vec![15, 2, 2, 7, 11, 3, 1]] {
        let mut canon = subset.clone();
        canon.sort_unstable();
        canon.dedup();
        let k = 2.min(canon.len());
        let answer = client
            .query(&query_for(&problem, Some(subset), k))
            .expect("subset query");

        let sub_problem = Problem::new(
            problem.users.clone(),
            problem.facilities.clone(),
            canon
                .iter()
                .map(|&c| problem.candidates[c as usize])
                .collect(),
            k,
            problem.tau,
            problem.pf,
        )
        .with_block_size(problem.block_size);
        let direct = solve_threaded(
            &sub_problem,
            Method::Iqt(IqtConfig::iqt(2.0)),
            Selector::Auto,
            1,
        );
        let mapped: Vec<u32> = direct
            .solution
            .selected
            .iter()
            .map(|&l| canon[l as usize])
            .collect();
        assert_eq!(answer.solution.selected, mapped);
        assert_eq!(
            answer.solution.cinf.to_bits(),
            direct.solution.cinf.to_bits()
        );
    }
    server.shutdown();
}

/// Cache accounting: hits/misses are visible in STATS, equivalent query
/// spellings share one cache entry, and ping/stats round-trips work.
#[test]
fn stats_report_cache_and_request_counters() {
    let problem = random_problem(73, 40, 12);
    let server = start_server(
        &problem,
        ServerConfig {
            cache_capacity: 8,
            ..ServerConfig::default()
        },
    );
    let mut client = connect(&server);
    client.ping().expect("ping");

    let first = client
        .query(&query_for(&problem, Some(vec![3, 1, 2]), 2))
        .expect("first");
    assert!(!first.cached);
    // Different spelling, same canonical query → cache hit.
    let second = client
        .query(&query_for(&problem, Some(vec![2, 3, 1, 1]), 2))
        .expect("second");
    assert!(second.cached);
    assert_eq!(first.key_hash, second.key_hash);
    assert_solutions_bit_identical(&first.solution, &second.solution, "cache hit");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.meta.n_users, problem.n_users());
    assert_eq!(stats.meta.n_candidates, problem.n_candidates());
    assert_eq!(stats.meta.tau.to_bits(), problem.tau.to_bits());
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_len, 1);
    assert_eq!(stats.cache_capacity, 8);
    assert!(stats.requests >= 4, "ping + 2 queries + stats");
    assert_eq!(stats.rejected, 0);
    assert!(stats.p50_us <= stats.p99_us);
    server.shutdown();
}

/// Admission control: with one worker busy and a queue bound of one, a
/// third connection is rejected with a typed `busy` error and counted.
#[test]
fn admission_control_rejects_beyond_the_bound() {
    let problem = random_problem(74, 30, 10);
    let server = start_server(
        &problem,
        ServerConfig {
            workers: 1,
            max_pending: 1,
            ..ServerConfig::default()
        },
    );
    // A: served by the only worker (ping proves it was popped).
    let mut a = connect(&server);
    a.ping().expect("ping a");
    // B: admitted, waits in the queue behind A's persistent connection.
    let _b = connect(&server);
    std::thread::sleep(Duration::from_millis(50));
    // C: the queue is full → typed busy rejection.
    let mut c = connect(&server);
    match c.ping() {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "busy"),
        other => panic!("expected busy rejection, got {other:?}"),
    }

    let stats = a.stats().expect("stats");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.queue_depth, 1, "B still waiting");
    server.shutdown();
}

/// Snapshot hot-reload: the engine swaps, the cache clears, and answers
/// afterwards reflect the new snapshot; a bad path is a typed error and
/// leaves the old snapshot serving.
#[test]
fn snapshot_reload_swaps_the_engine_and_clears_the_cache() {
    let old_problem = random_problem(75, 40, 12);
    let new_problem = random_problem(76, 55, 14);
    let dir = std::env::temp_dir().join(format!("mc2ls-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("new.mc2s");
    let (new_snapshot, _) = Snapshot::build("new", &new_problem, 2.0, 1);
    new_snapshot.save(&path).expect("save");

    let server = start_server(
        &old_problem,
        ServerConfig {
            cache_capacity: 8,
            ..ServerConfig::default()
        },
    );
    let mut client = connect(&server);

    // Prime the cache against the old snapshot.
    let q_old = query_for(&old_problem, None, 2);
    client.query(&q_old).expect("old query");
    assert!(client.query(&q_old).expect("old query again").cached);

    // A bad path fails typed and changes nothing.
    match client.reload(&dir.join("absent.mc2s").to_string_lossy()) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "snapshot"),
        other => panic!("expected snapshot error, got {other:?}"),
    }
    assert_eq!(client.stats().expect("stats").meta.name, "e2e");

    // The real reload swaps metadata and empties the cache.
    let message = client.reload(&path.to_string_lossy()).expect("reload");
    assert!(message.contains("new"), "ack message: {message}");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.meta.name, "new");
    assert_eq!(stats.meta.n_users, new_problem.n_users());
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.cache_len, 0, "reload must clear the cache");

    // Answers now come from the new snapshot, bit-identical to a direct
    // solve of the new instance.
    let direct = solve_threaded(
        &new_problem,
        Method::Iqt(IqtConfig::iqt(2.0)),
        Selector::Auto,
        1,
    );
    let answer = client
        .query(&query_for(&new_problem, None, new_problem.k))
        .expect("new query");
    assert!(!answer.cached, "cache was cleared");
    assert_solutions_bit_identical(&answer.solution, &direct.solution, "post-reload");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Mismatched τ or block size are typed remote errors, not wrong answers.
#[test]
fn mismatched_query_parameters_are_typed_errors() {
    let problem = random_problem(77, 25, 8);
    let server = start_server(&problem, ServerConfig::default());
    let mut client = connect(&server);

    let mut bad_tau = query_for(&problem, None, 2);
    bad_tau.tau = 0.5;
    match client.query(&bad_tau) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "query:tau-mismatch"),
        other => panic!("expected tau mismatch, got {other:?}"),
    }

    // `auto` is canonicalised server-side, so probe with a concrete block
    // size that can never equal the snapshot's resolved one.
    let mut bad_block = query_for(&problem, None, 2);
    bad_block.block_size = usize::MAX - 1;
    match client.query(&bad_block) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "query:block-size-mismatch"),
        other => panic!("expected block-size mismatch, got {other:?}"),
    }

    match client.query(&query_for(&problem, None, 99)) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "query:bad-budget"),
        other => panic!("expected bad budget, got {other:?}"),
    }

    // The connection survives error responses.
    client.ping().expect("still alive");
    server.shutdown();
}

/// PROPOSE answers from the loaded snapshot's position blocks: the served
/// proposal is bit-identical to a direct sweep over the instance's raw
/// positions, and bad sweep parameters come back as typed errors.
#[test]
fn propose_serves_the_candidate_sweep_from_the_snapshot() {
    let problem = random_problem(82, 60, 12);
    let server = start_server(&problem, ServerConfig::default());
    let mut client = connect(&server);

    let points: Vec<Point> = problem
        .users
        .iter()
        .flat_map(|u| u.positions().iter().copied())
        .collect();
    let direct = mc2ls_candgen::propose(&points, &mc2ls_candgen::SweepConfig::new(2.0, 4));

    let served = client
        .propose(&mc2ls_serve::ProposeRequest {
            window: 2.0,
            m: 4,
            min_separation: None,
        })
        .expect("propose");
    assert_eq!(served.stats, direct.stats);
    assert_eq!(served.sites.len(), direct.sites.len());
    for (a, b) in served.sites.iter().zip(&direct.sites) {
        assert_eq!(a.center.x.to_bits(), b.center.x.to_bits());
        assert_eq!(a.center.y.to_bits(), b.center.y.to_bits());
        assert_eq!(a.score, b.score);
        assert_eq!(a.anchor, b.anchor);
    }

    match client.propose(&mc2ls_serve::ProposeRequest {
        window: -1.0,
        m: 4,
        min_separation: None,
    }) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "propose:bad-window"),
        other => panic!("expected bad-window rejection, got {other:?}"),
    }
    match client.propose(&mc2ls_serve::ProposeRequest {
        window: 2.0,
        m: 0,
        min_separation: None,
    }) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "propose:bad-count"),
        other => panic!("expected bad-count rejection, got {other:?}"),
    }

    // The connection survives error responses and still answers queries.
    client
        .query(&query_for(&problem, None, 2))
        .expect("query after propose");
    server.shutdown();
}

/// A client-sent Shutdown stops the server; `join` returns once every
/// thread (acceptor + workers) has drained and exited.
#[test]
fn client_shutdown_drains_and_joins() {
    let problem = random_problem(78, 25, 8);
    let server = start_server(
        &problem,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    client.query(&query_for(&problem, None, 2)).expect("query");
    let message = client.shutdown().expect("shutdown ack");
    assert!(message.contains("shutting down"), "{message}");
    // Must return promptly rather than hanging on a live worker.
    server.join();
    // New connections are no longer served.
    std::thread::sleep(Duration::from_millis(20));
    let refused = std::net::TcpStream::connect(&addr).is_err();
    assert!(refused, "listener should be closed after shutdown");
}

/// A connection that never completes a request is torn down at the
/// per-request deadline with a `timeout` error — the worker is freed and
/// live clients are still served.
#[test]
fn stalled_connections_hit_the_request_deadline() {
    let problem = random_problem(81, 25, 8);
    let server = start_server(
        &problem,
        ServerConfig {
            workers: 1,
            poll_interval: Duration::from_millis(10),
            idle_timeout: Duration::from_millis(120),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr().to_string();

    // Open a connection and send nothing.
    let mut stalled = std::net::TcpStream::connect(&addr).expect("connect");
    let notice: mc2ls_serve::Response = mc2ls_serve::protocol::recv_message(&mut stalled)
        .expect("deadline notice")
        .expect("a frame, not EOF");
    match notice {
        mc2ls_serve::Response::Error { kind, .. } => assert_eq!(kind, "timeout"),
        other => panic!("expected a timeout error, got {other:?}"),
    }
    // After the notice the server closes the connection.
    let eof = mc2ls_serve::protocol::read_frame(&mut stalled).expect("clean close");
    assert!(
        eof.is_none(),
        "connection should be closed after the notice"
    );

    // The freed worker serves a live client normally.
    let mut client = connect(&server);
    client.ping().expect("worker available again");
    server.shutdown();
}
