//! The `.mc2s` container must be a faithful, tamper-evident store: every
//! snapshot round-trips bit-identically, and **any** single-byte
//! corruption, truncation, or version skew is a typed [`SnapshotError`] —
//! never a panic, never a silently different snapshot.

use mc2ls_core::Problem;
use mc2ls_geo::Point;
use mc2ls_influence::{MovingUser, Sigmoid};
use mc2ls_serve::{ShardArtifacts, Snapshot, SnapshotError};
use proptest::prelude::*;
use rand::prelude::*;

/// A randomised but always-valid instance.
fn random_problem(seed: u64, n_users: usize, n_cands: usize, n_facs: usize) -> Problem<Sigmoid> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |r: &mut StdRng| Point::new(r.gen_range(-10.0..10.0), r.gen_range(-10.0..10.0));
    let users = (0..n_users)
        .map(|_| {
            let n = rng.gen_range(1..5);
            MovingUser::new((0..n).map(|_| pt(&mut rng)).collect())
        })
        .collect();
    let facilities = (0..n_facs).map(|_| pt(&mut rng)).collect();
    let candidates = (0..n_cands).map(|_| pt(&mut rng)).collect();
    let k = 1 + (seed as usize) % n_cands;
    let tau = 0.3 + (seed % 5) as f64 * 0.1;
    Problem::new(
        users,
        facilities,
        candidates,
        k,
        tau,
        Sigmoid::paper_default(),
    )
}

fn assert_snapshots_equal(a: &Snapshot, b: &Snapshot) {
    assert_eq!(a.meta, b.meta);
    assert_eq!(a.shards, b.shards);
    // IQuadTree carries no PartialEq (it holds runtime caches); its codec
    // is canonical, so byte equality of re-encodes is the right check.
    assert_eq!(a.tree.to_bytes(), b.tree.to_bytes());
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(12))]

    /// Round trip: decode(encode(s)) == s and encoding is canonical.
    #[test]
    fn container_round_trips_bit_identically(
        seed in 0u64..10_000,
        n_users in 1usize..40,
        n_cands in 1usize..15,
        n_facs in 0usize..6,
    ) {
        let problem = random_problem(seed, n_users, n_cands, n_facs);
        let (snap, _stats) = Snapshot::build("prop", &problem, 2.0, 1 + (seed % 4) as usize);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("round trip");
        assert_snapshots_equal(&snap, &back);
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(3))]

    /// Tamper evidence: flipping any single byte fails with a typed error.
    /// (Section payloads are CRC-guarded; headers are validated field by
    /// field.)
    #[test]
    fn any_single_byte_flip_is_detected(seed in 0u64..10_000) {
        let problem = random_problem(seed, 8, 4, 2);
        let (snap, _) = Snapshot::build("prop", &problem, 2.0, 1);
        let bytes = snap.to_bytes();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            prop_assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "flip at byte {} of {} went undetected", pos, bytes.len()
            );
        }
    }

    /// Truncation at every prefix length is a typed error.
    #[test]
    fn every_truncation_is_detected(seed in 0u64..10_000) {
        let problem = random_problem(seed, 6, 3, 1);
        let (snap, _) = Snapshot::build("prop", &problem, 2.0, 1);
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut={}", cut);
        }
    }
}

#[test]
fn version_and_magic_skew_are_specific_errors() {
    let problem = random_problem(1, 5, 3, 1);
    let (snap, _) = Snapshot::build("skew", &problem, 2.0, 1);
    let bytes = snap.to_bytes();

    let mut wrong_version = bytes.clone();
    wrong_version[4] = 99;
    assert!(matches!(
        Snapshot::from_bytes(&wrong_version),
        Err(SnapshotError::UnsupportedVersion(99))
    ));

    let mut wrong_magic = bytes.clone();
    wrong_magic[..4].copy_from_slice(b"ELF\x7f");
    assert!(matches!(
        Snapshot::from_bytes(&wrong_magic),
        Err(SnapshotError::BadMagic(_))
    ));

    // Growing a section's declared length runs the reader off the end.
    let mut grown = bytes;
    grown[12] = grown[12].wrapping_add(1);
    assert!(Snapshot::from_bytes(&grown).is_err());
}

#[test]
fn giant_declared_lengths_do_not_allocate_or_panic() {
    let problem = random_problem(2, 5, 3, 1);
    let (snap, _) = Snapshot::build("len", &problem, 2.0, 1);
    let mut bytes = snap.to_bytes();
    // The META section length field lives at offset 12 (magic 4 + version
    // 4 + tag 4); claim u64::MAX bytes.
    bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(Snapshot::from_bytes(&bytes).is_err());
}

#[test]
fn artifacts_that_disagree_are_rejected() {
    // Build two snapshots over differently sized instances and splice the
    // ISET section of one into the container of the other: every section
    // CRC still verifies, so only the cross-artifact check can catch it.
    let (a, _) = Snapshot::build("a", &random_problem(3, 6, 3, 1), 2.0, 1);
    let (b, _) = Snapshot::build("b", &random_problem(4, 9, 3, 1), 2.0, 1);
    let spliced = Snapshot {
        meta: a.meta.clone(),
        shards: vec![ShardArtifacts {
            sets: b.shards[0].sets.clone(),
            inverted: a.shards[0].inverted.clone(),
            blocks: a.shards[0].blocks.clone(),
        }],
        tree: a.tree.clone(),
    };
    let bytes = spliced.to_bytes();
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::Inconsistent(_))
    ));
}
