//! Sharded serving must be invisible in the answers: over real loopback
//! sockets, a server holding a sharded snapshot returns answers
//! byte-identical to a direct `solve_threaded` run at every shard count,
//! with the cache on and off, running **zero** influence-set evaluations.
//! Also covers request batching (concurrent identical queries coalesce
//! onto one selection pass) and delta hot-reload end to end.

use mc2ls_core::algorithms::{solve_threaded, IqtConfig, Method, Selector};
use mc2ls_core::{Problem, PruneStats, Solution};
use mc2ls_geo::Point;
use mc2ls_influence::{Model, MovingUser, Sigmoid};
use mc2ls_serve::{delta, Client, QueryEngine, QueryRequest, Server, ServerConfig, Snapshot};
use rand::prelude::*;
use std::time::Duration;

fn random_problem(seed: u64, n_users: usize, n_cands: usize, tau: f64) -> Problem<Sigmoid> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |r: &mut StdRng| Point::new(r.gen_range(-8.0..8.0), r.gen_range(-8.0..8.0));
    let users = (0..n_users)
        .map(|_| {
            let n = rng.gen_range(1..4);
            MovingUser::new((0..n).map(|_| pt(&mut rng)).collect())
        })
        .collect();
    let facilities = (0..6).map(|_| pt(&mut rng)).collect();
    let candidates = (0..n_cands).map(|_| pt(&mut rng)).collect();
    Problem::new(
        users,
        facilities,
        candidates,
        3,
        tau,
        Sigmoid::paper_default(),
    )
}

fn start_sharded(problem: &Problem<Sigmoid>, shards: usize, config: ServerConfig) -> Server {
    let (snapshot, _) = Snapshot::build_sharded("loopback", problem, 2.0, 2, shards);
    assert_eq!(snapshot.n_shards(), shards.min(problem.n_users()));
    let engine = QueryEngine::new(snapshot, config.threads);
    Server::start(config, engine).expect("bind loopback")
}

fn query_for(problem: &Problem<Sigmoid>, candidates: Option<Vec<u32>>, k: usize) -> QueryRequest {
    QueryRequest {
        candidates,
        k,
        tau: problem.tau,
        block_size: problem.block_size,
        selector: Selector::Auto,
        pf_exact: false,
        model: Model::Cumulative,
    }
}

fn assert_solutions_bit_identical(a: &Solution, b: &Solution, what: &str) {
    assert_eq!(a.selected, b.selected, "{what}: selected ids");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&a.marginal_gains),
        bits(&b.marginal_gains),
        "{what}: marginal gain bits"
    );
    assert_eq!(a.cinf.to_bits(), b.cinf.to_bits(), "{what}: cinf bits");
}

/// The headline equivalence: shards {1, 2, 4} × cache {off, on}, full-set
/// and subset queries, all byte-identical to the direct solve, all with
/// default `PruneStats` (no influence evaluation happened server-side).
#[test]
fn sharded_answers_are_byte_identical_to_direct_solves() {
    let problem = random_problem(91, 72, 16, 0.6);
    let direct = solve_threaded(
        &problem,
        Method::Iqt(IqtConfig::iqt(2.0)),
        Selector::Auto,
        1,
    );

    for shards in [1usize, 2, 4] {
        for cache_capacity in [0usize, 32] {
            let server = start_sharded(
                &problem,
                shards,
                ServerConfig {
                    threads: 2,
                    cache_capacity,
                    workers: 2,
                    ..ServerConfig::default()
                },
            );
            let mut client = Client::connect(&server.addr().to_string()).expect("connect");
            for round in 0..2 {
                let answer = client
                    .query(&query_for(&problem, None, problem.k))
                    .expect("query");
                let what = format!("shards={shards} cache={cache_capacity} round={round}");
                assert_solutions_bit_identical(&answer.solution, &direct.solution, &what);
                assert_eq!(answer.prune, PruneStats::default(), "{what}");
                assert_eq!(answer.gather.shards as usize, shards, "{what}");
                assert!(answer.gather.shared_epoch, "{what}: epoch matrix shared");
                assert_eq!(answer.cached, cache_capacity > 0 && round == 1, "{what}");
            }

            // A subset query through the same sharded plan.
            let subset = vec![11u32, 3, 7, 3, 14, 0];
            let mut canon = subset.clone();
            canon.sort_unstable();
            canon.dedup();
            let answer = client
                .query(&query_for(&problem, Some(subset), 2))
                .expect("subset query");
            let sub_problem = Problem::new(
                problem.users.clone(),
                problem.facilities.clone(),
                canon
                    .iter()
                    .map(|&c| problem.candidates[c as usize])
                    .collect(),
                2,
                problem.tau,
                problem.pf,
            )
            .with_block_size(problem.block_size);
            let sub_direct = solve_threaded(
                &sub_problem,
                Method::Iqt(IqtConfig::iqt(2.0)),
                Selector::Auto,
                1,
            );
            let mapped: Vec<u32> = sub_direct
                .solution
                .selected
                .iter()
                .map(|&l| canon[l as usize])
                .collect();
            assert_eq!(answer.solution.selected, mapped, "shards={shards} subset");
            assert_eq!(
                answer.solution.cinf.to_bits(),
                sub_direct.solution.cinf.to_bits(),
                "shards={shards} subset cinf"
            );
            server.shutdown();
        }
    }
}

/// Request batching: concurrent identical queries inside the coalesce
/// window share one selection pass. The joiners' answers are the leader's,
/// and the `coalesced` counter proves they never ran their own.
#[test]
fn concurrent_identical_queries_coalesce() {
    let problem = random_problem(92, 60, 14, 0.6);
    let server = start_sharded(
        &problem,
        2,
        ServerConfig {
            workers: 6,
            threads: 1,
            cache_capacity: 0, // joiners must come from the flight, not the cache
            coalesce_window: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr().to_string();

    let n_clients = 4;
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|_| {
                let addr = addr.clone();
                let q = query_for(&problem, None, problem.k);
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client.query(&q).expect("coalesced query")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    for (i, answer) in answers.iter().enumerate() {
        assert_solutions_bit_identical(
            &answer.solution,
            &answers[0].solution,
            &format!("client {i}"),
        );
    }
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queries, n_clients as u64);
    assert!(
        stats.coalesced >= 1,
        "expected at least one coalesced query, stats: {stats:?}"
    );
    assert_eq!(stats.shards, 2);
    server.shutdown();
}

/// Delta hot-reload end to end: serve a base snapshot, RELOAD a `.mc2d`
/// delta file, and verify the server now answers for the target instance
/// — bit-identical to its direct solve — with `delta_reloads` counted.
#[test]
fn delta_reload_swaps_to_the_patched_snapshot() {
    let base_problem = random_problem(93, 40, 12, 0.5);
    let target_problem = random_problem(93, 40, 12, 0.7);
    let (base_snap, _) = Snapshot::build_sharded("base", &base_problem, 2.0, 1, 2);
    let (target_snap, _) = Snapshot::build_sharded("target", &target_problem, 2.0, 1, 2);
    let base_bytes = base_snap.to_bytes();
    let target_bytes = target_snap.to_bytes();
    let patch = delta::diff(&base_bytes, &target_bytes).expect("diff");
    assert!(patch.len() < target_bytes.len(), "delta should be smaller");

    let dir = std::env::temp_dir().join(format!("mc2ls-sharded-loopback-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let patch_path = dir.join("update.mc2d");
    delta::save(&patch, &patch_path).expect("save delta");

    let engine = QueryEngine::new(base_snap, 1);
    let server = Server::start(ServerConfig::default(), engine).expect("bind");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    assert_eq!(client.stats().expect("stats").meta.name, "base");

    let message = client
        .reload(&patch_path.to_string_lossy())
        .expect("delta reload");
    assert!(message.contains("patched via delta"), "ack: {message}");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.meta.name, "target");
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.delta_reloads, 1);

    let direct = solve_threaded(
        &target_problem,
        Method::Iqt(IqtConfig::iqt(2.0)),
        Selector::Auto,
        1,
    );
    let answer = client
        .query(&query_for(&target_problem, None, target_problem.k))
        .expect("post-reload query");
    assert_solutions_bit_identical(&answer.solution, &direct.solution, "post-delta-reload");

    // A second RELOAD of the same delta no longer applies (the base
    // changed) and must leave the target serving.
    let err = client.reload(&patch_path.to_string_lossy());
    assert!(err.is_err(), "stale delta must not re-apply");
    assert_eq!(client.stats().expect("stats").meta.name, "target");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
