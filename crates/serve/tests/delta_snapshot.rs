//! Delta snapshots must be a pure transport optimisation: applying a
//! chain of deltas over a base container yields the target container
//! **bit-for-bit**, and any corrupted delta — byte flip or truncation —
//! is a typed [`SnapshotError`], never a panic and never a silently
//! different snapshot.

use mc2ls_core::Problem;
use mc2ls_geo::Point;
use mc2ls_influence::{MovingUser, Sigmoid};
use mc2ls_serve::{delta, Snapshot, SnapshotError};
use proptest::prelude::*;
use rand::prelude::*;

/// A randomised but always-valid instance.
fn random_problem(seed: u64, n_users: usize, n_cands: usize, tau: f64) -> Problem<Sigmoid> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |r: &mut StdRng| Point::new(r.gen_range(-9.0..9.0), r.gen_range(-9.0..9.0));
    let users = (0..n_users)
        .map(|_| {
            let n = rng.gen_range(1..4);
            MovingUser::new((0..n).map(|_| pt(&mut rng)).collect())
        })
        .collect();
    let facilities = (0..4).map(|_| pt(&mut rng)).collect();
    let candidates = (0..n_cands).map(|_| pt(&mut rng)).collect();
    Problem::new(
        users,
        facilities,
        candidates,
        2,
        tau,
        Sigmoid::paper_default(),
    )
}

fn container(seed: u64, n_users: usize, n_cands: usize, tau: f64, shards: usize) -> Vec<u8> {
    let problem = random_problem(seed, n_users, n_cands, tau);
    let (snap, _) = Snapshot::build_sharded("delta-chain", &problem, 2.0, 1, shards);
    snap.to_bytes()
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(8))]

    /// A chain base → v1 → v2 of deltas, applied in order, reproduces the
    /// final full container bit-for-bit, and each patched intermediate is
    /// itself a fully decodable snapshot.
    #[test]
    fn delta_chains_reproduce_full_snapshots_bit_for_bit(
        seed in 0u64..10_000,
        n_users in 4usize..24,
        n_cands in 2usize..8,
        shards in 1usize..4,
    ) {
        let base = container(seed, n_users, n_cands, 0.5, shards);
        // Same instance shape, different τ: META and influence sections
        // move, position blocks and the tree stay put.
        let v1 = container(seed, n_users, n_cands, 0.6, shards);
        // A different instance entirely (same shard count): every section
        // changes.
        let v2 = container(seed.wrapping_add(1), n_users, n_cands, 0.6, shards);

        let d1 = delta::diff(&base, &v1).expect("diff base→v1");
        let d2 = delta::diff(&v1, &v2).expect("diff v1→v2");
        prop_assert!(delta::is_delta(&d1) && delta::is_delta(&d2));
        // The τ-only delta must beat shipping the whole container.
        prop_assert!(d1.len() < v1.len(), "delta {} vs full {}", d1.len(), v1.len());

        let p1 = delta::apply(&base, &d1).expect("apply d1");
        prop_assert_eq!(&p1, &v1, "patched v1 differs");
        Snapshot::from_bytes(&p1).expect("patched v1 decodes");

        let p2 = delta::apply(&p1, &d2).expect("apply d2");
        prop_assert_eq!(&p2, &v2, "patched v2 differs");
        Snapshot::from_bytes(&p2).expect("patched v2 decodes");

        // Out-of-order application is caught by the base fingerprint.
        prop_assert!(matches!(
            delta::apply(&base, &d2),
            Err(SnapshotError::DeltaBaseMismatch)
        ));
    }

    /// Corruption: every truncation of a delta is a typed error, and any
    /// single-byte flip either fails to apply or produces a container
    /// that fails full validation — a tampered delta can never smuggle a
    /// silently different snapshot past the reload path.
    #[test]
    fn corrupted_deltas_are_rejected_with_typed_errors(seed in 0u64..10_000) {
        let base = container(seed, 8, 4, 0.5, 2);
        let target = container(seed, 8, 4, 0.7, 2);
        let d = delta::diff(&base, &target).expect("diff");

        for cut in 0..d.len() {
            prop_assert!(delta::apply(&base, &d[..cut]).is_err(), "cut={}", cut);
        }
        for pos in 0..d.len() {
            let mut bad = d.clone();
            bad[pos] ^= 0x01;
            // Every delta byte is load-bearing (fingerprint, framing, or
            // verbatim frame bytes), so a flip must either fail to apply
            // or yield a splice the container's own CRC/shape validation
            // rejects — the reload path always re-validates.
            let survived = match delta::apply(&base, &bad) {
                Err(_) => false,
                Ok(patched) => Snapshot::from_bytes(&patched).is_ok(),
            };
            prop_assert!(!survived, "flip at byte {} of {} went undetected", pos, d.len());
        }
    }
}
