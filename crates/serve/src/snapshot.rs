//! The `.mc2s` snapshot container: every index artifact the query engine
//! needs, persisted in one versioned, checksummed, little-endian file —
//! split into per-user-shard section groups so the serving layer can
//! scatter work across shards and ship deltas at section granularity.
//!
//! # Format (version 2)
//!
//! ```text
//! magic    [u8; 4] = b"MC2S"
//! version  u32     = 2
//! META section                         instance metadata + shard manifest
//! per shard s in 0..n_shards, fixed order:
//!     ISET section                     shard-local InfluenceSets CSR
//!     IINV section                     shard-local InvertedIndex CSR
//!     PBLK section                     shard-local PositionBlocks SoA
//! IQTR section                         the global IQuad-tree
//! ```
//!
//! Every section is framed identically:
//!
//! ```text
//! tag      [u8; 4]
//! len      u64            payload length in bytes
//! crc      u32            CRC-32 (IEEE) of the payload
//! payload  [u8; len]      artifact codec output
//! ```
//!
//! Every scalar is little-endian (the workspace codec convention, see
//! `mc2ls_geo::codec`). The META payload carries the **shard manifest**
//! (the user-id boundary vector, see [`mc2ls_core::shard::shard_starts`])
//! so a reader learns the section count from META alone, plus the
//! *resolved* verification block size so queries using the auto sentinel
//! canonicalise without decoding PBLK. Shard sections reuse the v1 tags;
//! the owning shard is implied by position. Decoding verifies the magic,
//! the version, each section's tag/CRC, each artifact's own invariants,
//! and finally that the artifacts agree with each other on the instance
//! shape — any violation is a typed [`SnapshotError`], never a panic.
//!
//! Per-section CRC framing is what makes **delta snapshots**
//! ([`crate::delta`]) safe: a delta splices whole frames, and every splice
//! is re-verified by the same checks a full decode runs.

use crate::error::SnapshotError;
use mc2ls_core::algorithms::{influence_sets_threaded, IqtConfig, Method};
use mc2ls_core::shard::{shard_starts, split_sets};
use mc2ls_core::{InfluenceSets, InvertedIndex, Problem, PruneStats};
use mc2ls_geo::codec::crc32;
use mc2ls_geo::{ByteReader, ByteWriter, CodecError};
use mc2ls_index::IQuadTree;
use mc2ls_influence::{auto_block_size, resolve_block_size, Model, PositionBlocks, Sigmoid};
use std::ops::Range;

/// File magic: "MC2S".
pub const MAGIC: [u8; 4] = *b"MC2S";
/// Current container version.
pub const VERSION: u32 = 2;
/// Container header length (magic + version) preceding the first section.
pub(crate) const HEADER_LEN: usize = 8;
/// Section frame header length (tag + len + crc) preceding each payload.
pub(crate) const FRAME_HEADER_LEN: usize = 16;

/// Maps a section tag to its human name for error reporting.
pub(crate) fn section_name(tag: [u8; 4]) -> &'static str {
    match &tag {
        b"META" => "META",
        b"ISET" => "ISET",
        b"IINV" => "IINV",
        b"PBLK" => "PBLK",
        b"IQTR" => "IQTR",
        _ => "unknown",
    }
}

/// One CRC-verified section located inside a container byte buffer.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// The four tag bytes.
    pub tag: [u8; 4],
    /// Byte range of the whole frame (header through payload).
    pub frame: Range<usize>,
    /// Byte range of the payload.
    pub payload: Range<usize>,
}

/// Walks the container framing: verifies the magic, the version, and every
/// section's CRC, returning each section's location. Decodes **no**
/// artifact payloads — this is the shared skeleton under full decode
/// ([`Snapshot::from_bytes`]), zero-copy load ([`crate::view`]) and delta
/// splicing ([`crate::delta`]).
pub(crate) fn walk_frames(bytes: &[u8]) -> Result<Vec<Frame>, SnapshotError> {
    let container = |source| SnapshotError::Codec {
        section: "container",
        source,
    };
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4).map_err(container)?;
    if magic != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(magic);
        return Err(SnapshotError::BadMagic(m));
    }
    let version = r.get_u32().map_err(container)?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }

    let mut frames = Vec::new();
    while r.remaining() > 0 {
        if r.remaining() < FRAME_HEADER_LEN {
            return Err(SnapshotError::TrailingData(r.remaining()));
        }
        let start = r.position();
        let mut tag = [0u8; 4];
        tag.copy_from_slice(r.take(4).map_err(container)?);
        let len = r.get_u64().map_err(container)?;
        let stored = r.get_u32().map_err(container)?;
        let claimed = usize::try_from(len).map_err(|_| {
            container(CodecError::BadLength {
                what: "section length",
                claimed: len,
            })
        })?;
        let payload_start = r.position();
        let payload = r.take(claimed).map_err(container)?;
        let computed = crc32(payload);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch {
                section: section_name(tag),
                stored,
                computed,
            });
        }
        frames.push(Frame {
            tag,
            frame: start..r.position(),
            payload: payload_start..r.position(),
        });
    }
    Ok(frames)
}

/// The section tag the fixed v2 layout expects at position `i` of a
/// container holding `n_sections` sections.
pub(crate) fn expected_tag(i: usize, n_sections: usize) -> &'static str {
    if i == 0 {
        "META"
    } else if i + 1 == n_sections {
        "IQTR"
    } else {
        ["ISET", "IINV", "PBLK"][(i - 1) % 3]
    }
}

/// Walks the frames and checks the tag sequence against the v2 layout
/// (META first, whole shard trios, IQTR last) without decoding any
/// payload.
pub(crate) fn check_layout(bytes: &[u8]) -> Result<Vec<Frame>, SnapshotError> {
    let frames = walk_frames(bytes)?;
    if frames.is_empty() || frames[0].tag != *b"META" {
        return Err(SnapshotError::SectionOrder {
            expected: "META",
            found: frames.first().map_or([0; 4], |f| f.tag),
        });
    }
    // n_sections = 2 + 3 * n_shards, so the remainder after META and IQTR
    // must fall into whole shard trios.
    if frames.len() < 2 || (frames.len() - 2) % 3 != 0 {
        return Err(SnapshotError::Inconsistent(
            "section count is not META + shard groups + IQTR",
        ));
    }
    for (i, frame) in frames.iter().enumerate() {
        let expected = expected_tag(i, frames.len());
        if section_name(frame.tag) != expected {
            return Err(SnapshotError::SectionOrder {
                expected,
                found: frame.tag,
            });
        }
    }
    Ok(frames)
}

/// Instance-shape metadata pinned into the snapshot so the server can
/// validate queries (τ and block size must match after canonicalisation)
/// and report itself over `STATS` without touching the heavyweight
/// artifacts. Carries the shard manifest: readers learn the section count
/// from META alone.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SnapshotMeta {
    /// Free-form snapshot name (e.g. the preset it was built from).
    pub name: String,
    /// `|Ω|` — number of moving users.
    pub n_users: usize,
    /// `|C|` — number of candidate locations.
    pub n_candidates: usize,
    /// `|F|` — number of competitor facilities.
    pub n_facilities: usize,
    /// Influence threshold τ the influence sets were computed with.
    pub tau: f64,
    /// Verification block size the instance was *configured* with (may be
    /// the auto or plain sentinel).
    pub block_size: usize,
    /// Sigmoid ρ parameter of the probability function.
    pub rho: f64,
    /// Leaf-square diagonal `d̂` (km) of the persisted IQuad-tree.
    pub leaf_diagonal: f64,
    /// Default selection budget `k` for queries that do not override it.
    pub default_k: usize,
    /// Shard manifest: user-id boundaries, `shard_starts[s]..shard_starts
    /// [s + 1]` being shard `s`'s global user range (so `len - 1` shards,
    /// starting at 0 and ending at `n_users`).
    pub shard_starts: Vec<u32>,
    /// The block size PBLK sections actually store — what the auto
    /// sentinel resolved to at build time. Queries asking for `auto`
    /// canonicalise to this value.
    pub resolved_block_size: usize,
    /// The competition model the snapshot was built to serve. Appended to
    /// the META wire format after every older field: snapshots written
    /// before the field existed decode as [`Model::Cumulative`] (the only
    /// model that existed then), and queries requesting a different model
    /// are rejected with a typed error rather than silently reweighted.
    pub model: Model,
}

impl SnapshotMeta {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(96 + self.name.len() + 4 * self.shard_starts.len());
        w.put_str(&self.name);
        w.put_len(self.n_users);
        w.put_len(self.n_candidates);
        w.put_len(self.n_facilities);
        w.put_f64(self.tau);
        w.put_len(self.block_size);
        w.put_f64(self.rho);
        w.put_f64(self.leaf_diagonal);
        w.put_len(self.default_k);
        w.put_u32_slice(&self.shard_starts);
        w.put_len(self.resolved_block_size);
        w.put_u32(self.model.id());
        w.into_bytes()
    }

    pub(crate) fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let name = r.get_string("SnapshotMeta.name")?;
        let n_users = read_usize(&mut r, "SnapshotMeta.n_users")?;
        let n_candidates = read_usize(&mut r, "SnapshotMeta.n_candidates")?;
        let n_facilities = read_usize(&mut r, "SnapshotMeta.n_facilities")?;
        let tau = r.get_f64()?;
        let block_size = read_usize(&mut r, "SnapshotMeta.block_size")?;
        let rho = r.get_f64()?;
        let leaf_diagonal = r.get_f64()?;
        let default_k = read_usize(&mut r, "SnapshotMeta.default_k")?;
        let shard_starts = r.get_u32_vec("SnapshotMeta.shard_starts")?;
        let resolved_block_size = read_usize(&mut r, "SnapshotMeta.resolved_block_size")?;
        // The model id trails every pre-model field: absent (older v2
        // writer) means the only model that writer knew, cumulative.
        let model = if r.remaining() > 0 {
            Model::from_id(r.get_u32()?)
                .ok_or(CodecError::Invalid("unknown competition model id"))?
        } else {
            Model::Cumulative
        };
        r.expect_end()?;
        if !(tau > 0.0 && tau < 1.0) {
            return Err(CodecError::Invalid("tau must lie in (0, 1)"));
        }
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(CodecError::Invalid("rho must lie in (0, 1]"));
        }
        if !(leaf_diagonal > 0.0 && leaf_diagonal.is_finite()) {
            return Err(CodecError::Invalid("leaf diagonal must be positive"));
        }
        if default_k == 0 || default_k > n_candidates {
            return Err(CodecError::Invalid("default_k out of range"));
        }
        if shard_starts.len() < 2
            || shard_starts[0] != 0
            || shard_starts.windows(2).any(|w| w[0] > w[1])
            || shard_starts[shard_starts.len() - 1] as usize != n_users
        {
            return Err(CodecError::Invalid(
                "shard manifest is not a boundary vector over the users",
            ));
        }
        if resolved_block_size == 0 {
            return Err(CodecError::Invalid("resolved block size must be positive"));
        }
        Ok(SnapshotMeta {
            name,
            n_users,
            n_candidates,
            n_facilities,
            tau,
            block_size,
            rho,
            leaf_diagonal,
            default_k,
            shard_starts,
            resolved_block_size,
            model,
        })
    }

    /// Number of user shards in the manifest.
    pub fn n_shards(&self) -> usize {
        self.shard_starts.len().saturating_sub(1)
    }

    /// Total section count of a container with this manifest.
    pub fn n_sections(&self) -> usize {
        2 + 3 * self.n_shards()
    }
}

fn read_usize(r: &mut ByteReader<'_>, what: &'static str) -> Result<usize, CodecError> {
    let v = r.get_u64()?;
    usize::try_from(v).map_err(|_| CodecError::BadLength { what, claimed: v })
}

/// One user shard's persisted artifacts: the shard-local influence CSR
/// (users rebased to `0..len`), its inverted index, and the shard's slice
/// of the blocked position layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardArtifacts {
    /// Forward influence CSR `c → Ω_c ∩ shard` (local user ids).
    pub sets: InfluenceSets,
    /// Inverted CSR `local o → {c : o ∈ Ω_c}`.
    pub inverted: InvertedIndex,
    /// Blocked SoA position layout of the shard's user trajectories.
    pub blocks: PositionBlocks,
}

/// Everything the query engine serves from: the instance metadata, the
/// per-shard index artifacts and the global IQuad-tree.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Instance-shape metadata (validated against the artifacts on load).
    pub meta: SnapshotMeta,
    /// Per-user-shard artifacts, in manifest order.
    pub shards: Vec<ShardArtifacts>,
    /// The IQuad-tree over all users.
    pub tree: IQuadTree,
}

impl Snapshot {
    /// Builds a single-shard snapshot — [`Snapshot::build_sharded`] with
    /// one shard.
    ///
    /// # Panics
    /// Panics when `threads == 0` (programming error, mirroring
    /// [`influence_sets_threaded`]).
    pub fn build(
        name: &str,
        problem: &Problem<Sigmoid>,
        leaf_diagonal: f64,
        threads: usize,
    ) -> (Snapshot, PruneStats) {
        Snapshot::build_sharded(name, problem, leaf_diagonal, threads, 1)
    }

    /// Builds every artifact from `problem` across `threads` workers using
    /// the paper's recommended `IQT` influence pipeline, partitioning the
    /// user space into `n_shards` balanced contiguous shards (clamped to
    /// `1..=n_users`). Returns the snapshot plus the pruning counters of
    /// the build (so callers can compare a later load against the work it
    /// saved).
    ///
    /// Sharding never changes answers: the influence phase runs unsharded
    /// and is then split losslessly ([`split_sets`]), and the
    /// scatter/gather selection is byte-identical at any shard count.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn build_sharded(
        name: &str,
        problem: &Problem<Sigmoid>,
        leaf_diagonal: f64,
        threads: usize,
        n_shards: usize,
    ) -> (Snapshot, PruneStats) {
        let method = Method::Iqt(IqtConfig::iqt(leaf_diagonal));
        let (sets, stats, _times) = influence_sets_threaded(problem, method, threads);
        // PBLK always stores real blocks: the auto sentinel resolves via
        // the density probe, and the plain sentinel (which disables blocked
        // verification locally but has no meaning inside a snapshot) falls
        // back to the same auto-tuned size. META keeps the *configured*
        // value so queries validate against what the user asked for, plus
        // the resolved value so `auto` queries canonicalise.
        let resolved = resolve_block_size(&problem.users, problem.block_size)
            .unwrap_or_else(|| auto_block_size(&problem.users));
        let starts = shard_starts(problem.n_users(), n_shards);
        let shards: Vec<ShardArtifacts> = split_sets(&sets, &starts)
            .into_iter()
            .enumerate()
            .map(|(s, local)| {
                let inverted = InvertedIndex::build(&local, threads);
                let users = &problem.users[starts[s] as usize..starts[s + 1] as usize];
                let blocks = PositionBlocks::build(users, resolved);
                ShardArtifacts {
                    sets: local,
                    inverted,
                    blocks,
                }
            })
            .collect();
        let tree = IQuadTree::build(&problem.users, &problem.pf, problem.tau, leaf_diagonal);
        let meta = SnapshotMeta {
            name: name.to_string(),
            n_users: problem.n_users(),
            n_candidates: problem.n_candidates(),
            n_facilities: problem.n_facilities(),
            tau: problem.tau,
            block_size: problem.block_size,
            rho: problem.pf.rho,
            leaf_diagonal,
            default_k: problem.k,
            shard_starts: starts,
            resolved_block_size: resolved,
            model: problem.model,
        };
        (Snapshot { meta, shards, tree }, stats)
    }

    /// Assembles a snapshot from **already-computed** influence sets — the
    /// live-update path: after an [`mc2ls_core::UpdateEngine`] compaction
    /// the sets are current, so re-deriving them (the expensive influence
    /// phase of [`Snapshot::build_sharded`]) would be pure waste. This
    /// re-shards the sets, rebuilds the per-shard inverted/position
    /// artifacts and the IQuad-tree, and refreshes the instance-shape
    /// fields of `meta` (`n_users`, `n_candidates`, `shard_starts`,
    /// `resolved_block_size`); every configuration field (`name`, `tau`,
    /// `block_size`, `rho`, `leaf_diagonal`, `default_k`, `n_facilities`)
    /// is taken from the template as-is.
    ///
    /// Zero PF verification evaluations run here; the IQuad-tree build only
    /// derives its η tables from the PF.
    pub fn assemble(
        mut meta: SnapshotMeta,
        users: &[mc2ls_influence::MovingUser],
        pf: &Sigmoid,
        sets: &InfluenceSets,
        threads: usize,
        n_shards: usize,
    ) -> Snapshot {
        assert_eq!(sets.n_users(), users.len(), "sets/users shape mismatch");
        let resolved =
            resolve_block_size(users, meta.block_size).unwrap_or_else(|| auto_block_size(users));
        let starts = shard_starts(users.len(), n_shards);
        let shards: Vec<ShardArtifacts> = split_sets(sets, &starts)
            .into_iter()
            .enumerate()
            .map(|(s, local)| {
                let inverted = InvertedIndex::build(&local, threads);
                let slice = &users[starts[s] as usize..starts[s + 1] as usize];
                let blocks = PositionBlocks::build(slice, resolved);
                ShardArtifacts {
                    sets: local,
                    inverted,
                    blocks,
                }
            })
            .collect();
        let tree = IQuadTree::build(users, pf, meta.tau, meta.leaf_diagonal);
        meta.n_users = users.len();
        meta.n_candidates = sets.n_candidates();
        meta.shard_starts = starts;
        meta.resolved_block_size = resolved;
        Snapshot { meta, shards, tree }
    }

    /// Number of user shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// `Σ_c |Ω_c|` across all shards.
    pub fn total_influences(&self) -> usize {
        self.shards.iter().map(|s| s.sets.total_influences()).sum()
    }

    /// Encodes the container (magic, version, checksummed sections: META,
    /// per-shard ISET/IINV/PBLK groups, IQTR).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payloads: Vec<([u8; 4], Vec<u8>)> = Vec::with_capacity(2 + 3 * self.shards.len());
        payloads.push((*b"META", self.meta.to_bytes()));
        for shard in &self.shards {
            payloads.push((*b"ISET", shard.sets.to_bytes()));
            payloads.push((*b"IINV", shard.inverted.to_bytes()));
            payloads.push((*b"PBLK", shard.blocks.to_bytes()));
        }
        payloads.push((*b"IQTR", self.tree.to_bytes()));
        let total: usize = payloads
            .iter()
            .map(|(_, p)| p.len() + FRAME_HEADER_LEN)
            .sum();
        let mut w = ByteWriter::with_capacity(HEADER_LEN + total);
        w.put_bytes(&MAGIC);
        w.put_u32(VERSION);
        for (tag, payload) in &payloads {
            w.put_bytes(tag);
            w.put_u64(payload.len() as u64);
            w.put_u32(crc32(payload));
            w.put_bytes(payload);
        }
        w.into_bytes()
    }

    /// Decodes [`Snapshot::to_bytes`] output.
    ///
    /// # Errors
    /// Every malformation maps to a typed [`SnapshotError`]: wrong magic or
    /// version, section tags out of order, CRC mismatches, per-artifact
    /// codec violations, trailing bytes, or artifacts that disagree on the
    /// instance shape.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let frames = check_layout(bytes)?;
        let section = |name: &'static str| {
            move |source| SnapshotError::Codec {
                section: name,
                source,
            }
        };
        let meta =
            SnapshotMeta::from_bytes(&bytes[frames[0].payload.clone()]).map_err(section("META"))?;
        if frames.len() != meta.n_sections() {
            return Err(SnapshotError::Inconsistent(
                "section count vs META shard manifest",
            ));
        }
        let mut shards = Vec::with_capacity(meta.n_shards());
        for s in 0..meta.n_shards() {
            let group = &frames[1 + 3 * s..4 + 3 * s];
            let sets = InfluenceSets::from_bytes(&bytes[group[0].payload.clone()])
                .map_err(section("ISET"))?;
            let inverted = InvertedIndex::from_bytes(&bytes[group[1].payload.clone()])
                .map_err(section("IINV"))?;
            let blocks = PositionBlocks::from_bytes(&bytes[group[2].payload.clone()])
                .map_err(section("PBLK"))?;
            shards.push(ShardArtifacts {
                sets,
                inverted,
                blocks,
            });
        }
        let tree = IQuadTree::from_bytes(&bytes[frames[frames.len() - 1].payload.clone()])
            .map_err(section("IQTR"))?;

        let snapshot = Snapshot { meta, shards, tree };
        snapshot.check_consistency()?;
        Ok(snapshot)
    }

    /// Cross-artifact shape checks run after every decode. Separated out so
    /// the engine can also assert a freshly built snapshot is coherent.
    pub fn check_consistency(&self) -> Result<(), SnapshotError> {
        let m = &self.meta;
        if self.shards.len() != m.n_shards() {
            return Err(SnapshotError::Inconsistent("shard count vs META manifest"));
        }
        for (s, shard) in self.shards.iter().enumerate() {
            let size = (m.shard_starts[s + 1] - m.shard_starts[s]) as usize;
            if shard.sets.n_users() != size {
                return Err(SnapshotError::Inconsistent("ISET user count vs manifest"));
            }
            if shard.sets.n_candidates() != m.n_candidates {
                return Err(SnapshotError::Inconsistent("ISET candidate count vs META"));
            }
            if shard.inverted.n_users() != size {
                return Err(SnapshotError::Inconsistent("IINV user count vs manifest"));
            }
            if shard.inverted.len() != shard.sets.total_influences() {
                return Err(SnapshotError::Inconsistent("IINV entry count vs ISET"));
            }
            if shard.blocks.n_users() != size {
                return Err(SnapshotError::Inconsistent("PBLK user count vs manifest"));
            }
        }
        if self.tree.stats().users != m.n_users {
            return Err(SnapshotError::Inconsistent("IQTR user count vs META"));
        }
        if m.default_k == 0 || m.default_k > m.n_candidates {
            return Err(SnapshotError::Inconsistent("default_k out of range"));
        }
        Ok(())
    }

    /// Writes the container to `path` (the conventional extension is
    /// `.mc2s`).
    ///
    /// # Errors
    /// Propagates file-system failures as [`SnapshotError::Io`].
    pub fn save(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes()).map_err(SnapshotError::Io)
    }

    /// Reads and decodes a container from `path`.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on file-system failure, otherwise every decode
    /// error [`Snapshot::from_bytes`] produces.
    pub fn load(path: &std::path::Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_geo::Point;
    use mc2ls_influence::MovingUser;

    fn tiny_problem() -> Problem<Sigmoid> {
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.4, 0.2)]),
            MovingUser::new(vec![Point::new(2.0, 2.0)]),
            MovingUser::new(vec![Point::new(-1.0, 1.5), Point::new(-0.8, 1.2)]),
        ];
        let facilities = vec![Point::new(5.0, 5.0)];
        let candidates = vec![
            Point::new(0.1, 0.1),
            Point::new(2.1, 2.1),
            Point::new(-0.9, 1.3),
        ];
        Problem::new(
            users,
            facilities,
            candidates,
            2,
            0.6,
            Sigmoid::paper_default(),
        )
    }

    #[test]
    fn container_round_trips() {
        let (snap, _stats) = Snapshot::build("tiny", &tiny_problem(), 2.0, 2);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.shards, snap.shards);
        // Re-encoding the decoded snapshot is bit-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn sharded_container_round_trips_and_stitches_the_instance() {
        let problem = tiny_problem();
        let (whole, _) = Snapshot::build("tiny", &problem, 2.0, 1);
        for n_shards in [2usize, 3, 9] {
            let (snap, _) = Snapshot::build_sharded("tiny", &problem, 2.0, 2, n_shards);
            assert_eq!(snap.n_shards(), n_shards.min(problem.n_users()));
            assert_eq!(snap.total_influences(), whole.total_influences());
            let back = Snapshot::from_bytes(&snap.to_bytes()).expect("round trip");
            assert_eq!(back.meta, snap.meta);
            assert_eq!(back.shards, snap.shards);
            // Stitching the shard-local rows (rebased to global user ids)
            // reproduces the unsharded influence sets.
            for c in 0..problem.n_candidates() {
                let mut stitched: Vec<u32> = Vec::new();
                for (s, shard) in back.shards.iter().enumerate() {
                    stitched.extend(
                        shard
                            .sets
                            .omega(c)
                            .iter()
                            .map(|&o| o + back.meta.shard_starts[s]),
                    );
                }
                assert_eq!(stitched, whole.shards[0].sets.omega(c), "candidate {c}");
            }
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let bytes = snap.to_bytes();
        // Stride through prefixes (every length near section boundaries is
        // covered by the container framing checks).
        for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_typed() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let bytes = snap.to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadMagic(_))
        ));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion(99))
        ));

        // Flip one payload byte: the META payload starts 24 bytes in
        // (magic 4 + version 4 + tag 4 + len 8 + crc 4).
        let mut bad = bytes.clone();
        bad[24] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch {
                section: "META",
                ..
            })
        ));

        // Swap a section tag.
        let mut bad = bytes;
        bad[8..12].copy_from_slice(b"XXXX");
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::SectionOrder {
                expected: "META",
                ..
            })
        ));
    }

    /// Re-frames the META section of an encoded container with `payload`,
    /// fixing up the length and CRC so only the META content differs.
    fn splice_meta(bytes: &[u8], payload: &[u8]) -> Vec<u8> {
        let frames = walk_frames(bytes).expect("well-formed input");
        let meta = &frames[0];
        let mut out = bytes[..meta.frame.start].to_vec();
        let mut w = ByteWriter::with_capacity(FRAME_HEADER_LEN + payload.len());
        w.put_bytes(b"META");
        w.put_u64(payload.len() as u64);
        w.put_u32(crc32(payload));
        w.put_bytes(payload);
        out.extend_from_slice(&w.into_bytes());
        out.extend_from_slice(&bytes[meta.frame.end..]);
        out
    }

    #[test]
    fn pre_model_meta_decodes_as_cumulative() {
        // A v2 writer that predates the model field stops right after
        // resolved_block_size: dropping the trailing 4-byte model id
        // reproduces its output exactly.
        let problem = tiny_problem().with_model(Model::Logit);
        let (snap, _) = Snapshot::build("tiny", &problem, 2.0, 1);
        assert_eq!(snap.meta.model, Model::Logit);
        let bytes = snap.to_bytes();
        let frames = walk_frames(&bytes).expect("frames");
        let meta_payload = &bytes[frames[0].payload.clone()];
        let old = splice_meta(&bytes, &meta_payload[..meta_payload.len() - 4]);
        let back = Snapshot::from_bytes(&old).expect("pre-model META decodes");
        assert_eq!(
            back.meta.model,
            Model::Cumulative,
            "absent model id defaults to the only pre-model model"
        );
        // Everything else survives untouched.
        assert_eq!(back.meta.name, snap.meta.name);
        assert_eq!(back.meta.shard_starts, snap.meta.shard_starts);
        assert_eq!(back.shards, snap.shards);
    }

    #[test]
    fn unknown_model_id_is_a_typed_error() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let bytes = snap.to_bytes();
        let frames = walk_frames(&bytes).expect("frames");
        let mut meta_payload = bytes[frames[0].payload.clone()].to_vec();
        let at = meta_payload.len() - 4;
        meta_payload[at..].copy_from_slice(&99u32.to_le_bytes());
        let bad = splice_meta(&bytes, &meta_payload);
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::Codec {
                section: "META",
                source: CodecError::Invalid("unknown competition model id"),
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::TrailingData(1))
        ));
    }

    #[test]
    fn save_and_load_round_trip_through_the_filesystem() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let dir = std::env::temp_dir().join("mc2ls-serve-snapshot-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.mc2s");
        snap.save(&path).expect("save");
        let back = Snapshot::load(&path).expect("load");
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.shards, snap.shards);
        std::fs::remove_file(&path).ok();
        // A missing file is an Io error, not a panic.
        assert!(matches!(
            Snapshot::load(&dir.join("absent.mc2s")),
            Err(SnapshotError::Io(_))
        ));
    }
}
