//! The `.mc2s` snapshot container: every index artifact the query engine
//! needs, persisted in one versioned, checksummed, little-endian file.
//!
//! # Format
//!
//! ```text
//! magic    [u8; 4] = b"MC2S"
//! version  u32     = 1
//! section × 5, fixed order META, ISET, IINV, PBLK, IQTR:
//!     tag      [u8; 4]
//!     len      u64            payload length in bytes
//!     crc      u32            CRC-32 (IEEE) of the payload
//!     payload  [u8; len]      artifact codec output
//! ```
//!
//! Every scalar is little-endian (the workspace codec convention, see
//! `mc2ls_geo::codec`). The five payloads are the `to_bytes` encodings of
//! [`SnapshotMeta`], [`InfluenceSets`], [`InvertedIndex`],
//! [`PositionBlocks`] and [`IQuadTree`] respectively. Decoding verifies the
//! magic, the version, each section's tag/CRC, each artifact's own
//! invariants, and finally that the artifacts agree with each other on the
//! instance shape — any violation is a typed [`SnapshotError`], never a
//! panic.

use crate::error::SnapshotError;
use mc2ls_core::algorithms::{influence_sets_threaded, IqtConfig, Method};
use mc2ls_core::{InfluenceSets, InvertedIndex, Problem, PruneStats};
use mc2ls_geo::codec::crc32;
use mc2ls_geo::{ByteReader, ByteWriter, CodecError};
use mc2ls_index::IQuadTree;
use mc2ls_influence::{auto_block_size, resolve_block_size, PositionBlocks, Sigmoid};

/// File magic: "MC2S".
pub const MAGIC: [u8; 4] = *b"MC2S";
/// Current container version.
pub const VERSION: u32 = 1;

/// The fixed section order: (tag bytes, human name).
const SECTIONS: [(&[u8; 4], &str); 5] = [
    (b"META", "META"),
    (b"ISET", "ISET"),
    (b"IINV", "IINV"),
    (b"PBLK", "PBLK"),
    (b"IQTR", "IQTR"),
];

/// Instance-shape metadata pinned into the snapshot so the server can
/// validate queries (τ and block size must match bit-for-bit) and report
/// itself over `STATS` without touching the heavyweight artifacts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SnapshotMeta {
    /// Free-form snapshot name (e.g. the preset it was built from).
    pub name: String,
    /// `|Ω|` — number of moving users.
    pub n_users: usize,
    /// `|C|` — number of candidate locations.
    pub n_candidates: usize,
    /// `|F|` — number of competitor facilities.
    pub n_facilities: usize,
    /// Influence threshold τ the influence sets were computed with.
    pub tau: f64,
    /// Verification block size the instance was configured with.
    pub block_size: usize,
    /// Sigmoid ρ parameter of the probability function.
    pub rho: f64,
    /// Leaf-square diagonal `d̂` (km) of the persisted IQuad-tree.
    pub leaf_diagonal: f64,
    /// Default selection budget `k` for queries that do not override it.
    pub default_k: usize,
}

impl SnapshotMeta {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64 + self.name.len());
        w.put_str(&self.name);
        w.put_len(self.n_users);
        w.put_len(self.n_candidates);
        w.put_len(self.n_facilities);
        w.put_f64(self.tau);
        w.put_len(self.block_size);
        w.put_f64(self.rho);
        w.put_f64(self.leaf_diagonal);
        w.put_len(self.default_k);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let name = r.get_string("SnapshotMeta.name")?;
        let n_users = read_usize(&mut r, "SnapshotMeta.n_users")?;
        let n_candidates = read_usize(&mut r, "SnapshotMeta.n_candidates")?;
        let n_facilities = read_usize(&mut r, "SnapshotMeta.n_facilities")?;
        let tau = r.get_f64()?;
        let block_size = read_usize(&mut r, "SnapshotMeta.block_size")?;
        let rho = r.get_f64()?;
        let leaf_diagonal = r.get_f64()?;
        let default_k = read_usize(&mut r, "SnapshotMeta.default_k")?;
        r.expect_end()?;
        if !(tau > 0.0 && tau < 1.0) {
            return Err(CodecError::Invalid("tau must lie in (0, 1)"));
        }
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(CodecError::Invalid("rho must lie in (0, 1]"));
        }
        if !(leaf_diagonal > 0.0 && leaf_diagonal.is_finite()) {
            return Err(CodecError::Invalid("leaf diagonal must be positive"));
        }
        if default_k == 0 || default_k > n_candidates {
            return Err(CodecError::Invalid("default_k out of range"));
        }
        Ok(SnapshotMeta {
            name,
            n_users,
            n_candidates,
            n_facilities,
            tau,
            block_size,
            rho,
            leaf_diagonal,
            default_k,
        })
    }
}

fn read_usize(r: &mut ByteReader<'_>, what: &'static str) -> Result<usize, CodecError> {
    let v = r.get_u64()?;
    usize::try_from(v).map_err(|_| CodecError::BadLength { what, claimed: v })
}

/// Everything the query engine serves from: the instance metadata plus the
/// four persisted index artifacts.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Instance-shape metadata (validated against the artifacts on load).
    pub meta: SnapshotMeta,
    /// Forward influence CSR `c → Ω_c`.
    pub sets: InfluenceSets,
    /// Inverted CSR `o → {c : o ∈ Ω_c}`.
    pub inverted: InvertedIndex,
    /// Blocked SoA position layout of every user trajectory.
    pub blocks: PositionBlocks,
    /// The IQuad-tree over the users.
    pub tree: IQuadTree,
}

impl Snapshot {
    /// Builds every artifact from `problem` across `threads` workers using
    /// the paper's recommended `IQT` influence pipeline, returning the
    /// snapshot plus the pruning counters of the build (so callers can
    /// compare a later load against the work it saved).
    ///
    /// # Panics
    /// Panics when `threads == 0` (programming error, mirroring
    /// [`influence_sets_threaded`]).
    pub fn build(
        name: &str,
        problem: &Problem<Sigmoid>,
        leaf_diagonal: f64,
        threads: usize,
    ) -> (Snapshot, PruneStats) {
        let method = Method::Iqt(IqtConfig::iqt(leaf_diagonal));
        let (sets, stats, _times) = influence_sets_threaded(problem, method, threads);
        let inverted = InvertedIndex::build(&sets, threads);
        // PBLK always stores real blocks: the auto sentinel resolves via
        // the density probe, and the plain sentinel (which disables blocked
        // verification locally but has no meaning inside a snapshot) falls
        // back to the same auto-tuned size. META keeps the *configured*
        // value so queries validate against what the user asked for.
        let resolved = resolve_block_size(&problem.users, problem.block_size)
            .unwrap_or_else(|| auto_block_size(&problem.users));
        let blocks = PositionBlocks::build(&problem.users, resolved);
        let tree = IQuadTree::build(&problem.users, &problem.pf, problem.tau, leaf_diagonal);
        let meta = SnapshotMeta {
            name: name.to_string(),
            n_users: problem.n_users(),
            n_candidates: problem.n_candidates(),
            n_facilities: problem.n_facilities(),
            tau: problem.tau,
            block_size: problem.block_size,
            rho: problem.pf.rho,
            leaf_diagonal,
            default_k: problem.k,
        };
        (
            Snapshot {
                meta,
                sets,
                inverted,
                blocks,
                tree,
            },
            stats,
        )
    }

    /// Encodes the container (magic, version, five checksummed sections).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payloads = [
            self.meta.to_bytes(),
            self.sets.to_bytes(),
            self.inverted.to_bytes(),
            self.blocks.to_bytes(),
            self.tree.to_bytes(),
        ];
        let total: usize = payloads.iter().map(|p| p.len() + 16).sum();
        let mut w = ByteWriter::with_capacity(8 + total);
        w.put_bytes(&MAGIC);
        w.put_u32(VERSION);
        for ((tag, _), payload) in SECTIONS.iter().zip(payloads.iter()) {
            w.put_bytes(*tag);
            w.put_u64(payload.len() as u64);
            w.put_u32(crc32(payload));
            w.put_bytes(payload);
        }
        w.into_bytes()
    }

    /// Decodes [`Snapshot::to_bytes`] output.
    ///
    /// # Errors
    /// Every malformation maps to a typed [`SnapshotError`]: wrong magic or
    /// version, section tags out of order, CRC mismatches, per-artifact
    /// codec violations, trailing bytes, or artifacts that disagree on the
    /// instance shape.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let container = |source| SnapshotError::Codec {
            section: "container",
            source,
        };
        let mut r = ByteReader::new(bytes);
        let magic = r.take(4).map_err(container)?;
        if magic != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(magic);
            return Err(SnapshotError::BadMagic(m));
        }
        let version = r.get_u32().map_err(container)?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        let mut payloads: [&[u8]; 5] = [&[]; 5];
        for (slot, (tag, name)) in payloads.iter_mut().zip(SECTIONS.iter()) {
            let found = r.take(4).map_err(container)?;
            if found != *tag {
                let mut m = [0u8; 4];
                m.copy_from_slice(found);
                return Err(SnapshotError::SectionOrder {
                    expected: name,
                    found: m,
                });
            }
            let len = r.get_u64().map_err(container)?;
            let stored = r.get_u32().map_err(container)?;
            let claimed = usize::try_from(len).map_err(|_| {
                container(CodecError::BadLength {
                    what: "section length",
                    claimed: len,
                })
            })?;
            let payload = r.take(claimed).map_err(container)?;
            let computed = crc32(payload);
            if computed != stored {
                return Err(SnapshotError::ChecksumMismatch {
                    section: name,
                    stored,
                    computed,
                });
            }
            *slot = payload;
        }
        if r.remaining() > 0 {
            return Err(SnapshotError::TrailingData(r.remaining()));
        }

        let section = |name: &'static str| {
            move |source| SnapshotError::Codec {
                section: name,
                source,
            }
        };
        let meta = SnapshotMeta::from_bytes(payloads[0]).map_err(section("META"))?;
        let sets = InfluenceSets::from_bytes(payloads[1]).map_err(section("ISET"))?;
        let inverted = InvertedIndex::from_bytes(payloads[2]).map_err(section("IINV"))?;
        let blocks = PositionBlocks::from_bytes(payloads[3]).map_err(section("PBLK"))?;
        let tree = IQuadTree::from_bytes(payloads[4]).map_err(section("IQTR"))?;

        let snapshot = Snapshot {
            meta,
            sets,
            inverted,
            blocks,
            tree,
        };
        snapshot.check_consistency()?;
        Ok(snapshot)
    }

    /// Cross-artifact shape checks run after every decode. Separated out so
    /// the engine can also assert a freshly built snapshot is coherent.
    pub fn check_consistency(&self) -> Result<(), SnapshotError> {
        let m = &self.meta;
        if self.sets.n_users() != m.n_users {
            return Err(SnapshotError::Inconsistent("ISET user count vs META"));
        }
        if self.sets.n_candidates() != m.n_candidates {
            return Err(SnapshotError::Inconsistent("ISET candidate count vs META"));
        }
        if self.inverted.n_users() != m.n_users {
            return Err(SnapshotError::Inconsistent("IINV user count vs META"));
        }
        if self.inverted.len() != self.sets.total_influences() {
            return Err(SnapshotError::Inconsistent("IINV entry count vs ISET"));
        }
        if self.blocks.n_users() != m.n_users {
            return Err(SnapshotError::Inconsistent("PBLK user count vs META"));
        }
        if self.tree.stats().users != m.n_users {
            return Err(SnapshotError::Inconsistent("IQTR user count vs META"));
        }
        if m.default_k == 0 || m.default_k > m.n_candidates {
            return Err(SnapshotError::Inconsistent("default_k out of range"));
        }
        Ok(())
    }

    /// Writes the container to `path` (the conventional extension is
    /// `.mc2s`).
    ///
    /// # Errors
    /// Propagates file-system failures as [`SnapshotError::Io`].
    pub fn save(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes()).map_err(SnapshotError::Io)
    }

    /// Reads and decodes a container from `path`.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on file-system failure, otherwise every decode
    /// error [`Snapshot::from_bytes`] produces.
    pub fn load(path: &std::path::Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_geo::Point;
    use mc2ls_influence::MovingUser;

    fn tiny_problem() -> Problem<Sigmoid> {
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.4, 0.2)]),
            MovingUser::new(vec![Point::new(2.0, 2.0)]),
            MovingUser::new(vec![Point::new(-1.0, 1.5), Point::new(-0.8, 1.2)]),
        ];
        let facilities = vec![Point::new(5.0, 5.0)];
        let candidates = vec![
            Point::new(0.1, 0.1),
            Point::new(2.1, 2.1),
            Point::new(-0.9, 1.3),
        ];
        Problem::new(
            users,
            facilities,
            candidates,
            2,
            0.6,
            Sigmoid::paper_default(),
        )
    }

    #[test]
    fn container_round_trips() {
        let (snap, _stats) = Snapshot::build("tiny", &tiny_problem(), 2.0, 2);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.sets, snap.sets);
        assert_eq!(back.inverted, snap.inverted);
        assert_eq!(back.blocks, snap.blocks);
        // Re-encoding the decoded snapshot is bit-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let bytes = snap.to_bytes();
        // Stride through prefixes (every length near section boundaries is
        // covered by the container framing checks).
        for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_typed() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let bytes = snap.to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadMagic(_))
        ));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion(99))
        ));

        // Flip one payload byte: the META payload starts 24 bytes in
        // (magic 4 + version 4 + tag 4 + len 8 + crc 4).
        let mut bad = bytes.clone();
        bad[24] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch {
                section: "META",
                ..
            })
        ));

        // Swap a section tag.
        let mut bad = bytes;
        bad[8..12].copy_from_slice(b"XXXX");
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::SectionOrder {
                expected: "META",
                ..
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::TrailingData(1))
        ));
    }

    #[test]
    fn save_and_load_round_trip_through_the_filesystem() {
        let (snap, _) = Snapshot::build("tiny", &tiny_problem(), 2.0, 1);
        let dir = std::env::temp_dir().join("mc2ls-serve-snapshot-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.mc2s");
        snap.save(&path).expect("save");
        let back = Snapshot::load(&path).expect("load");
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.sets, snap.sets);
        std::fs::remove_file(&path).ok();
        // A missing file is an Io error, not a panic.
        assert!(matches!(
            Snapshot::load(&dir.join("absent.mc2s")),
            Err(SnapshotError::Io(_))
        ));
    }
}
