//! The deterministic LRU result cache and the canonical query key.
//!
//! Keys are byte strings derived from the *canonical* form of a query
//! (sorted-deduped candidate subset, τ bits, `k`, block size, selector
//! tag, exact-PF flag, competition-model tag), so two requests that mean
//! the same query always collide regardless
//! of candidate order or duplicates. The block size passed to
//! [`key_bytes`] must be the *canonical* one — the server resolves the
//! `auto` sentinel to the snapshot's resolved block size via
//! [`crate::engine::QueryEngine::canonical_block_size`] before keying, so
//! `auto` and an explicit spelling of the resolved value share one
//! entry. Storage is `BTreeMap`-based — ordered,
//! so iteration and eviction are deterministic (lint rule R1 applies to
//! this crate) — with an explicit recency sequence implementing
//! least-recently-used eviction.

use crate::protocol::QueryAnswer;
use mc2ls_core::algorithms::Selector;
use mc2ls_geo::ByteWriter;
use mc2ls_influence::Model;
use std::collections::BTreeMap;

/// Returns `cands` sorted ascending with duplicates removed — the
/// canonical spelling of a candidate subset, used both for cache keys and
/// for the engine's subset slicing.
pub fn canonical_subset(cands: &[u32]) -> Vec<u32> {
    let mut v = cands.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Stable one-byte tag per selector (part of the key layout; do not reuse
/// values).
fn selector_tag(s: Selector) -> u8 {
    match s {
        Selector::Greedy => 0,
        Selector::LazyGreedy => 1,
        Selector::Decremental => 2,
        Selector::Auto => 3,
    }
}

/// Builds the canonical key bytes for a query. `subset` must already be
/// canonical (see [`canonical_subset`]); `None` means the full candidate
/// set.
#[allow(clippy::too_many_arguments)]
pub fn key_bytes(
    subset: Option<&[u32]>,
    k: usize,
    tau: f64,
    block_size: usize,
    selector: Selector,
    pf_exact: bool,
    model: Model,
) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(32 + 4 * subset.map_or(0, <[u32]>::len));
    w.put_u64(tau.to_bits());
    w.put_len(k);
    w.put_len(block_size);
    w.put_u8(selector_tag(selector));
    w.put_u8(u8::from(pf_exact));
    w.put_u8(model.tag());
    match subset {
        None => w.put_u8(0),
        Some(ids) => {
            w.put_u8(1);
            w.put_u32_slice(ids);
        }
    }
    w.into_bytes()
}

/// FNV-1a 64-bit hash of `bytes` — reported in answers so clients and logs
/// can correlate cache entries without shipping the raw key.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct Entry {
    seq: u64,
    answer: QueryAnswer,
}

/// A bounded least-recently-used map from canonical key bytes to cached
/// [`QueryAnswer`]s. Capacity `0` disables caching entirely (every lookup
/// misses, nothing is stored, and no counters move).
pub struct ResultCache {
    capacity: usize,
    entries: BTreeMap<Vec<u8>, Entry>,
    /// recency sequence → key, the smallest sequence being the LRU victim.
    recency: BTreeMap<u64, Vec<u8>>,
    next_seq: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` answers.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<QueryAnswer> {
        if self.capacity == 0 {
            return None;
        }
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.recency.remove(&entry.seq);
                entry.seq = self.next_seq;
                self.recency.insert(self.next_seq, key.to_vec());
                self.next_seq += 1;
                self.hits += 1;
                Some(entry.answer.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → answer`, evicting the
    /// least-recently-used entry when full.
    pub fn put(&mut self, key: Vec<u8>, answer: QueryAnswer) {
        if self.capacity == 0 {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.recency.remove(&old.seq);
        } else if self.entries.len() >= self.capacity {
            // Deterministic LRU victim: the smallest recency sequence.
            if let Some((&victim_seq, _)) = self.recency.iter().next() {
                if let Some(victim_key) = self.recency.remove(&victim_seq) {
                    self.entries.remove(&victim_key);
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.recency.insert(seq, key.clone());
        self.entries.insert(key, Entry { seq, answer });
    }

    /// Drops every entry (used on snapshot reload); counters are kept.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity (`0` = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_core::{GatherStats, PruneStats, SelectionStats, Solution};

    fn answer(tag: u32) -> QueryAnswer {
        QueryAnswer {
            solution: Solution {
                selected: vec![tag],
                marginal_gains: vec![f64::from(tag)],
                cinf: f64::from(tag),
            },
            selection: SelectionStats::default(),
            prune: PruneStats::default(),
            gather: GatherStats::default(),
            cached: false,
            key_hash: 0,
        }
    }

    #[test]
    fn canonicalisation_makes_equivalent_queries_collide() {
        let cm = Model::Cumulative;
        let a = key_bytes(
            Some(&canonical_subset(&[3, 1, 2, 1])),
            2,
            0.7,
            8,
            Selector::Auto,
            false,
            cm,
        );
        let b = key_bytes(
            Some(&canonical_subset(&[2, 3, 1])),
            2,
            0.7,
            8,
            Selector::Auto,
            false,
            cm,
        );
        assert_eq!(a, b);
        // Any parameter change separates the keys.
        let s = Some(&[1u32, 2, 3][..]);
        assert_ne!(a, key_bytes(s, 3, 0.7, 8, Selector::Auto, false, cm));
        assert_ne!(a, key_bytes(s, 2, 0.71, 8, Selector::Auto, false, cm));
        assert_ne!(a, key_bytes(s, 2, 0.7, 9, Selector::Auto, false, cm));
        assert_ne!(a, key_bytes(s, 2, 0.7, 8, Selector::Greedy, false, cm));
        assert_ne!(a, key_bytes(s, 2, 0.7, 8, Selector::Auto, true, cm));
        assert_ne!(
            a,
            key_bytes(s, 2, 0.7, 8, Selector::Auto, false, Model::Logit)
        );
        assert_ne!(a, key_bytes(None, 2, 0.7, 8, Selector::Auto, false, cm));
        // An empty subset is not the same key as "full set".
        assert_ne!(
            key_bytes(Some(&[]), 2, 0.7, 8, Selector::Auto, false, cm),
            key_bytes(None, 2, 0.7, 8, Selector::Auto, false, cm)
        );
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut cache = ResultCache::new(2);
        let (ka, kb, kc) = (vec![1u8], vec![2u8], vec![3u8]);
        cache.put(ka.clone(), answer(1));
        cache.put(kb.clone(), answer(2));
        // Touch A so B becomes the victim.
        assert!(cache.get(&ka).is_some());
        cache.put(kc.clone(), answer(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&kb).is_none(), "B was the LRU victim");
        assert!(cache.get(&ka).is_some());
        assert!(cache.get(&kc).is_some());
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (3, 1));
    }

    #[test]
    fn reinsertion_refreshes_instead_of_duplicating() {
        let mut cache = ResultCache::new(2);
        cache.put(vec![1], answer(1));
        cache.put(vec![1], answer(10));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&[1]).expect("hit").solution.selected, vec![10]);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut cache = ResultCache::new(0);
        cache.put(vec![1], answer(1));
        assert!(cache.get(&[1]).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.counters(), (0, 0));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
