//! A blocking client for the query protocol, used by the CLI and the
//! benchmark load generator.

use crate::error::ServeError;
use crate::protocol::{
    recv_message, send_message, ProposeRequest, QueryAnswer, QueryRequest, Request, Response,
    StatsReport, UpdateReport, WireEvent,
};
use std::net::TcpStream;
use std::time::Duration;

/// One persistent connection to a query server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A generous dead-peer bound; the server answers between requests,
        // never mid-silence.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ServeError> {
        send_message(&mut self.stream, request)?;
        match recv_message(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(ServeError::ConnectionClosed),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Remote`] on an error response.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Runs one selection query.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Remote`] when the server rejects
    /// the query (mismatched τ/block size, bad budget, busy, …).
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryAnswer, ServeError> {
        match self.round_trip(&Request::Query(request.clone()))? {
            Response::Answer(answer) => Ok(answer),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the live counters and snapshot metadata.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Remote`] on an error response.
    pub fn stats(&mut self) -> Result<StatsReport, ServeError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to swap in the snapshot at `path`; returns the
    /// server's acknowledgement message.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Remote`] when the server could
    /// not load the snapshot (the old one stays live).
    pub fn reload(&mut self, path: &str) -> Result<String, ServeError> {
        match self.round_trip(&Request::Reload {
            path: path.to_string(),
        })? {
            Response::Done { message } => Ok(message),
            other => Err(unexpected(other)),
        }
    }

    /// Sends one batch of mobility events to a live-mode server.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Remote`] when the server is not
    /// in live mode or rejects the batch (state is then untouched).
    pub fn update(&mut self, events: &[WireEvent]) -> Result<UpdateReport, ServeError> {
        match self.round_trip(&Request::Update {
            events: events.to_vec(),
        })? {
            Response::Updated(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to propose candidate sites from the loaded
    /// snapshot's position data (the MaxRS-style sweep).
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Remote`] when the server rejects
    /// the sweep parameters or its position sections fail to decode.
    pub fn propose(
        &mut self,
        request: &ProposeRequest,
    ) -> Result<mc2ls_candgen::Proposal, ServeError> {
        match self.round_trip(&Request::Propose(request.clone()))? {
            Response::Proposed(proposal) => Ok(proposal),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down; returns its acknowledgement message.
    ///
    /// # Errors
    /// Transport errors, or [`ServeError::Remote`] on an error response.
    pub fn shutdown(&mut self) -> Result<String, ServeError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Done { message } => Ok(message),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> ServeError {
    match response {
        Response::Error { kind, message } => ServeError::Remote { kind, message },
        other => ServeError::Protocol(format!("unexpected response variant: {other:?}")),
    }
}
