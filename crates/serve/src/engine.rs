//! The shard-per-worker query engine: scatter/gather selection over a
//! zero-copy loaded snapshot.
//!
//! Queries never re-derive influence relationships — the snapshot's
//! per-shard CSRs are the ground truth. Every query runs the
//! scatter/gather plan ([`mc2ls_core::shard::gather_select`]): per-shard
//! gain scatter on up to `min(threads, shards)` workers, gathered through
//! the canonical selection loop, which is **byte-identical** to every
//! unsharded selector at any shard and thread count (the workspace
//! invariant, asserted by the loopback suites). Answers carry
//! [`mc2ls_core::PruneStats::default`] pruning counters — the visible
//! proof that zero influence evaluations ran.
//!
//! The initial per-candidate count matrix is materialised **once per
//! snapshot epoch** (lazily, on the first query) and shared: a full-set
//! query clones it, a subset query gathers its rows. Concurrent queries on
//! the same epoch therefore share one gain-materialisation pass — the
//! engine half of request batching (the server adds single-flight
//! coalescing on top).

use crate::cache::canonical_subset;
use crate::error::SnapshotError;
use crate::protocol::{ProposeRequest, QueryAnswer, QueryRequest};
use crate::snapshot::{Snapshot, SnapshotMeta};
use crate::view::LoadedSnapshot;
use mc2ls_candgen::{propose_from_blocks, Proposal, SweepConfig};
use mc2ls_core::shard::{gather_select_with_scratch_model, materialise_counts, subset_counts};
use mc2ls_core::{GatherScratch, GatherStats, PruneStats};
use mc2ls_influence::{Model, BLOCK_SIZE_AUTO};
use std::sync::{Arc, Mutex, OnceLock};

/// A query rejected before selection ran.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Requested τ differs (bit-wise) from the snapshot's τ. Influence
    /// sets are τ-specific; answering anyway would silently be wrong.
    TauMismatch {
        /// τ in the request.
        requested: f64,
        /// τ the snapshot was built with.
        snapshot: f64,
    },
    /// Requested block size differs from the snapshot's after
    /// canonicalisation (the auto sentinel resolves to the snapshot's
    /// stored block size before comparing).
    BlockSizeMismatch {
        /// Block size in the request.
        requested: usize,
        /// Block size the snapshot was built with.
        snapshot: usize,
    },
    /// `k` is zero or exceeds the available candidates.
    BadBudget {
        /// Requested budget.
        k: usize,
        /// Candidates available to this query (subset or full set).
        available: usize,
    },
    /// A subset id is not a candidate of the snapshot.
    UnknownCandidate {
        /// The offending id.
        id: u32,
        /// Number of candidates in the snapshot.
        n_candidates: usize,
    },
    /// The candidate subset is empty after canonicalisation.
    EmptySubset,
    /// Requested competition model differs from the one the snapshot was
    /// built to serve. The influence sets themselves are model-independent,
    /// but the build recorded its intent — answering under another model
    /// would silently change what `cinf` means for this deployment.
    ModelMismatch {
        /// Model in the request.
        requested: Model,
        /// Model recorded in the snapshot META.
        snapshot: Model,
    },
}

impl QueryError {
    /// Stable machine-readable kind for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryError::TauMismatch { .. } => "tau-mismatch",
            QueryError::BlockSizeMismatch { .. } => "block-size-mismatch",
            QueryError::BadBudget { .. } => "bad-budget",
            QueryError::UnknownCandidate { .. } => "unknown-candidate",
            QueryError::EmptySubset => "empty-subset",
            QueryError::ModelMismatch { .. } => "model-mismatch",
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::TauMismatch {
                requested,
                snapshot,
            } => write!(
                f,
                "query tau {requested} does not match snapshot tau {snapshot}"
            ),
            QueryError::BlockSizeMismatch {
                requested,
                snapshot,
            } => write!(
                f,
                "query block size {requested} does not match snapshot block size {snapshot}"
            ),
            QueryError::BadBudget { k, available } => {
                write!(f, "budget k = {k} outside 1..={available}")
            }
            QueryError::UnknownCandidate { id, n_candidates } => {
                write!(f, "candidate {id} outside 0..{n_candidates}")
            }
            QueryError::EmptySubset => write!(f, "candidate subset is empty"),
            QueryError::ModelMismatch {
                requested,
                snapshot,
            } => write!(
                f,
                "query model {requested} does not match snapshot model {snapshot}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// A PROPOSE request rejected before the sweep ran, or whose position
/// sections failed to decode.
#[derive(Debug)]
pub enum ProposeError {
    /// The sweep window is zero, negative, or non-finite.
    BadWindow {
        /// Window in the request.
        window: f64,
    },
    /// The requested site count is zero.
    BadCount,
    /// The min-separation override is negative or non-finite.
    BadSeparation {
        /// Separation in the request.
        min_separation: f64,
    },
    /// The snapshot's PBLK sections failed their lazy decode.
    Snapshot(SnapshotError),
}

impl ProposeError {
    /// Stable machine-readable kind for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            ProposeError::BadWindow { .. } => "bad-window",
            ProposeError::BadCount => "bad-count",
            ProposeError::BadSeparation { .. } => "bad-separation",
            ProposeError::Snapshot(_) => "snapshot",
        }
    }
}

impl std::fmt::Display for ProposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProposeError::BadWindow { window } => {
                write!(f, "sweep window {window} must be positive and finite")
            }
            ProposeError::BadCount => write!(f, "site count m must be at least 1"),
            ProposeError::BadSeparation { min_separation } => write!(
                f,
                "min separation {min_separation} must be finite and non-negative"
            ),
            ProposeError::Snapshot(e) => write!(f, "position sections failed to decode: {e}"),
        }
    }
}

impl std::error::Error for ProposeError {}

/// A zero-copy loaded snapshot plus the scatter worker count and the
/// epoch-shared count matrix.
#[derive(Debug)]
pub struct QueryEngine {
    loaded: LoadedSnapshot,
    threads: usize,
    /// Initial count matrix of the full candidate set, materialised once
    /// per engine (= snapshot epoch) on first use and shared by every
    /// query until the next reload.
    epoch_counts: OnceLock<Arc<Vec<u32>>>,
    /// Pool of selection scratch buffers (heap, version/taken/stamp
    /// arrays, coverage bitsets). Each query checks one out, selects with
    /// it, and returns it — repeated queries against an epoch reuse the
    /// same allocations instead of reallocating per call.
    scratch_pool: Mutex<Vec<GatherScratch>>,
}

impl QueryEngine {
    /// Wraps a decoded snapshot by re-encoding it into the zero-copy view
    /// form; selection scatters over up to `threads` workers (clamped to
    /// at least one). Thread count never changes answers, only wall-clock.
    pub fn new(snapshot: Snapshot, threads: usize) -> Self {
        let bytes = snapshot.to_bytes();
        // lint:allow(panic-path): encoding a consistent snapshot and re-validating it cannot fail
        let loaded = LoadedSnapshot::from_bytes(bytes).expect("snapshot re-validates");
        QueryEngine {
            loaded,
            threads: threads.max(1),
            epoch_counts: OnceLock::new(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Builds an engine straight from container bytes via the zero-copy
    /// load path — the cold-start and reload entry point.
    ///
    /// # Errors
    /// Every validation error [`LoadedSnapshot::from_bytes`] produces.
    pub fn from_bytes(bytes: Vec<u8>, threads: usize) -> Result<Self, SnapshotError> {
        Ok(QueryEngine {
            loaded: LoadedSnapshot::from_bytes(bytes)?,
            threads: threads.max(1),
            epoch_counts: OnceLock::new(),
            scratch_pool: Mutex::new(Vec::new()),
        })
    }

    /// Checks a scratch out of the pool (or starts a fresh one when all
    /// are in flight — concurrent queries never block on each other here).
    fn take_scratch(&self) -> GatherScratch {
        self.scratch_pool
            .lock()
            .map(|mut pool| pool.pop())
            .unwrap_or_default()
            .unwrap_or_default()
    }

    /// Returns a scratch to the pool for the next query to reuse.
    fn put_scratch(&self, scratch: GatherScratch) {
        if let Ok(mut pool) = self.scratch_pool.lock() {
            pool.push(scratch);
        }
    }

    /// The loaded snapshot's metadata.
    pub fn meta(&self) -> &SnapshotMeta {
        self.loaded.meta()
    }

    /// The raw container bytes this engine serves from — the base a delta
    /// reload applies onto.
    pub fn snapshot_bytes(&self) -> &[u8] {
        self.loaded.bytes()
    }

    /// Number of user shards the engine scatters over.
    pub fn n_shards(&self) -> usize {
        self.loaded.n_shards()
    }

    /// Canonicalises a requested block size: the auto sentinel resolves to
    /// the block size the snapshot's PBLK sections actually store, so
    /// `auto` and the explicit resolved value are the same query (and the
    /// same cache key).
    pub fn canonical_block_size(&self, requested: usize) -> usize {
        if requested == BLOCK_SIZE_AUTO {
            self.loaded.meta().resolved_block_size
        } else {
            requested
        }
    }

    fn epoch_counts(&self) -> &Arc<Vec<u32>> {
        self.epoch_counts.get_or_init(|| {
            let views = self.loaded.shard_views();
            Arc::new(materialise_counts(
                &views,
                self.loaded.meta().n_candidates,
                self.loaded.n_classes(),
                self.threads,
            ))
        })
    }

    /// Validates `req` against the snapshot and runs the scatter/gather
    /// selection.
    ///
    /// # Errors
    /// A typed [`QueryError`] when the request disagrees with the snapshot
    /// (τ / canonical block size), addresses an unknown candidate, or
    /// carries an out-of-range budget. Never panics on malformed requests.
    pub fn answer(&self, req: &QueryRequest) -> Result<QueryAnswer, QueryError> {
        let meta = self.loaded.meta();
        if req.tau.to_bits() != meta.tau.to_bits() {
            return Err(QueryError::TauMismatch {
                requested: req.tau,
                snapshot: meta.tau,
            });
        }
        if self.canonical_block_size(req.block_size) != self.canonical_block_size(meta.block_size) {
            return Err(QueryError::BlockSizeMismatch {
                requested: req.block_size,
                snapshot: meta.block_size,
            });
        }
        if req.model != meta.model {
            return Err(QueryError::ModelMismatch {
                requested: req.model,
                snapshot: meta.model,
            });
        }

        let n_candidates = meta.n_candidates;
        let n_classes = self.loaded.n_classes();
        let views = self.loaded.shard_views();
        match req.candidates.as_deref() {
            None => {
                check_budget(req.k, n_candidates)?;
                let counts = self.epoch_counts().as_ref().clone();
                let mut scratch = self.take_scratch();
                let (solution, selection, mut gather) = gather_select_with_scratch_model(
                    &views,
                    n_candidates,
                    n_classes,
                    counts,
                    None,
                    self.loaded.total_influences(),
                    req.k,
                    self.threads,
                    &mut scratch,
                    &meta.model,
                );
                self.put_scratch(scratch);
                gather.shared_epoch = true;
                Ok(answer_of(solution, selection, gather))
            }
            Some(raw) => {
                let canon = canonical_subset(raw);
                if canon.is_empty() {
                    return Err(QueryError::EmptySubset);
                }
                if let Some(&max) = canon.last() {
                    if max as usize >= n_candidates {
                        return Err(QueryError::UnknownCandidate {
                            id: max,
                            n_candidates,
                        });
                    }
                }
                check_budget(req.k, canon.len())?;
                let counts = subset_counts(self.epoch_counts(), n_classes, &canon);
                let total: u64 = views
                    .iter()
                    .map(|v| {
                        canon
                            .iter()
                            .map(|&c| v.fwd.row_len(c as usize) as u64)
                            .sum::<u64>()
                    })
                    .sum();
                let mut scratch = self.take_scratch();
                let (mut solution, selection, mut gather) = gather_select_with_scratch_model(
                    &views,
                    n_candidates,
                    n_classes,
                    counts,
                    Some(&canon),
                    total,
                    req.k,
                    self.threads,
                    &mut scratch,
                    &meta.model,
                );
                self.put_scratch(scratch);
                // The selector saw subset-positional ids; map back.
                for id in &mut solution.selected {
                    // lint:allow(panic-propagation): selectors emit subset-positional ids < canon.len()
                    *id = canon[*id as usize];
                }
                gather.shared_epoch = true;
                Ok(answer_of(solution, selection, gather))
            }
        }
    }
}

impl QueryEngine {
    /// Validates `req` and runs the MaxRS-style candidate sweep over the
    /// snapshot's position blocks (decoded lazily on the first PROPOSE,
    /// cached afterwards). Pure read: proposing never touches the query
    /// plane, the result cache, or the epoch counts.
    ///
    /// # Errors
    /// A typed [`ProposeError`] on out-of-range sweep parameters or a PBLK
    /// decode failure. Never panics on malformed requests — every
    /// precondition of [`SweepConfig`] is checked here first.
    pub fn propose(&self, req: &ProposeRequest) -> Result<Proposal, ProposeError> {
        if !(req.window > 0.0 && req.window.is_finite()) {
            return Err(ProposeError::BadWindow { window: req.window });
        }
        if req.m == 0 {
            return Err(ProposeError::BadCount);
        }
        if let Some(sep) = req.min_separation {
            if !(sep >= 0.0 && sep.is_finite()) {
                return Err(ProposeError::BadSeparation {
                    min_separation: sep,
                });
            }
        }
        let blocks = self
            .loaded
            .position_blocks()
            .map_err(ProposeError::Snapshot)?;
        let mut cfg = SweepConfig::new(req.window, req.m).with_threads(self.threads);
        if let Some(sep) = req.min_separation {
            cfg = cfg.with_min_separation(sep);
        }
        Ok(propose_from_blocks(blocks, &cfg))
    }
}

fn check_budget(k: usize, available: usize) -> Result<(), QueryError> {
    if k == 0 || k > available {
        return Err(QueryError::BadBudget { k, available });
    }
    Ok(())
}

fn answer_of(
    solution: mc2ls_core::Solution,
    selection: mc2ls_core::SelectionStats,
    gather: GatherStats,
) -> QueryAnswer {
    QueryAnswer {
        solution,
        selection,
        // Serving touches no influence-set evaluation: the counters stay
        // at their defaults, and tests assert exactly that.
        prune: PruneStats::default(),
        gather,
        cached: false,
        key_hash: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_core::algorithms::{solve_threaded, IqtConfig, Method, Selector};
    use mc2ls_core::Problem;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};
    use rand::prelude::*;

    fn random_problem(seed: u64, n_users: usize, n_cands: usize) -> Problem<Sigmoid> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = |r: &mut StdRng| Point::new(r.gen_range(-8.0..8.0), r.gen_range(-8.0..8.0));
        let users = (0..n_users)
            .map(|_| {
                let n = rng.gen_range(1..4);
                MovingUser::new((0..n).map(|_| pt(&mut rng)).collect())
            })
            .collect();
        let facilities = (0..5).map(|_| pt(&mut rng)).collect();
        let candidates = (0..n_cands).map(|_| pt(&mut rng)).collect();
        Problem::new(
            users,
            facilities,
            candidates,
            3,
            0.6,
            Sigmoid::paper_default(),
        )
    }

    fn engine_for(problem: &Problem<Sigmoid>, threads: usize, n_shards: usize) -> QueryEngine {
        let (snap, _) = Snapshot::build_sharded("test", problem, 2.0, threads, n_shards);
        QueryEngine::new(snap, threads)
    }

    fn query(problem: &Problem<Sigmoid>, candidates: Option<Vec<u32>>, k: usize) -> QueryRequest {
        QueryRequest {
            candidates,
            k,
            tau: problem.tau,
            block_size: problem.block_size,
            selector: Selector::Auto,
            pf_exact: false,
            model: Model::Cumulative,
        }
    }

    #[test]
    fn full_set_answers_match_direct_solve_bit_for_bit() {
        let problem = random_problem(11, 60, 20);
        let direct = solve_threaded(
            &problem,
            Method::Iqt(IqtConfig::iqt(2.0)),
            Selector::Auto,
            1,
        );
        for (threads, n_shards) in [(1usize, 1usize), (2, 3), (5, 4)] {
            let engine = engine_for(&problem, threads, n_shards);
            let ans = engine
                .answer(&query(&problem, None, problem.k))
                .expect("answer");
            assert_eq!(ans.solution.selected, direct.solution.selected);
            assert_eq!(
                ans.solution.cinf.to_bits(),
                direct.solution.cinf.to_bits(),
                "threads={threads} shards={n_shards}"
            );
            assert_eq!(ans.prune, PruneStats::default());
            assert_eq!(ans.gather.shards as usize, engine.n_shards());
            assert!(ans.gather.shared_epoch);
            assert_eq!(ans.gather.rounds as usize, problem.k);
        }
    }

    #[test]
    fn subset_answers_match_a_solve_on_the_subinstance() {
        let problem = random_problem(23, 50, 16);
        let engine = engine_for(&problem, 2, 3);
        let subset = vec![14u32, 3, 7, 3, 11, 0];
        let ans = engine
            .answer(&query(&problem, Some(subset.clone()), 2))
            .expect("answer");

        // Direct solve on the sub-instance with the same candidate order as
        // the canonical subset.
        let canon = canonical_subset(&subset);
        let sub_problem = Problem::new(
            problem.users.clone(),
            problem.facilities.clone(),
            canon
                .iter()
                .map(|&c| problem.candidates[c as usize])
                .collect(),
            2,
            problem.tau,
            problem.pf,
        )
        .with_block_size(problem.block_size);
        let direct = solve_threaded(
            &sub_problem,
            Method::Iqt(IqtConfig::iqt(2.0)),
            Selector::Auto,
            1,
        );
        let mapped: Vec<u32> = direct
            .solution
            .selected
            .iter()
            .map(|&l| canon[l as usize])
            .collect();
        assert_eq!(ans.solution.selected, mapped);
        assert_eq!(ans.solution.cinf.to_bits(), direct.solution.cinf.to_bits());
    }

    #[test]
    fn all_selectors_agree_on_the_engine_path() {
        let problem = random_problem(37, 40, 12);
        let engine = engine_for(&problem, 3, 2);
        let selectors = [
            Selector::Greedy,
            Selector::LazyGreedy,
            Selector::Decremental,
            Selector::Auto,
        ];
        let answers: Vec<_> = selectors
            .iter()
            .map(|&s| {
                let mut q = query(&problem, Some(vec![0, 1, 2, 3, 4, 5]), 3);
                q.selector = s;
                engine.answer(&q).expect("answer")
            })
            .collect();
        for pair in answers.windows(2) {
            assert_eq!(pair[0].solution.selected, pair[1].solution.selected);
            assert_eq!(
                pair[0].solution.cinf.to_bits(),
                pair[1].solution.cinf.to_bits()
            );
        }
    }

    #[test]
    fn auto_and_resolved_block_sizes_are_the_same_query() {
        let problem = random_problem(51, 30, 10);
        let engine = engine_for(&problem, 1, 2);
        let resolved = engine.meta().resolved_block_size;
        assert_eq!(engine.canonical_block_size(BLOCK_SIZE_AUTO), resolved);
        assert_eq!(engine.canonical_block_size(resolved), resolved);

        let mut q = query(&problem, None, 3);
        q.block_size = BLOCK_SIZE_AUTO;
        let a = engine.answer(&q).expect("auto accepted");
        q.block_size = resolved;
        let b = engine.answer(&q).expect("resolved accepted");
        assert_eq!(a.solution.selected, b.solution.selected);
    }

    #[test]
    fn invalid_queries_are_typed_errors() {
        let problem = random_problem(5, 30, 10);
        let engine = engine_for(&problem, 1, 1);

        let mut q = query(&problem, None, 3);
        q.tau = 0.5;
        assert!(matches!(
            engine.answer(&q),
            Err(QueryError::TauMismatch { .. })
        ));

        let mut q = query(&problem, None, 3);
        // A fixed size no resolution maps to: canonically distinct.
        q.block_size = usize::MAX - 1;
        assert!(matches!(
            engine.answer(&q),
            Err(QueryError::BlockSizeMismatch { .. })
        ));

        assert!(matches!(
            engine.answer(&query(&problem, None, 0)),
            Err(QueryError::BadBudget { .. })
        ));
        assert!(matches!(
            engine.answer(&query(&problem, None, 11)),
            Err(QueryError::BadBudget { .. })
        ));
        assert!(matches!(
            engine.answer(&query(&problem, Some(vec![1, 2]), 3)),
            Err(QueryError::BadBudget { .. })
        ));
        assert!(matches!(
            engine.answer(&query(&problem, Some(vec![]), 1)),
            Err(QueryError::EmptySubset)
        ));
        assert!(matches!(
            engine.answer(&query(&problem, Some(vec![0, 10]), 1)),
            Err(QueryError::UnknownCandidate { id: 10, .. })
        ));

        let mut q = query(&problem, None, 3);
        q.model = Model::Logit;
        assert!(matches!(
            engine.answer(&q),
            Err(QueryError::ModelMismatch {
                requested: Model::Logit,
                snapshot: Model::Cumulative,
            })
        ));
    }

    #[test]
    fn propose_matches_a_direct_sweep_over_the_raw_positions() {
        let problem = random_problem(43, 70, 12);
        let points: Vec<Point> = problem
            .users
            .iter()
            .flat_map(|u| u.positions().iter().copied())
            .collect();
        let direct =
            mc2ls_candgen::propose(&points, &SweepConfig::new(3.0, 5).with_min_separation(1.0));
        let req = ProposeRequest {
            window: 3.0,
            m: 5,
            min_separation: Some(1.0),
        };
        // The snapshot reorders positions (Morton within users, users into
        // shards), but the sweep aggregates into grid cells first — so the
        // proposal is identical at any shard/thread count.
        for (threads, n_shards) in [(1usize, 1usize), (3, 2)] {
            let engine = engine_for(&problem, threads, n_shards);
            let served = engine.propose(&req).expect("propose");
            assert_eq!(served.stats, direct.stats, "shards={n_shards}");
            assert_eq!(served.sites.len(), direct.sites.len());
            for (a, b) in served.sites.iter().zip(&direct.sites) {
                assert_eq!(a.center.x.to_bits(), b.center.x.to_bits());
                assert_eq!(a.center.y.to_bits(), b.center.y.to_bits());
                assert_eq!(a.score, b.score);
                assert_eq!(a.anchor, b.anchor);
            }
        }
    }

    #[test]
    fn invalid_propose_requests_are_typed_errors() {
        let problem = random_problem(47, 20, 6);
        let engine = engine_for(&problem, 1, 1);
        let req = |window: f64, m: usize, sep: Option<f64>| ProposeRequest {
            window,
            m,
            min_separation: sep,
        };
        assert!(matches!(
            engine.propose(&req(0.0, 3, None)),
            Err(ProposeError::BadWindow { .. })
        ));
        assert!(matches!(
            engine.propose(&req(f64::INFINITY, 3, None)),
            Err(ProposeError::BadWindow { .. })
        ));
        assert!(matches!(
            engine.propose(&req(1.0, 0, None)),
            Err(ProposeError::BadCount)
        ));
        assert!(matches!(
            engine.propose(&req(1.0, 3, Some(-1.0))),
            Err(ProposeError::BadSeparation { .. })
        ));
        assert!(matches!(
            engine.propose(&req(1.0, 3, Some(f64::NAN))),
            Err(ProposeError::BadSeparation { .. })
        ));
        assert!(engine.propose(&req(1.0, 3, None)).is_ok());
    }

    #[test]
    fn logit_snapshots_serve_logit_answers_and_reject_cumulative() {
        let problem = random_problem(61, 50, 14).with_model(Model::Logit);
        let direct = solve_threaded(
            &problem,
            Method::Iqt(IqtConfig::iqt(2.0)),
            Selector::Auto,
            1,
        );
        for (threads, n_shards) in [(1usize, 1usize), (2, 3)] {
            let engine = engine_for(&problem, threads, n_shards);
            assert_eq!(engine.meta().model, Model::Logit);

            // The model a pre-model client defaults to is rejected…
            assert!(matches!(
                engine.answer(&query(&problem, None, problem.k)),
                Err(QueryError::ModelMismatch {
                    requested: Model::Cumulative,
                    snapshot: Model::Logit,
                })
            ));

            // …and the matching model is served bit-identically to the
            // direct logit solve at any shard/thread count.
            let mut q = query(&problem, None, problem.k);
            q.model = Model::Logit;
            let ans = engine.answer(&q).expect("logit answer");
            assert_eq!(ans.solution.selected, direct.solution.selected);
            assert_eq!(
                ans.solution.cinf.to_bits(),
                direct.solution.cinf.to_bits(),
                "threads={threads} shards={n_shards}"
            );
        }
    }
}
