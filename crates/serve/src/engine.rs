//! The query engine: replays the selection phase over a loaded snapshot.
//!
//! Queries never re-derive influence relationships — the snapshot's CSR is
//! the ground truth, so a full-set query is exactly the selection phase of
//! `solve_threaded` and a subset query slices the CSR with
//! [`InfluenceSets::subset`] (lossless per candidate, so the slice equals a
//! from-scratch solve on the sub-instance). Both paths therefore return
//! solutions byte-identical to a direct solve at any thread count, with
//! [`mc2ls_core::PruneStats::default`] pruning counters — the visible proof
//! that zero influence-set evaluations ran.

use crate::cache::canonical_subset;
use crate::protocol::{QueryAnswer, QueryRequest};
use crate::snapshot::{Snapshot, SnapshotMeta};
use mc2ls_core::algorithms::run_selector;
use mc2ls_core::{InfluenceSets, PruneStats};

/// A query rejected before selection ran.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Requested τ differs (bit-wise) from the snapshot's τ. Influence
    /// sets are τ-specific; answering anyway would silently be wrong.
    TauMismatch {
        /// τ in the request.
        requested: f64,
        /// τ the snapshot was built with.
        snapshot: f64,
    },
    /// Requested block size differs from the snapshot's.
    BlockSizeMismatch {
        /// Block size in the request.
        requested: usize,
        /// Block size the snapshot was built with.
        snapshot: usize,
    },
    /// `k` is zero or exceeds the available candidates.
    BadBudget {
        /// Requested budget.
        k: usize,
        /// Candidates available to this query (subset or full set).
        available: usize,
    },
    /// A subset id is not a candidate of the snapshot.
    UnknownCandidate {
        /// The offending id.
        id: u32,
        /// Number of candidates in the snapshot.
        n_candidates: usize,
    },
    /// The candidate subset is empty after canonicalisation.
    EmptySubset,
}

impl QueryError {
    /// Stable machine-readable kind for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryError::TauMismatch { .. } => "tau-mismatch",
            QueryError::BlockSizeMismatch { .. } => "block-size-mismatch",
            QueryError::BadBudget { .. } => "bad-budget",
            QueryError::UnknownCandidate { .. } => "unknown-candidate",
            QueryError::EmptySubset => "empty-subset",
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::TauMismatch {
                requested,
                snapshot,
            } => write!(
                f,
                "query tau {requested} does not match snapshot tau {snapshot}"
            ),
            QueryError::BlockSizeMismatch {
                requested,
                snapshot,
            } => write!(
                f,
                "query block size {requested} does not match snapshot block size {snapshot}"
            ),
            QueryError::BadBudget { k, available } => {
                write!(f, "budget k = {k} outside 1..={available}")
            }
            QueryError::UnknownCandidate { id, n_candidates } => {
                write!(f, "candidate {id} outside 0..{n_candidates}")
            }
            QueryError::EmptySubset => write!(f, "candidate subset is empty"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A loaded snapshot plus the worker-thread count selection runs with.
#[derive(Debug)]
pub struct QueryEngine {
    snapshot: Snapshot,
    threads: usize,
}

impl QueryEngine {
    /// Wraps `snapshot`; selection fans out over `threads` workers
    /// (clamped to at least one). Thread count never changes answers, only
    /// wall-clock.
    pub fn new(snapshot: Snapshot, threads: usize) -> Self {
        QueryEngine {
            snapshot,
            threads: threads.max(1),
        }
    }

    /// The loaded snapshot's metadata.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.snapshot.meta
    }

    /// The loaded snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Validates `req` against the snapshot and runs the selection phase.
    ///
    /// # Errors
    /// A typed [`QueryError`] when the request disagrees with the snapshot
    /// (τ / block size), addresses an unknown candidate, or carries an
    /// out-of-range budget. Never panics on malformed requests.
    pub fn answer(&self, req: &QueryRequest) -> Result<QueryAnswer, QueryError> {
        let meta = &self.snapshot.meta;
        if req.tau.to_bits() != meta.tau.to_bits() {
            return Err(QueryError::TauMismatch {
                requested: req.tau,
                snapshot: meta.tau,
            });
        }
        if req.block_size != meta.block_size {
            return Err(QueryError::BlockSizeMismatch {
                requested: req.block_size,
                snapshot: meta.block_size,
            });
        }

        let sets = &self.snapshot.sets;
        match req.candidates.as_deref() {
            None => {
                check_budget(req.k, sets.n_candidates())?;
                let (solution, selection) = run_selector(req.selector, sets, req.k, self.threads);
                Ok(answer_of(solution, selection))
            }
            Some(raw) => {
                let canon = canonical_subset(raw);
                if canon.is_empty() {
                    return Err(QueryError::EmptySubset);
                }
                if let Some(&max) = canon.last() {
                    if max as usize >= sets.n_candidates() {
                        return Err(QueryError::UnknownCandidate {
                            id: max,
                            n_candidates: sets.n_candidates(),
                        });
                    }
                }
                check_budget(req.k, canon.len())?;
                let sub: InfluenceSets = sets.subset(&canon);
                let (mut solution, selection) =
                    run_selector(req.selector, &sub, req.k, self.threads);
                // The selector saw local (subset-positional) ids; map back.
                for id in &mut solution.selected {
                    *id = canon[*id as usize];
                }
                Ok(answer_of(solution, selection))
            }
        }
    }
}

fn check_budget(k: usize, available: usize) -> Result<(), QueryError> {
    if k == 0 || k > available {
        return Err(QueryError::BadBudget { k, available });
    }
    Ok(())
}

fn answer_of(solution: mc2ls_core::Solution, selection: mc2ls_core::SelectionStats) -> QueryAnswer {
    QueryAnswer {
        solution,
        selection,
        // Serving touches no influence-set evaluation: the counters stay
        // at their defaults, and tests assert exactly that.
        prune: PruneStats::default(),
        cached: false,
        key_hash: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_core::algorithms::{solve_threaded, IqtConfig, Method, Selector};
    use mc2ls_core::Problem;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};
    use rand::prelude::*;

    fn random_problem(seed: u64, n_users: usize, n_cands: usize) -> Problem<Sigmoid> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = |r: &mut StdRng| Point::new(r.gen_range(-8.0..8.0), r.gen_range(-8.0..8.0));
        let users = (0..n_users)
            .map(|_| {
                let n = rng.gen_range(1..4);
                MovingUser::new((0..n).map(|_| pt(&mut rng)).collect())
            })
            .collect();
        let facilities = (0..5).map(|_| pt(&mut rng)).collect();
        let candidates = (0..n_cands).map(|_| pt(&mut rng)).collect();
        Problem::new(
            users,
            facilities,
            candidates,
            3,
            0.6,
            Sigmoid::paper_default(),
        )
    }

    fn engine_for(problem: &Problem<Sigmoid>, threads: usize) -> QueryEngine {
        let (snap, _) = Snapshot::build("test", problem, 2.0, threads);
        QueryEngine::new(snap, threads)
    }

    fn query(problem: &Problem<Sigmoid>, candidates: Option<Vec<u32>>, k: usize) -> QueryRequest {
        QueryRequest {
            candidates,
            k,
            tau: problem.tau,
            block_size: problem.block_size,
            selector: Selector::Auto,
            pf_exact: false,
        }
    }

    #[test]
    fn full_set_answers_match_direct_solve_bit_for_bit() {
        let problem = random_problem(11, 60, 20);
        let direct = solve_threaded(
            &problem,
            Method::Iqt(IqtConfig::iqt(2.0)),
            Selector::Auto,
            1,
        );
        for threads in [1usize, 2, 5] {
            let engine = engine_for(&problem, threads);
            let ans = engine
                .answer(&query(&problem, None, problem.k))
                .expect("answer");
            assert_eq!(ans.solution.selected, direct.solution.selected);
            assert_eq!(
                ans.solution.cinf.to_bits(),
                direct.solution.cinf.to_bits(),
                "threads={threads}"
            );
            assert_eq!(ans.prune, PruneStats::default());
        }
    }

    #[test]
    fn subset_answers_match_a_solve_on_the_subinstance() {
        let problem = random_problem(23, 50, 16);
        let engine = engine_for(&problem, 2);
        let subset = vec![14u32, 3, 7, 3, 11, 0];
        let ans = engine
            .answer(&query(&problem, Some(subset.clone()), 2))
            .expect("answer");

        // Direct solve on the sub-instance with the same candidate order as
        // the canonical subset.
        let canon = canonical_subset(&subset);
        let sub_problem = Problem::new(
            problem.users.clone(),
            problem.facilities.clone(),
            canon
                .iter()
                .map(|&c| problem.candidates[c as usize])
                .collect(),
            2,
            problem.tau,
            problem.pf,
        )
        .with_block_size(problem.block_size);
        let direct = solve_threaded(
            &sub_problem,
            Method::Iqt(IqtConfig::iqt(2.0)),
            Selector::Auto,
            1,
        );
        let mapped: Vec<u32> = direct
            .solution
            .selected
            .iter()
            .map(|&l| canon[l as usize])
            .collect();
        assert_eq!(ans.solution.selected, mapped);
        assert_eq!(ans.solution.cinf.to_bits(), direct.solution.cinf.to_bits());
    }

    #[test]
    fn all_selectors_agree_on_the_engine_path() {
        let problem = random_problem(37, 40, 12);
        let engine = engine_for(&problem, 3);
        let selectors = [
            Selector::Greedy,
            Selector::LazyGreedy,
            Selector::Decremental,
            Selector::Auto,
        ];
        let answers: Vec<_> = selectors
            .iter()
            .map(|&s| {
                let mut q = query(&problem, Some(vec![0, 1, 2, 3, 4, 5]), 3);
                q.selector = s;
                engine.answer(&q).expect("answer")
            })
            .collect();
        for pair in answers.windows(2) {
            assert_eq!(pair[0].solution.selected, pair[1].solution.selected);
            assert_eq!(
                pair[0].solution.cinf.to_bits(),
                pair[1].solution.cinf.to_bits()
            );
        }
    }

    #[test]
    fn invalid_queries_are_typed_errors() {
        let problem = random_problem(5, 30, 10);
        let engine = engine_for(&problem, 1);

        let mut q = query(&problem, None, 3);
        q.tau = 0.5;
        assert!(matches!(
            engine.answer(&q),
            Err(QueryError::TauMismatch { .. })
        ));

        let mut q = query(&problem, None, 3);
        q.block_size += 1;
        assert!(matches!(
            engine.answer(&q),
            Err(QueryError::BlockSizeMismatch { .. })
        ));

        assert!(matches!(
            engine.answer(&query(&problem, None, 0)),
            Err(QueryError::BadBudget { .. })
        ));
        assert!(matches!(
            engine.answer(&query(&problem, None, 11)),
            Err(QueryError::BadBudget { .. })
        ));
        assert!(matches!(
            engine.answer(&query(&problem, Some(vec![1, 2]), 3)),
            Err(QueryError::BadBudget { .. })
        ));
        assert!(matches!(
            engine.answer(&query(&problem, Some(vec![]), 1)),
            Err(QueryError::EmptySubset)
        ));
        assert!(matches!(
            engine.answer(&query(&problem, Some(vec![0, 10]), 1)),
            Err(QueryError::UnknownCandidate { id: 10, .. })
        ));
    }
}
