//! Delta snapshots: ship only the changed section groups of a `.mc2s`
//! container, layered onto a fingerprinted base.
//!
//! # Format
//!
//! ```text
//! magic      [u8; 4] = b"MC2D"
//! version    u32     = snapshot::VERSION (the container version spliced)
//! base_len   u64     byte length of the base container
//! base_crc   u32     CRC-32 (IEEE) over the *entire* base container
//! n_entries  u64
//! per entry, strictly increasing by index:
//!     index  u32     section position in the base's frame order
//!     frame  u64-length-prefixed bytes: the replacement section frame,
//!            verbatim (tag + len + crc + payload)
//! ```
//!
//! A delta is pure frame splicing: [`diff`] records every section whose
//! frame bytes differ between two structurally identical containers, and
//! [`apply`] replaces those frames in the base. Correctness leans on the
//! container's own defenses rather than duplicating them — the spliced
//! result is **re-validated by the caller** exactly like a full snapshot
//! (framing, per-section CRCs, CSR invariants), so a corrupted delta
//! payload surfaces as the same typed [`SnapshotError`] a corrupted full
//! snapshot would, and a delta applied to the wrong base dies on the
//! fingerprint before any splicing happens.

use crate::error::SnapshotError;
use crate::snapshot::{walk_frames, HEADER_LEN, VERSION};
use mc2ls_geo::codec::crc32;
use mc2ls_geo::{ByteReader, ByteWriter, CodecError};

/// Delta file magic: "MC2D".
pub const MAGIC: [u8; 4] = *b"MC2D";

/// Whether `bytes` starts with the delta magic — how reload paths decide
/// between a full snapshot and a delta without a second read.
pub fn is_delta(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

/// Computes the delta that turns `base` into `target`. Both must be valid
/// v2 containers with the *same section structure* (equal section counts
/// and tag sequences — i.e. the same shard manifest shape); the delta then
/// carries every section whose frame bytes differ.
///
/// # Errors
/// Any [`walk_frames`] error on either container, or
/// [`SnapshotError::BadDelta`] when the two containers' section structures
/// disagree (a delta cannot add or remove sections).
pub fn diff(base: &[u8], target: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    let base_frames = walk_frames(base)?;
    let target_frames = walk_frames(target)?;
    if base_frames.len() != target_frames.len() {
        return Err(SnapshotError::BadDelta(
            "base and target have different section counts",
        ));
    }
    if base_frames
        .iter()
        .zip(&target_frames)
        .any(|(b, t)| b.tag != t.tag)
    {
        return Err(SnapshotError::BadDelta(
            "base and target have different section layouts",
        ));
    }

    let mut w = ByteWriter::with_capacity(64);
    w.put_bytes(&MAGIC);
    w.put_u32(VERSION);
    w.put_u64(base.len() as u64);
    w.put_u32(crc32(base));
    let changed: Vec<(usize, &[u8])> = base_frames
        .iter()
        .zip(&target_frames)
        .enumerate()
        .filter(|(_, (b, t))| base[b.frame.clone()] != target[t.frame.clone()])
        .map(|(i, (_, t))| (i, &target[t.frame.clone()]))
        .collect();
    w.put_len(changed.len());
    for (index, frame) in changed {
        // lint:allow(narrowing-cast): section counts are 2 + 3 * shards, far below u32
        w.put_u32(index as u32);
        w.put_u64(frame.len() as u64);
        w.put_bytes(frame);
    }
    Ok(w.into_bytes())
}

/// Applies `delta` to `base`, returning the spliced container bytes.
///
/// The caller **must** re-validate the result (e.g. via
/// [`crate::view::LoadedSnapshot::from_bytes`]) — splicing checks the
/// delta's own framing and the base fingerprint, not the artifact
/// invariants of the replacement payloads.
///
/// # Errors
/// [`SnapshotError::BadDelta`] on a malformed delta,
/// [`SnapshotError::DeltaBaseMismatch`] when `base` is not the container
/// the delta was diffed against, and any [`walk_frames`] error when `base`
/// itself is malformed.
pub fn apply(base: &[u8], delta: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    let structural = |source: CodecError| {
        let _ = source;
        SnapshotError::BadDelta("delta truncated or malformed")
    };
    let mut r = ByteReader::new(delta);
    let magic = r.take(4).map_err(structural)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadDelta("not an mc2d delta (magic)"));
    }
    let version = r.get_u32().map_err(structural)?;
    if version != VERSION {
        return Err(SnapshotError::BadDelta("delta targets another version"));
    }
    let base_len = r.get_u64().map_err(structural)?;
    let base_crc = r.get_u32().map_err(structural)?;
    if base_len != base.len() as u64 || base_crc != crc32(base) {
        return Err(SnapshotError::DeltaBaseMismatch);
    }
    let base_frames = walk_frames(base)?;

    let n_entries = r.get_len("delta entries", 12).map_err(structural)?;
    let mut entries: Vec<(usize, &[u8])> = Vec::with_capacity(n_entries.min(1024));
    let mut prev: Option<usize> = None;
    for _ in 0..n_entries {
        let index = r.get_u32().map_err(structural)? as usize;
        let frame_len = r.get_u64().map_err(structural)?;
        let claimed = usize::try_from(frame_len)
            .map_err(|_| SnapshotError::BadDelta("delta frame length exceeds the address space"))?;
        let frame = r.take(claimed).map_err(structural)?;
        if index >= base_frames.len() {
            return Err(SnapshotError::BadDelta("delta entry outside the base"));
        }
        if prev.is_some_and(|p| index <= p) {
            return Err(SnapshotError::BadDelta(
                "delta entries must be strictly increasing",
            ));
        }
        prev = Some(index);
        entries.push((index, frame));
    }
    r.expect_end().map_err(structural)?;

    // Splice: header verbatim, then each frame, replaced where the delta
    // says so.
    let mut out = Vec::with_capacity(base.len());
    out.extend_from_slice(&base[..HEADER_LEN]);
    let mut next = entries.iter().peekable();
    for (i, frame) in base_frames.iter().enumerate() {
        match next.peek() {
            Some(&&(index, replacement)) if index == i => {
                out.extend_from_slice(replacement);
                next.next();
            }
            _ => out.extend_from_slice(&base[frame.frame.clone()]),
        }
    }
    Ok(out)
}

/// Writes `bytes` to `path` (the conventional extension is `.mc2d`).
///
/// # Errors
/// Propagates file-system failures as [`SnapshotError::Io`].
pub fn save(bytes: &[u8], path: &std::path::Path) -> Result<(), SnapshotError> {
    std::fs::write(path, bytes).map_err(SnapshotError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use mc2ls_core::Problem;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn problem(shift: f64) -> Problem<Sigmoid> {
        let users = (0..8)
            .map(|i| {
                let x = f64::from(i) * 0.4 - 1.6 + shift;
                MovingUser::new(vec![Point::new(x, 0.0), Point::new(x, 0.3)])
            })
            .collect();
        let facilities = vec![Point::new(6.0, 6.0)];
        let candidates = (0..5)
            .map(|i| Point::new(f64::from(i) * 0.5, 0.1))
            .collect();
        Problem::new(
            users,
            facilities,
            candidates,
            2,
            0.6,
            Sigmoid::paper_default(),
        )
    }

    fn container(shift: f64, n_shards: usize) -> Vec<u8> {
        Snapshot::build_sharded("delta-test", &problem(shift), 2.0, 1, n_shards)
            .0
            .to_bytes()
    }

    #[test]
    fn diff_then_apply_reproduces_the_target_bit_for_bit() {
        let base = container(0.0, 2);
        let target = container(0.25, 2);
        let delta = diff(&base, &target).expect("diff");
        assert!(is_delta(&delta));
        assert!(
            delta.len() < target.len(),
            "a delta should not exceed the target"
        );
        let spliced = apply(&base, &delta).expect("apply");
        assert_eq!(spliced, target);
        // An identity delta carries zero entries and still round-trips.
        let identity = diff(&base, &base).expect("identity diff");
        assert_eq!(apply(&base, &identity).expect("apply"), base);
        assert!(identity.len() < 64);
    }

    #[test]
    fn wrong_base_and_structure_mismatches_are_typed() {
        let base = container(0.0, 2);
        let other = container(0.5, 2);
        let delta = diff(&base, &container(0.25, 2)).expect("diff");
        assert!(matches!(
            apply(&other, &delta),
            Err(SnapshotError::DeltaBaseMismatch)
        ));
        // Different shard manifests → different section structure.
        assert!(matches!(
            diff(&base, &container(0.25, 4)),
            Err(SnapshotError::BadDelta(_))
        ));
        // A full snapshot is not a delta.
        assert!(matches!(
            apply(&base, &base),
            Err(SnapshotError::BadDelta(_))
        ));
    }

    #[test]
    fn corrupted_deltas_never_panic() {
        let base = container(0.0, 2);
        let delta = diff(&base, &container(0.25, 2)).expect("diff");
        // Truncations of the delta itself fail during delta parsing.
        for cut in 0..delta.len().min(64) {
            assert!(apply(&base, &delta[..cut]).is_err(), "cut={cut}");
        }
        // A flipped byte inside a replacement frame splices, but the
        // result fails container validation — the caller's contract.
        let mut bad = delta.clone();
        let at = bad.len() - 3;
        bad[at] ^= 0xFF;
        match apply(&base, &bad) {
            // Flip landed in delta framing: rejected outright.
            Err(_) => {}
            // Flip landed in a payload: the spliced container must fail
            // its CRC re-validation.
            Ok(spliced) => {
                assert!(Snapshot::from_bytes(&spliced).is_err());
            }
        }
    }
}
