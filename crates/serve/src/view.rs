//! Zero-copy snapshot loading: the query-plane view of a `.mc2s` file.
//!
//! [`Snapshot::from_bytes`](crate::snapshot::Snapshot::from_bytes) decodes
//! every artifact into owned structures — including the `f64`-heavy PBLK
//! and IQTR sections a *serving* engine never touches (influence sets are
//! precomputed, so queries run zero position verifications). That decode
//! dominates cold start. [`LoadedSnapshot`] instead keeps the raw
//! container bytes and **borrows** the CSR offset/id arrays directly from
//! them through [`mc2ls_core::shard::CsrView`] (safe Rust, no `unsafe`):
//!
//! * container framing and every section CRC are verified once,
//! * META is decoded (it is tiny and holds the shard manifest),
//! * every shard's CSR invariants are validated once via
//!   [`parse_shard_view`],
//! * PBLK and IQTR stay as checksummed bytes — never decoded.
//!
//! Cold start therefore does `O(file)` checksum work and `O(edges)`
//! integer validation, but allocates nothing proportional to the
//! position data — I/O-dominated, not decode-dominated. Queries re-derive
//! their shard views per call through the *trusted* (validation-free)
//! parse, which only re-reads the `O(1)` array framing.

use crate::error::SnapshotError;
use crate::snapshot::{check_layout, SnapshotMeta};
use mc2ls_core::shard::{parse_shard_view, trusted_shard_view, ShardView};
use mc2ls_geo::CodecError;
use mc2ls_influence::PositionBlocks;
use std::ops::Range;
use std::sync::OnceLock;

/// A validated `.mc2s` container held as raw bytes, exposing zero-copy
/// shard views instead of decoded artifacts.
#[derive(Debug)]
pub struct LoadedSnapshot {
    bytes: Vec<u8>,
    meta: SnapshotMeta,
    /// Per shard: (ISET payload range, IINV payload range).
    shard_ranges: Vec<(Range<usize>, Range<usize>)>,
    /// Per shard: PBLK payload range — CRC-verified at load, decoded
    /// lazily only when the PROPOSE verb first needs positions.
    pblk_ranges: Vec<Range<usize>>,
    /// Lazily decoded per-shard position blocks. Queries never touch
    /// this; a decode failure is cached so every PROPOSE sees the same
    /// typed error instead of retrying a corrupt section.
    blocks: OnceLock<Result<Vec<PositionBlocks>, CodecError>>,
    n_classes: usize,
    total_influences: u64,
}

impl LoadedSnapshot {
    /// Validates `bytes` as a v2 container and indexes its sections.
    ///
    /// Verifies everything a full decode verifies about the *query plane*
    /// — framing, CRCs, META invariants, every CSR invariant, cross-array
    /// consistency — but leaves PBLK and IQTR as bytes.
    ///
    /// # Errors
    /// A typed [`SnapshotError`] for any malformation; never panics.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<LoadedSnapshot, SnapshotError> {
        let frames = check_layout(&bytes)?;
        let section = |name: &'static str| {
            move |source| SnapshotError::Codec {
                section: name,
                source,
            }
        };
        let meta =
            SnapshotMeta::from_bytes(&bytes[frames[0].payload.clone()]).map_err(section("META"))?;
        if frames.len() != meta.n_sections() {
            return Err(SnapshotError::Inconsistent(
                "section count vs META shard manifest",
            ));
        }

        let n_candidates = u32::try_from(meta.n_candidates)
            .map_err(|_| SnapshotError::Inconsistent("candidate count exceeds the u32 id space"))?;
        let mut shard_ranges = Vec::with_capacity(meta.n_shards());
        let mut pblk_ranges = Vec::with_capacity(meta.n_shards());
        let mut n_classes = 1usize;
        let mut total_influences = 0u64;
        for s in 0..meta.n_shards() {
            let iset = frames[1 + 3 * s].payload.clone();
            let iinv = frames[2 + 3 * s].payload.clone();
            pblk_ranges.push(frames[3 + 3 * s].payload.clone());
            let view = parse_shard_view(
                meta.shard_starts[s],
                &bytes[iset.clone()],
                &bytes[iinv.clone()],
                n_candidates,
            )
            .map_err(section("ISET"))?;
            let size = (meta.shard_starts[s + 1] - meta.shard_starts[s]) as usize;
            if view.n_users as usize != size {
                return Err(SnapshotError::Inconsistent("ISET user count vs manifest"));
            }
            for w in view.f_count.iter() {
                n_classes = n_classes.max(w as usize + 1);
            }
            total_influences += view.fwd.total_ids() as u64;
            shard_ranges.push((iset, iinv));
        }

        Ok(LoadedSnapshot {
            bytes,
            meta,
            shard_ranges,
            pblk_ranges,
            blocks: OnceLock::new(),
            n_classes,
            total_influences,
        })
    }

    /// Reads and validates a container from `path` without decoding the
    /// position or tree sections.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on file-system failure, otherwise every error
    /// [`LoadedSnapshot::from_bytes`] produces.
    pub fn load(path: &std::path::Path) -> Result<LoadedSnapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        LoadedSnapshot::from_bytes(bytes)
    }

    /// The decoded snapshot metadata (including the shard manifest).
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// The raw, validated container bytes — the base a delta snapshot
    /// applies onto.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of user shards.
    pub fn n_shards(&self) -> usize {
        self.shard_ranges.len()
    }

    /// Number of weight classes (`max |F_o| + 1`) across all shards.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// `Σ_c |Ω_c|` across all shards.
    pub fn total_influences(&self) -> u64 {
        self.total_influences
    }

    /// Re-derives the per-shard zero-copy views. Cheap (`O(shards)` array
    /// framing, no validation — the constructor proved the invariants over
    /// these exact bytes), so query paths call this per request instead of
    /// fighting a self-referential borrow.
    pub fn shard_views(&self) -> Vec<ShardView<'_>> {
        self.shard_ranges
            .iter()
            .enumerate()
            .map(|(s, (iset, iinv))| {
                trusted_shard_view(
                    self.meta.shard_starts[s],
                    &self.bytes[iset.clone()],
                    &self.bytes[iinv.clone()],
                )
                // lint:allow(panic-path): from_bytes fully parsed these exact payload ranges
                .expect("shard payloads were validated at load")
            })
            .collect()
    }

    /// The per-shard SoA position blocks, decoded from the PBLK sections
    /// on first use and cached for the snapshot's lifetime. Query serving
    /// never calls this — only the PROPOSE verb pays the decode, and only
    /// once per loaded snapshot.
    ///
    /// # Errors
    /// [`SnapshotError::Codec`] when a PBLK payload fails to decode (its
    /// CRC was already verified at load, so this means a codec-level
    /// malformation); the failure is cached and repeated verbatim.
    pub fn position_blocks(&self) -> Result<&[PositionBlocks], SnapshotError> {
        let decoded = self.blocks.get_or_init(|| {
            self.pblk_ranges
                .iter()
                .map(|range| PositionBlocks::from_bytes(&self.bytes[range.clone()]))
                .collect()
        });
        match decoded {
            Ok(blocks) => Ok(blocks.as_slice()),
            Err(source) => Err(SnapshotError::Codec {
                section: "PBLK",
                source: source.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use mc2ls_core::Problem;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn tiny_problem() -> Problem<Sigmoid> {
        let users = (0..10)
            .map(|i| {
                let x = f64::from(i) * 0.3 - 1.5;
                MovingUser::new(vec![Point::new(x, -x), Point::new(x + 0.1, 0.2)])
            })
            .collect();
        let facilities = vec![Point::new(5.0, 5.0), Point::new(-4.0, 3.0)];
        let candidates = (0..6)
            .map(|i| Point::new(f64::from(i) * 0.5 - 1.0, 0.1))
            .collect();
        Problem::new(
            users,
            facilities,
            candidates,
            2,
            0.6,
            Sigmoid::paper_default(),
        )
    }

    #[test]
    fn view_load_agrees_with_the_full_decode() {
        let problem = tiny_problem();
        for n_shards in [1usize, 3] {
            let (snap, _) = Snapshot::build_sharded("tiny", &problem, 2.0, 1, n_shards);
            let bytes = snap.to_bytes();
            let loaded = LoadedSnapshot::from_bytes(bytes.clone()).expect("load");
            assert_eq!(loaded.meta(), &snap.meta);
            assert_eq!(loaded.n_shards(), snap.n_shards());
            assert_eq!(loaded.total_influences() as usize, snap.total_influences());
            assert_eq!(loaded.bytes(), &bytes[..]);
            let views = loaded.shard_views();
            assert_eq!(views.len(), snap.n_shards());
            for (view, shard) in views.iter().zip(&snap.shards) {
                assert_eq!(view.n_users as usize, shard.sets.n_users());
                assert_eq!(view.fwd.total_ids(), shard.sets.total_influences());
                for c in 0..snap.meta.n_candidates {
                    let got: Vec<u32> = view.fwd.row(c).collect();
                    assert_eq!(got, shard.sets.omega(c));
                }
            }
            let blocks = loaded.position_blocks().expect("PBLK decode");
            assert_eq!(blocks.len(), snap.n_shards());
            for (got, shard) in blocks.iter().zip(&snap.shards) {
                assert_eq!(got, &shard.blocks, "lazy PBLK decode vs full decode");
            }
        }
    }

    #[test]
    fn corruption_is_rejected_without_decoding_positions() {
        let (snap, _) = Snapshot::build_sharded("tiny", &tiny_problem(), 2.0, 1, 2);
        let bytes = snap.to_bytes();
        // Truncations.
        for cut in (0..bytes.len()).step_by(11) {
            assert!(LoadedSnapshot::from_bytes(bytes[..cut].to_vec()).is_err());
        }
        // A flipped payload byte anywhere fails its section CRC.
        for at in (8..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[at] ^= 0xFF;
            assert!(
                LoadedSnapshot::from_bytes(bad).is_err(),
                "flip at {at} must not pass validation"
            );
        }
    }
}
