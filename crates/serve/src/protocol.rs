//! The wire protocol: length-prefixed JSON frames.
//!
//! Each frame is a `u32` little-endian payload length followed by that many
//! bytes of UTF-8 JSON encoding one [`Request`] or [`Response`]. The JSON
//! shapes are the `serde` derives below (enums externally tagged), so the
//! protocol is self-describing and diffable with any JSON tool. Frames are
//! capped at [`MAX_FRAME_LEN`] so a corrupt length prefix cannot force an
//! unbounded allocation.
//!
//! Floating-point fields survive the trip bit-for-bit: the workspace JSON
//! shim renders finite `f64`s with shortest-roundtrip formatting, which is
//! what makes the served [`Solution`]s byte-identical to locally computed
//! ones.

use crate::error::ServeError;
use crate::snapshot::SnapshotMeta;
use mc2ls_core::algorithms::Selector;
use mc2ls_core::{GatherStats, PruneStats, SelectionStats, Solution};
use mc2ls_influence::Model;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Hard cap on a frame's payload length (64 MiB).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// A client → server message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Solve a selection query against the loaded snapshot.
    Query(QueryRequest),
    /// Report live counters, latency quantiles and snapshot metadata.
    Stats,
    /// Swap the serving snapshot for the one at `path` (cache is cleared).
    Reload {
        /// File-system path of the `.mc2s` container to load.
        path: String,
    },
    /// Apply a batch of user-mobility events to a live-mode server. The
    /// batch is all-or-nothing: it is validated up front and either every
    /// event lands (the serving engine swaps to the refreshed state) or
    /// none do. Answered with [`Response::Updated`].
    Update {
        /// Events in application order.
        events: Vec<WireEvent>,
    },
    /// Propose candidate sites from the loaded snapshot's position data
    /// (the MaxRS-style sweep). Answered with [`Response::Proposed`].
    Propose(ProposeRequest),
    /// Stop accepting connections, drain in-flight work and exit.
    Shutdown,
}

/// Parameters of one candidate-generation request.
///
/// The server runs the [`mc2ls_candgen`] sweep over the loaded snapshot's
/// SoA position blocks — no model, τ or block-size coupling: proposing
/// sites only reads positions, so any client may PROPOSE against any
/// snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProposeRequest {
    /// Side of the square sweep window, in the dataset's coordinate units.
    /// Must be strictly positive and finite.
    pub window: f64,
    /// Number of candidate sites to emit (`≥ 1`); fewer may come back when
    /// the min-separation rule exhausts the window anchors first.
    pub m: usize,
    /// Minimum Euclidean distance between two emitted sites. `None` takes
    /// the sweep default of half a window; `Some(0.0)` disables dedup.
    pub min_separation: Option<f64>,
}

/// One user-mobility event on the wire.
///
/// `op` selects the shape: `"insert"` (new user from `xs`/`ys`, ignoring
/// `user`), `"delete"` (tombstone `user`), `"move"` (replace `user`'s
/// trajectory with `xs`/`ys`), `"checkin"` (append the single `xs[0]`,
/// `ys[0]` position to `user`'s trajectory — the SNAP replay verb).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireEvent {
    /// Event kind: `insert`, `delete`, `move` or `checkin`.
    pub op: String,
    /// Target user id (server-assigned, dense); ignored for `insert`.
    pub user: u32,
    /// Position x coordinates (projected plane).
    pub xs: Vec<f64>,
    /// Position y coordinates (projected plane).
    pub ys: Vec<f64>,
}

/// Parameters of one selection query.
///
/// `tau` and `block_size` must match the snapshot bit-for-bit — influence
/// sets are τ-specific, so silently answering a different τ would be wrong.
/// Clients discover the snapshot's values via [`Request::Stats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Restrict selection to this candidate subset (global ids); `None`
    /// queries the full candidate set. Order and duplicates are irrelevant:
    /// the server canonicalises (sorts + dedups) before solving or caching.
    pub candidates: Option<Vec<u32>>,
    /// Number of sites to select (`1 ≤ k ≤` available candidates).
    pub k: usize,
    /// Influence threshold τ; must equal the snapshot's τ bit-for-bit.
    pub tau: f64,
    /// Verification block size; must equal the snapshot's value after
    /// canonicalisation (the auto sentinel resolves to the block size the
    /// snapshot stores, so `auto` and the resolved value are the same
    /// query — and the same cache entry).
    pub block_size: usize,
    /// Which selector runs the greedy selection. All selectors return
    /// byte-identical solutions; they differ only in work counters.
    pub selector: Selector,
    /// Whether the client solved (or will solve) its side of an A/B
    /// comparison with the exact-`exp` PF kernel. Serving runs zero PF
    /// evaluations — influence sets are precomputed — so this is a
    /// parity/debug field: it separates cache keys and is echoed back,
    /// but never changes an answer.
    pub pf_exact: bool,
    /// Competition model the client expects the answer under. Must match
    /// the model recorded in the snapshot META (the server rejects
    /// mismatches with a typed `model-mismatch` error). Defaults to
    /// cumulative, so pre-model clients keep working against cumulative
    /// snapshots unchanged.
    #[serde(default)]
    pub model: Model,
}

/// A solved query as returned to the client.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// The selected sites, per-round marginal gains and `cinf(G)` —
    /// byte-identical to a direct `solve_threaded` on the same instance.
    pub solution: Solution,
    /// Work counters of the selection phase.
    pub selection: SelectionStats,
    /// Pruning counters of the influence phase. Always
    /// [`PruneStats::default`] when served from a snapshot: loading runs
    /// zero influence-set evaluations.
    pub prune: PruneStats,
    /// Scatter/gather execution counters: shard and worker counts, event
    /// volume, and the busy/critical-path nanosecond split.
    pub gather: GatherStats,
    /// Whether this answer came from the result cache.
    pub cached: bool,
    /// FNV-1a hash of the canonical cache key (diagnostic aid).
    pub key_hash: u64,
}

/// Live server counters as reported by [`Request::Stats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReport {
    /// Metadata of the currently loaded snapshot.
    pub meta: SnapshotMeta,
    /// Total frames received (all verbs).
    pub requests: u64,
    /// Query frames received.
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that missed the cache and ran the selector.
    pub cache_misses: u64,
    /// Connections rejected by admission control.
    pub rejected: u64,
    /// Requests that produced an error response.
    pub errors: u64,
    /// Successful snapshot reloads since start.
    pub reloads: u64,
    /// Reloads applied as delta snapshots (a subset of `reloads`).
    pub delta_reloads: u64,
    /// Queries that joined another in-flight identical query instead of
    /// computing (request batching).
    pub coalesced: u64,
    /// User shards in the currently loaded snapshot.
    pub shards: u64,
    /// Connections currently waiting for a worker.
    pub queue_depth: u64,
    /// Worker-thread count.
    pub workers: u64,
    /// Result-cache capacity (`0` = caching disabled).
    pub cache_capacity: u64,
    /// Entries currently resident in the result cache.
    pub cache_len: u64,
    /// Median query latency in microseconds (histogram upper bound).
    pub p50_us: u64,
    /// 99th-percentile query latency in microseconds (histogram upper bound).
    pub p99_us: u64,
    /// Mobility events applied through the UPDATE verb since start.
    pub updates_applied: u64,
    /// Candidate sites whose membership actually flipped across all
    /// applied updates (the flip-set sizes, summed).
    pub flipped_candidates: u64,
    /// Update-buffer compactions run (each refresh compacts once).
    pub compactions: u64,
}

/// What one [`Request::Update`] batch did, as reported to the client.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateReport {
    /// Events applied (equals the batch length on success).
    pub applied: u64,
    /// Candidate sites whose influence-set membership changed for some
    /// touched user.
    pub flipped: u64,
    /// PF probability evaluations the flip-set re-verification spent.
    pub prob_evals: u64,
    /// Compactions run while absorbing this batch (the refresh runs one).
    pub compactions: u64,
    /// Shards (by the snapshot manifest in force *before* the batch) that
    /// contained a touched user — the scatter targets of the refresh.
    pub touched_shards: Vec<u32>,
    /// Server-assigned id the *next* `insert` will receive — clients
    /// replaying a stream map their external ids by counting from here.
    pub next_user_id: u32,
    /// Live users after the batch.
    pub n_users: u64,
}

/// A server → client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Query`].
    Answer(QueryAnswer),
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// Answer to [`Request::Update`].
    Updated(UpdateReport),
    /// Answer to [`Request::Propose`]: the ranked sites plus sweep shape
    /// counters, straight from the candidate-generation crate.
    Proposed(mc2ls_candgen::Proposal),
    /// Success acknowledgement for verbs without a payload.
    Done {
        /// Human-readable description of what happened.
        message: String,
    },
    /// Typed failure.
    Error {
        /// Stable machine-readable kind: `busy`, `query`, `snapshot`,
        /// `protocol`.
        kind: String,
        /// Human-readable explanation.
        message: String,
    },
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
/// Propagates socket write failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| ServeError::FrameTooLarge(payload.len() as u64))?;
    if len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge(u64::from(len)));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` means the peer closed the connection before
/// sending another length prefix (the clean end of a conversation).
///
/// # Errors
/// [`ServeError::FrameTooLarge`] on an implausible length prefix,
/// [`ServeError::Io`] on socket failures (including read timeouts, which
/// surface as `WouldBlock`/`TimedOut`).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ServeError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ServeError::Io(e)),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge(u64::from(len)));
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(ServeError::ConnectionClosed)
        }
        Err(e) => Err(ServeError::Io(e)),
    }
}

/// Serialises `msg` to JSON and writes it as one frame.
///
/// # Errors
/// Propagates [`write_frame`] failures.
pub fn send_message<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), ServeError> {
    let json = serde_json::to_string(msg)
        .map_err(|e| ServeError::Protocol(format!("message failed to serialise: {e}")))?;
    write_frame(w, json.as_bytes())
}

/// Reads one frame and parses it as `T`. `Ok(None)` mirrors
/// [`read_frame`]'s clean-close signal.
///
/// # Errors
/// [`ServeError::Protocol`] when the payload is not valid JSON of shape
/// `T`; all [`read_frame`] errors otherwise.
pub fn recv_message<T: Deserialize>(r: &mut impl Read) -> Result<Option<T>, ServeError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| ServeError::Protocol(format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| ServeError::Protocol(format!("unexpected message shape: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize>(msg: &T) -> T {
        let mut buf = Vec::new();
        send_message(&mut buf, msg).expect("send");
        recv_message(&mut &buf[..]).expect("recv").expect("some")
    }

    #[test]
    fn requests_round_trip() {
        let req = Request::Query(QueryRequest {
            candidates: Some(vec![3, 1, 2]),
            k: 2,
            tau: 0.7,
            block_size: 8,
            selector: Selector::Auto,
            pf_exact: true,
            model: Model::Logit,
        });
        match round_trip(&req) {
            Request::Query(q) => {
                assert_eq!(q.candidates, Some(vec![3, 1, 2]));
                assert_eq!(q.k, 2);
                assert_eq!(q.tau.to_bits(), 0.7f64.to_bits());
                assert_eq!(q.selector, Selector::Auto);
                assert!(q.pf_exact);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(matches!(round_trip(&Request::Ping), Request::Ping));
        assert!(matches!(round_trip(&Request::Shutdown), Request::Shutdown));
        match round_trip(&Request::Propose(ProposeRequest {
            window: 2.5,
            m: 12,
            min_separation: Some(0.75),
        })) {
            Request::Propose(p) => {
                assert_eq!(p.window.to_bits(), 2.5f64.to_bits());
                assert_eq!(p.m, 12);
                assert_eq!(p.min_separation.map(f64::to_bits), Some(0.75f64.to_bits()));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match round_trip(&Request::Reload {
            path: "/tmp/x.mc2s".into(),
        }) {
            Request::Reload { path } => assert_eq!(path, "/tmp/x.mc2s"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn answers_preserve_float_bits() {
        let ans = QueryAnswer {
            solution: Solution {
                selected: vec![5, 9],
                marginal_gains: vec![0.1 + 0.2, 1.0 / 3.0],
                cinf: 0.30000000000000004,
            },
            selection: SelectionStats::default(),
            prune: PruneStats::default(),
            gather: GatherStats {
                shards: 2,
                workers: 2,
                rounds: 2,
                scatter_events: 7,
                busy_ns: 10,
                critical_path_ns: 6,
                shared_epoch: true,
            },
            cached: true,
            key_hash: 0xDEAD_BEEF,
        };
        match round_trip(&Response::Answer(ans.clone())) {
            Response::Answer(back) => {
                assert_eq!(back.solution.selected, ans.solution.selected);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&back.solution.marginal_gains),
                    bits(&ans.solution.marginal_gains)
                );
                assert_eq!(back.solution.cinf.to_bits(), ans.solution.cinf.to_bits());
                assert_eq!(back.gather, ans.gather);
                assert!(back.cached);
                assert_eq!(back.key_hash, 0xDEAD_BEEF);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(ServeError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn truncated_frames_and_clean_closes_are_distinguished() {
        // No bytes at all: clean close.
        assert!(matches!(read_frame(&mut &[][..]), Ok(None)));
        // Length prefix but a short payload: hard error.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(ServeError::ConnectionClosed)
        ));
        // Garbage JSON is a protocol error.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{not json").expect("frame");
        assert!(matches!(
            recv_message::<Request>(&mut &buf[..]),
            Err(ServeError::Protocol(_))
        ));
    }
}
