//! Live server counters and a fixed-bucket latency histogram.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering): counters
//! are monotonic and independently meaningful, so no cross-counter
//! consistency is needed. The histogram uses power-of-two microsecond
//! buckets — bucket `i` covers `[2^(i-1), 2^i)` µs (bucket 0 is `< 1` µs) —
//! and reports quantiles as the upper bound of the bucket where the
//! cumulative count crosses the requested rank. That makes `p50`/`p99`
//! cheap, allocation-free and monotone, at the cost of ≤ 2× bucket
//! granularity, which is plenty for a serving dashboard.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: covers sub-µs through > 9 h latencies.
const BUCKETS: usize = 40;

/// A fixed power-of-two latency histogram in microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(us: u64) -> usize {
        let bits = 64 - us.leading_zeros() as usize;
        bits.min(BUCKETS - 1)
    }

    /// Records one observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        // lint:allow(panic-propagation): bucket_of clamps its result to BUCKETS - 1
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// The upper bound (µs) of the bucket holding the `q`-quantile
    /// observation, or `0` when nothing was recorded. `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; ceil avoids rank 0.
        let rank = ((clamped * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// The server's live counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total frames received (all verbs).
    pub requests: AtomicU64,
    /// Query frames received.
    pub queries: AtomicU64,
    /// Connections rejected by admission control.
    pub rejected: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
    /// Successful snapshot reloads.
    pub reloads: AtomicU64,
    /// Reloads applied as delta snapshots (a subset of `reloads`).
    pub delta_reloads: AtomicU64,
    /// Queries that joined an in-flight identical query (request
    /// batching) instead of running their own selection.
    pub coalesced: AtomicU64,
    /// Mobility events applied through the UPDATE verb.
    pub updates_applied: AtomicU64,
    /// Candidate sites whose membership flipped across applied updates.
    pub flipped_candidates: AtomicU64,
    /// Update-buffer compactions run.
    pub compactions: AtomicU64,
    /// Query latency distribution (µs, measured inside the worker).
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Relaxed increment helper for the counter fields.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed bulk-add helper for the counter fields.
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Relaxed read helper for the counter fields.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        for us in [3u64, 5, 9, 17, 33, 65, 129, 1025, 4097, 100_000] {
            h.record(us);
        }
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 >= 33, "p50 {p50}");
        assert!(p99 >= 100_000, "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn counters_bump_and_read() {
        let m = Metrics::default();
        Metrics::bump(&m.requests);
        Metrics::bump(&m.requests);
        Metrics::bump(&m.rejected);
        assert_eq!(Metrics::read(&m.requests), 2);
        assert_eq!(Metrics::read(&m.rejected), 1);
        assert_eq!(Metrics::read(&m.errors), 0);
    }
}
