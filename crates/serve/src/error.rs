//! Typed errors for the snapshot codec and the query service.
//!
//! Both error families implement `std::error::Error`; nothing in this crate
//! panics on malformed bytes, a dropped socket, or a missing file — those
//! are runtime conditions a server must survive (lint rule R2).

use mc2ls_geo::CodecError;

/// Failure loading or decoding a `.mc2s` snapshot container.
#[derive(Debug)]
pub enum SnapshotError {
    /// File-system failure reading or writing the container.
    Io(std::io::Error),
    /// The first four bytes are not the `MC2S` magic.
    BadMagic([u8; 4]),
    /// The container version is newer (or older) than this build understands.
    UnsupportedVersion(u32),
    /// A section arrived out of order or with an unknown tag.
    SectionOrder {
        /// The tag the fixed layout expects at this point.
        expected: &'static str,
        /// The four tag bytes actually found.
        found: [u8; 4],
    },
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Which section failed.
        section: &'static str,
        /// CRC recorded in the section header.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// A section payload failed its artifact codec or the container framing
    /// itself was malformed (`section == "container"`).
    Codec {
        /// Which section failed to decode.
        section: &'static str,
        /// The underlying codec error.
        source: CodecError,
    },
    /// Bytes remain after the final section.
    TrailingData(usize),
    /// The decoded artifacts disagree with each other or with the metadata
    /// header (e.g. differing user counts).
    Inconsistent(&'static str),
    /// A delta file (`.mc2d`) is structurally malformed, or a diff was
    /// requested between containers with different section structures.
    BadDelta(&'static str),
    /// A delta's base fingerprint (length + CRC) does not match the
    /// container it was applied to.
    DeltaBaseMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic(m) => {
                write!(f, "not an mc2s snapshot (magic {m:02x?})")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::SectionOrder { expected, found } => {
                write!(f, "expected section {expected:?}, found tag {found:02x?}")
            }
            SnapshotError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {section} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Codec { section, source } => {
                write!(f, "section {section} failed to decode: {source}")
            }
            SnapshotError::TrailingData(n) => {
                write!(f, "{n} trailing bytes after the final section")
            }
            SnapshotError::Inconsistent(what) => {
                write!(f, "snapshot artifacts disagree: {what}")
            }
            SnapshotError::BadDelta(what) => write!(f, "bad delta snapshot: {what}"),
            SnapshotError::DeltaBaseMismatch => {
                write!(f, "delta does not apply to this base snapshot (fingerprint mismatch)")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Codec { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Failure in the wire protocol, the client, or the server runtime.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (connect, read, write, timeouts).
    Io(std::io::Error),
    /// A frame announced a length beyond the protocol maximum.
    FrameTooLarge(u64),
    /// The peer closed the connection mid-conversation.
    ConnectionClosed,
    /// A frame's payload was not the JSON message shape expected.
    Protocol(String),
    /// The server answered with a typed error response.
    Remote {
        /// Stable machine-readable error kind (e.g. `busy`, `query`).
        kind: String,
        /// Human-readable explanation from the server.
        message: String,
    },
    /// Loading or saving a snapshot failed.
    Snapshot(SnapshotError),
    /// A query was rejected by the engine before selection ran.
    Query(crate::engine::QueryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the protocol maximum")
            }
            ServeError::ConnectionClosed => write!(f, "connection closed by peer"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Remote { kind, message } => {
                write!(f, "server error [{kind}]: {message}")
            }
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<crate::engine::QueryError> for ServeError {
    fn from(e: crate::engine::QueryError) -> Self {
        ServeError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SnapshotError::ChecksumMismatch {
            section: "ISET",
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("ISET"));
        let e = ServeError::Remote {
            kind: "busy".into(),
            message: "queue full".into(),
        };
        assert!(e.to_string().contains("busy"));
        let io = ServeError::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
