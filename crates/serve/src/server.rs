//! The concurrent TCP query server.
//!
//! Architecture: one non-blocking **acceptor** thread feeds accepted
//! connections into a bounded queue guarded by a mutex + condvar; `workers`
//! **worker** threads pop connections and serve them for their whole
//! lifetime (the protocol is request/response over a persistent
//! connection). Admission control happens at the queue: when it already
//! holds `max_pending` waiting connections, new arrivals are answered with
//! a typed `busy` error and closed — bounded memory, no silent drops.
//!
//! Shutdown (a [`Request::Shutdown`] frame or [`Server::shutdown`]) flips
//! one atomic flag. The acceptor stops accepting; workers finish the
//! request they are on, **drain the queue** (every already-admitted
//! connection still gets served), then exit. Workers notice the flag
//! between requests via the per-connection read timeout, so a quiet client
//! delays shutdown by at most `poll_interval`.
//!
//! Concurrent identical queries are **coalesced**: the first arrival of a
//! canonical cache key becomes the *leader* (optionally sleeping a short
//! coalesce window so near-simultaneous duplicates can pile on), runs the
//! selection once, and publishes the answer to every *joiner* waiting on
//! the same key — single-flight request batching on top of the engine's
//! epoch-shared gain materialisation.
//!
//! `RELOAD` accepts either a full `.mc2s` container or a `.mc2d` delta;
//! a delta is applied onto the raw bytes of the snapshot currently being
//! served (fingerprint-checked) and the spliced result is validated
//! exactly like a full snapshot before it replaces the engine.
//!
//! Nothing here panics on socket errors: failed writes to a dying peer are
//! dropped on the floor (the peer is gone; there is nobody to tell) and
//! every other failure path returns through [`ServeError`].

use crate::cache::{self, ResultCache};
use crate::engine::{QueryEngine, QueryError};
use crate::error::ServeError;
use crate::live::LiveUpdater;
use crate::metrics::Metrics;
use crate::protocol::{
    recv_message, send_message, ProposeRequest, QueryAnswer, QueryRequest, Request, Response,
    StatsReport, WireEvent,
};
use crate::{delta, SnapshotError};
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port `0` to let the OS pick a free port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Admission bound: connections allowed to wait for a worker. Arrivals
    /// beyond this are rejected with a `busy` error.
    pub max_pending: usize,
    /// Result-cache capacity in answers (`0` disables caching).
    pub cache_capacity: usize,
    /// Worker threads the selection phase fans out over per query.
    pub threads: usize,
    /// Socket read timeout; also the cadence at which idle workers notice
    /// the shutdown flag.
    pub poll_interval: Duration,
    /// Per-request deadline: a connection that goes this long without
    /// completing a request is answered with a `timeout` error and torn
    /// down, so a stalled peer cannot hold a worker forever.
    pub idle_timeout: Duration,
    /// How long the leader of a fresh query lingers before computing, so
    /// concurrent identical queries can join its flight instead of being
    /// serialised behind the cache. Zero (the default) disables the wait
    /// but keeps single-flight dedup.
    pub coalesce_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_pending: 64,
            cache_capacity: 256,
            threads: 1,
            poll_interval: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(30),
            coalesce_window: Duration::ZERO,
        }
    }
}

/// One in-flight computation of a canonical query key. The leader
/// publishes exactly once; joiners block on the condvar until then.
struct Flight {
    done: Mutex<Option<Result<QueryAnswer, QueryError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<QueryAnswer, QueryError>) {
        *lock(&self.done) = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<QueryAnswer, QueryError> {
        let mut guard = lock(&self.done);
        loop {
            if let Some(result) = guard.as_ref() {
                return result.clone();
            }
            guard = match self.cv.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

struct Shared {
    engine: RwLock<Arc<QueryEngine>>,
    /// Live-mode update state; `None` on snapshot-serving servers (the
    /// UPDATE verb is then a typed error).
    live: Option<Mutex<LiveUpdater>>,
    cache: Mutex<ResultCache>,
    /// Single-flight table: canonical key → the in-flight computation.
    batcher: Mutex<BTreeMap<Vec<u8>, Arc<Flight>>>,
    metrics: Metrics,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    config: ServerConfig,
}

/// Recovers the guard from a poisoned mutex: every structure behind these
/// locks is valid after any interleaving of the (panic-free) operations
/// performed under them, so continuing is safe and keeps the server up.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A running query server. Dropping the handle without calling
/// [`Server::shutdown`] leaves the threads running detached.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor plus worker threads.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the bind fails or the listener cannot be
    /// configured.
    pub fn start(config: ServerConfig, engine: QueryEngine) -> Result<Server, ServeError> {
        Server::start_inner(config, engine, None)
    }

    /// Like [`Server::start`], but in **live mode**: the server also owns
    /// an update engine and accepts the UPDATE verb, swapping the serving
    /// snapshot after each absorbed batch — the influence phase never
    /// re-runs.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the bind fails or the listener cannot be
    /// configured.
    pub fn start_live(
        config: ServerConfig,
        engine: QueryEngine,
        live: LiveUpdater,
    ) -> Result<Server, ServeError> {
        Server::start_inner(config, engine, Some(live))
    }

    fn start_inner(
        config: ServerConfig,
        engine: QueryEngine,
        live: Option<LiveUpdater>,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            engine: RwLock::new(Arc::new(engine)),
            live: live.map(Mutex::new),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            batcher: Mutex::new(BTreeMap::new()),
            metrics: Metrics::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            config: config.clone(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (by a client or locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until the server has shut down (a client sent
    /// [`Request::Shutdown`]) and every thread has drained and exited.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Requests shutdown locally and blocks until every thread has drained
    /// and exited.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake): keep
                // listening rather than killing the server.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn admit(mut stream: TcpStream, shared: &Shared) {
    let mut queue = lock(&shared.queue);
    if queue.len() >= shared.config.max_pending {
        drop(queue);
        Metrics::bump(&shared.metrics.rejected);
        // Best effort: the peer may already be gone.
        let _ = send_message(
            &mut stream,
            &Response::Error {
                kind: "busy".to_string(),
                message: "admission queue full, retry later".to_string(),
            },
        );
        return;
    }
    queue.push_back(stream);
    drop(queue);
    shared.queue_cv.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = next_connection(shared);
        match conn {
            Some(stream) => serve_connection(stream, shared),
            None => return,
        }
    }
}

/// Pops the next admitted connection, waiting on the condvar. Returns
/// `None` only when shutdown is flagged **and** the queue is drained, so
/// every admitted connection is served before workers exit.
fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = lock(&shared.queue);
    loop {
        if let Some(stream) = queue.pop_front() {
            return Some(stream);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        queue = match shared
            .queue_cv
            .wait_timeout(queue, shared.config.poll_interval)
        {
            Ok((guard, _timeout)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut deadline = Instant::now() + shared.config.idle_timeout;
    loop {
        let request: Request = match recv_message(&mut stream) {
            Ok(Some(req)) => {
                deadline = Instant::now() + shared.config.idle_timeout;
                req
            }
            Ok(None) => return, // peer closed cleanly
            Err(ServeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if Instant::now() >= deadline {
                    // Graceful teardown: tell the peer why, then free the
                    // worker for admitted connections that are alive.
                    let _ = send_message(
                        &mut stream,
                        &Response::Error {
                            kind: "timeout".to_string(),
                            message: "request deadline exceeded, closing connection".to_string(),
                        },
                    );
                    return;
                }
                continue;
            }
            Err(ServeError::ConnectionClosed) => return,
            Err(e) => {
                Metrics::bump(&shared.metrics.errors);
                let _ = send_message(
                    &mut stream,
                    &Response::Error {
                        kind: "protocol".to_string(),
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        Metrics::bump(&shared.metrics.requests);
        let (response, close) = dispatch(request, shared);
        if send_message(&mut stream, &response).is_err() {
            return; // peer vanished mid-response
        }
        if close {
            return;
        }
    }
}

/// Routes one request; the `bool` asks the connection loop to close after
/// responding.
fn dispatch(request: Request, shared: &Shared) -> (Response, bool) {
    match request {
        Request::Ping => (Response::Pong, false),
        Request::Query(query) => (handle_query(&query, shared), false),
        Request::Stats => (Response::Stats(stats_report(shared)), false),
        Request::Reload { path } => (handle_reload(&path, shared), false),
        Request::Update { events } => (handle_update(&events, shared), false),
        Request::Propose(req) => (handle_propose(&req, shared), false),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            shared.queue_cv.notify_all();
            (
                Response::Done {
                    message: "shutting down: draining admitted connections".to_string(),
                },
                true,
            )
        }
    }
}

fn handle_query(query: &QueryRequest, shared: &Shared) -> Response {
    let started = Instant::now();
    Metrics::bump(&shared.metrics.queries);

    // Clone the Arc so a concurrent reload never blocks behind a running
    // selection (and vice versa).
    let engine = match shared.engine.read() {
        Ok(guard) => Arc::clone(&guard),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    };

    // The cache key uses the *canonical* block size: `auto` and the
    // snapshot's resolved value name the same query, so they share one
    // entry (and one flight).
    let canon = query.candidates.as_deref().map(cache::canonical_subset);
    let key = cache::key_bytes(
        canon.as_deref(),
        query.k,
        query.tau,
        engine.canonical_block_size(query.block_size),
        query.selector,
        query.pf_exact,
        query.model,
    );
    let key_hash = cache::fnv1a64(&key);

    if let Some(mut answer) = lock(&shared.cache).get(&key) {
        answer.cached = true;
        record_latency(shared, started);
        return Response::Answer(answer);
    }

    // Single-flight: the first miss of a key becomes the leader; everyone
    // else joins its flight and receives the leader's answer.
    let (flight, leader) = {
        let mut batcher = lock(&shared.batcher);
        match batcher.get(&key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Flight::new());
                batcher.insert(key.clone(), Arc::clone(&flight));
                (flight, true)
            }
        }
    };

    let result = if leader {
        // Linger so near-simultaneous duplicates can pile onto the flight
        // before the (much longer) selection starts.
        if !shared.config.coalesce_window.is_zero() {
            std::thread::sleep(shared.config.coalesce_window);
        }
        let result = engine.answer(query).map(|mut answer| {
            answer.key_hash = key_hash;
            answer
        });
        flight.publish(result.clone());
        lock(&shared.batcher).remove(&key);
        if let Ok(answer) = &result {
            lock(&shared.cache).put(key, answer.clone());
        }
        result
    } else {
        Metrics::bump(&shared.metrics.coalesced);
        flight.wait()
    };

    match result {
        Ok(answer) => {
            record_latency(shared, started);
            Response::Answer(answer)
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            Response::Error {
                kind: format!("query:{}", e.kind()),
                message: e.to_string(),
            }
        }
    }
}

fn handle_propose(req: &ProposeRequest, shared: &Shared) -> Response {
    // Snapshot reads share the query plane's reload discipline: clone the
    // Arc so a concurrent reload never blocks behind a running sweep.
    let engine = match shared.engine.read() {
        Ok(guard) => Arc::clone(&guard),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    };
    // No caching or coalescing: the sweep is a bounded read over the
    // already-decoded position blocks, far cheaper than a selection.
    match engine.propose(req) {
        Ok(proposal) => Response::Proposed(proposal),
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            Response::Error {
                kind: format!("propose:{}", e.kind()),
                message: e.to_string(),
            }
        }
    }
}

fn record_latency(shared: &Shared, started: Instant) {
    let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.latency.record(us);
}

fn handle_reload(path: &str, shared: &Shared) -> Response {
    let loaded: Result<(QueryEngine, bool), SnapshotError> = (|| {
        let bytes = std::fs::read(std::path::Path::new(path)).map_err(SnapshotError::Io)?;
        if delta::is_delta(&bytes) {
            // Apply the delta onto the raw bytes of the snapshot being
            // served; the spliced result re-runs full validation.
            let base = match shared.engine.read() {
                Ok(guard) => Arc::clone(&guard),
                Err(poisoned) => Arc::clone(&poisoned.into_inner()),
            };
            let spliced = delta::apply(base.snapshot_bytes(), &bytes)?;
            Ok((
                QueryEngine::from_bytes(spliced, shared.config.threads)?,
                true,
            ))
        } else {
            Ok((
                QueryEngine::from_bytes(bytes, shared.config.threads)?,
                false,
            ))
        }
    })();
    match loaded {
        Ok((engine, was_delta)) => {
            let meta = engine.meta().clone();
            let shards = engine.n_shards();
            match shared.engine.write() {
                Ok(mut guard) => *guard = Arc::new(engine),
                Err(poisoned) => *poisoned.into_inner() = Arc::new(engine),
            }
            // Cached answers and pending flights belong to the old
            // snapshot epoch (in-flight leaders still publish to their
            // joiners; new arrivals start fresh flights).
            lock(&shared.cache).clear();
            lock(&shared.batcher).clear();
            Metrics::bump(&shared.metrics.reloads);
            if was_delta {
                Metrics::bump(&shared.metrics.delta_reloads);
            }
            Response::Done {
                message: format!(
                    "snapshot {:?} {}: {} users, {} candidates, {} shards, tau {}",
                    meta.name,
                    if was_delta {
                        "patched via delta"
                    } else {
                        "loaded"
                    },
                    meta.n_users,
                    meta.n_candidates,
                    shards,
                    meta.tau
                ),
            }
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            Response::Error {
                kind: "snapshot".to_string(),
                message: e.to_string(),
            }
        }
    }
}

/// Applies one UPDATE batch: validate + flip-set replay + compaction in
/// the live engine, then swap the serving snapshot exactly like a reload
/// (cache and flights belong to the old epoch). The influence phase never
/// re-runs — assembling the refreshed snapshot reuses the engine's sets.
fn handle_update(events: &[WireEvent], shared: &Shared) -> Response {
    let Some(live) = shared.live.as_ref() else {
        Metrics::bump(&shared.metrics.errors);
        return Response::Error {
            kind: "update:unsupported".to_string(),
            message: "server is not in live mode (start with --live to accept updates)".to_string(),
        };
    };
    // The manifest in force before the batch routes touched users to the
    // shards a delta-shipping follow-up would have to touch.
    let starts = {
        let engine = match shared.engine.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        };
        engine.meta().shard_starts.clone()
    };
    // lint:allow(hold-across-blocking): `live` serialises writers by design — queries never take it, and the joined compact workers belong to this batch
    let applied = lock(live).apply_batch(events, &starts);
    match applied {
        Ok((report, snapshot)) => {
            let engine = QueryEngine::new(snapshot, shared.config.threads);
            match shared.engine.write() {
                Ok(mut guard) => *guard = Arc::new(engine),
                Err(poisoned) => *poisoned.into_inner() = Arc::new(engine),
            }
            // New epoch: cached answers and pending flights are stale.
            lock(&shared.cache).clear();
            lock(&shared.batcher).clear();
            Metrics::add(&shared.metrics.updates_applied, report.applied);
            Metrics::add(&shared.metrics.flipped_candidates, report.flipped);
            Metrics::add(&shared.metrics.compactions, report.compactions);
            Response::Updated(report)
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            Response::Error {
                kind: "update:rejected".to_string(),
                message: e.to_string(),
            }
        }
    }
}

fn stats_report(shared: &Shared) -> StatsReport {
    let engine = match shared.engine.read() {
        Ok(guard) => Arc::clone(&guard),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    };
    let (cache_hits, cache_misses, cache_len, cache_capacity) = {
        let cache = lock(&shared.cache);
        let (h, m) = cache.counters();
        (h, m, cache.len() as u64, cache.capacity() as u64)
    };
    StatsReport {
        meta: engine.meta().clone(),
        requests: Metrics::read(&shared.metrics.requests),
        queries: Metrics::read(&shared.metrics.queries),
        cache_hits,
        cache_misses,
        rejected: Metrics::read(&shared.metrics.rejected),
        errors: Metrics::read(&shared.metrics.errors),
        reloads: Metrics::read(&shared.metrics.reloads),
        delta_reloads: Metrics::read(&shared.metrics.delta_reloads),
        coalesced: Metrics::read(&shared.metrics.coalesced),
        shards: engine.n_shards() as u64,
        queue_depth: lock(&shared.queue).len() as u64,
        workers: shared.config.workers.max(1) as u64,
        cache_capacity,
        cache_len,
        p50_us: shared.metrics.latency.quantile_upper_bound(0.5),
        p99_us: shared.metrics.latency.quantile_upper_bound(0.99),
        updates_applied: Metrics::read(&shared.metrics.updates_applied),
        flipped_candidates: Metrics::read(&shared.metrics.flipped_candidates),
        compactions: Metrics::read(&shared.metrics.compactions),
    }
}
