//! Live-mode state behind the UPDATE verb: an [`UpdateEngine`] absorbing
//! user-mobility events plus the snapshot template that turns its state
//! back into a servable [`Snapshot`] — no RELOAD, no rebuild.
//!
//! One batch = one epoch. [`LiveUpdater::apply_batch`] validates the whole
//! batch up front (all-or-nothing: a malformed event rejects the batch
//! before any state changes), replays the events through the engine's
//! flip-set path — only candidates whose `Pr_v(o) ≥ τ` decision can change
//! are re-verified — compacts the update buffers once, and assembles a
//! fresh snapshot from the already-current influence sets
//! ([`Snapshot::assemble`] runs zero PF verification evaluations). The
//! server swaps its query engine to that snapshot exactly like a reload,
//! except the influence phase never re-runs.
//!
//! **User ids.** Events address server-assigned dense ids. Inserts are
//! allocated sequentially from [`UpdateReport::next_user_id`]; while no
//! deletes occur the post-batch compaction renumbering is the identity, so
//! a replaying client can predict ids by counting its own inserts. After a
//! delete the compaction re-densifies ids; clients resynchronise from the
//! reported `next_user_id`.

use crate::protocol::{UpdateReport, WireEvent};
use crate::snapshot::{Snapshot, SnapshotMeta};
use mc2ls_core::{Problem, PruneStats, UpdateEngine, UserUpdate};
use mc2ls_geo::Point;
use mc2ls_influence::Sigmoid;

/// A batch rejected before any event was applied.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateBatchError {
    /// `op` is not one of `insert`, `delete`, `move`, `checkin`.
    BadOp(String),
    /// `xs` and `ys` have different lengths.
    LengthMismatch,
    /// An insert/move carried no positions, or a checkin carried a
    /// position count other than one.
    BadPositions,
    /// A coordinate is NaN or infinite.
    NonFinite,
    /// The event addresses an id that was never allocated.
    UnknownUser(u32),
    /// The event addresses an id already deleted (in the instance or
    /// earlier in this batch).
    DeadUser(u32),
}

impl std::fmt::Display for UpdateBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateBatchError::BadOp(op) => write!(f, "unknown event op {op:?}"),
            UpdateBatchError::LengthMismatch => write!(f, "xs/ys length mismatch"),
            UpdateBatchError::BadPositions => {
                write!(f, "insert/move need >= 1 position, checkin exactly 1")
            }
            UpdateBatchError::NonFinite => write!(f, "positions must be finite"),
            UpdateBatchError::UnknownUser(u) => write!(f, "unknown user id {u}"),
            UpdateBatchError::DeadUser(u) => write!(f, "user {u} was already deleted"),
        }
    }
}

impl std::error::Error for UpdateBatchError {}

/// The live half of an update-capable server: the incremental engine and
/// the metadata template snapshots are assembled from.
pub struct LiveUpdater {
    engine: UpdateEngine<Sigmoid>,
    meta: SnapshotMeta,
    pf: Sigmoid,
    threads: usize,
    n_shards: usize,
}

impl LiveUpdater {
    /// Builds the live state from a problem instance: runs the influence
    /// phase **once** and shares its sets between the update engine and
    /// the initial snapshot ([`Snapshot::assemble`] re-derives nothing).
    ///
    /// # Panics
    /// Propagates the workspace validation panics on a malformed problem
    /// (`threads == 0`, inconsistent shapes).
    pub fn new(
        name: &str,
        problem: &Problem<Sigmoid>,
        leaf_diagonal: f64,
        threads: usize,
        n_shards: usize,
    ) -> (LiveUpdater, Snapshot, PruneStats) {
        let method = mc2ls_core::Method::Iqt(mc2ls_core::IqtConfig::iqt(leaf_diagonal));
        let (sets, prune, _times) =
            mc2ls_core::algorithms::influence_sets_threaded(problem, method, threads);
        let meta = SnapshotMeta {
            name: name.to_string(),
            n_users: problem.n_users(),
            n_candidates: problem.n_candidates(),
            n_facilities: problem.n_facilities(),
            tau: problem.tau,
            block_size: problem.block_size,
            rho: problem.pf.rho,
            leaf_diagonal,
            default_k: problem.k,
            shard_starts: Vec::new(), // assemble() fills these in
            resolved_block_size: 1,
            model: problem.model,
        };
        let snapshot = Snapshot::assemble(
            meta.clone(),
            &problem.users,
            &problem.pf,
            &sets,
            threads,
            n_shards,
        );
        let engine = UpdateEngine::from_sets(problem, sets, threads);
        let live = LiveUpdater {
            engine,
            meta,
            pf: problem.pf,
            threads,
            n_shards,
        };
        (live, snapshot, prune)
    }

    /// Validates and applies one event batch, compacts, and assembles the
    /// refreshed snapshot. On `Err` the engine state is untouched.
    ///
    /// # Errors
    /// A typed [`UpdateBatchError`] naming the first offending event.
    pub fn apply_batch(
        &mut self,
        events: &[WireEvent],
        starts: &[u32],
    ) -> Result<(UpdateReport, Snapshot), UpdateBatchError> {
        self.validate(events)?;
        let before = self.engine.stats().clone();
        let mut touched: Vec<u32> = Vec::new();
        for ev in events {
            let update = self.decode(ev);
            // Validation guarantees applicability; a rejection here would
            // mean the simulation and the engine disagree.
            // lint:allow(panic-path): validate() simulated this exact batch against the same state
            let id = self.engine.apply(update).expect("pre-validated event");
            touched.push(id);
        }
        self.engine.compact();
        let after = self.engine.stats().clone();
        let snapshot = Snapshot::assemble(
            self.meta.clone(),
            self.engine.users(),
            &self.pf,
            self.engine.sets(),
            self.threads,
            self.n_shards,
        );
        let report = UpdateReport {
            applied: events.len() as u64,
            flipped: after.flipped - before.flipped,
            prob_evals: after.prob_evals - before.prob_evals,
            compactions: after.compactions - before.compactions,
            touched_shards: shards_of(&touched, starts),
            // lint:allow(narrowing-cast): slot count tracks the dense u32 user-id space
            next_user_id: self.engine.n_slots() as u32,
            n_users: self.engine.n_live() as u64,
        };
        Ok((report, snapshot))
    }

    /// The underlying engine (stats, state inspection).
    pub fn engine(&self) -> &UpdateEngine<Sigmoid> {
        &self.engine
    }

    /// Simulates the batch against the current alive set without mutating
    /// anything: all-or-nothing admission.
    fn validate(&self, events: &[WireEvent]) -> Result<(), UpdateBatchError> {
        let mut alive: Vec<bool> = (0..self.engine.n_slots())
            // lint:allow(narrowing-cast): slot count tracks the dense u32 user-id space
            .map(|o| self.engine.is_alive(o as u32))
            .collect();
        for ev in events {
            if ev.xs.len() != ev.ys.len() {
                return Err(UpdateBatchError::LengthMismatch);
            }
            let finite = ev.xs.iter().chain(ev.ys.iter()).all(|v| v.is_finite());
            let target = |alive: &[bool]| -> Result<usize, UpdateBatchError> {
                let u = ev.user as usize;
                match alive.get(u) {
                    None => Err(UpdateBatchError::UnknownUser(ev.user)),
                    Some(false) => Err(UpdateBatchError::DeadUser(ev.user)),
                    Some(true) => Ok(u),
                }
            };
            match ev.op.as_str() {
                "insert" => {
                    if ev.xs.is_empty() {
                        return Err(UpdateBatchError::BadPositions);
                    }
                    if !finite {
                        return Err(UpdateBatchError::NonFinite);
                    }
                    alive.push(true);
                }
                "delete" => {
                    let u = target(&alive)?;
                    // lint:allow(panic-propagation): target() just range-checked u against alive.len()
                    alive[u] = false;
                }
                "move" => {
                    if ev.xs.is_empty() {
                        return Err(UpdateBatchError::BadPositions);
                    }
                    if !finite {
                        return Err(UpdateBatchError::NonFinite);
                    }
                    target(&alive)?;
                }
                "checkin" => {
                    if ev.xs.len() != 1 {
                        return Err(UpdateBatchError::BadPositions);
                    }
                    if !finite {
                        return Err(UpdateBatchError::NonFinite);
                    }
                    target(&alive)?;
                }
                other => return Err(UpdateBatchError::BadOp(other.to_string())),
            }
        }
        Ok(())
    }

    /// Turns a validated wire event into the engine's event type. A
    /// checkin is a move to the current trajectory plus the new position.
    fn decode(&self, ev: &WireEvent) -> UserUpdate {
        let points = |ev: &WireEvent| -> Vec<Point> {
            ev.xs
                .iter()
                .zip(ev.ys.iter())
                .map(|(&x, &y)| Point::new(x, y))
                .collect()
        };
        match ev.op.as_str() {
            "insert" => UserUpdate::Insert {
                positions: points(ev),
            },
            "delete" => UserUpdate::Delete { user: ev.user },
            "move" => UserUpdate::Move {
                user: ev.user,
                positions: points(ev),
            },
            _ => {
                // "checkin" — the only op left after validation.
                let mut positions: Vec<Point> = self
                    .engine
                    .positions_of(ev.user)
                    .map(<[Point]>::to_vec)
                    .unwrap_or_default();
                positions.extend(points(ev));
                UserUpdate::Move {
                    user: ev.user,
                    positions,
                }
            }
        }
    }
}

/// Maps touched user ids to shard indices via the manifest in force before
/// the batch (ids at or past the last boundary — batch inserts — land in
/// the final shard). Sorted, deduplicated.
fn shards_of(touched: &[u32], starts: &[u32]) -> Vec<u32> {
    if starts.len() < 2 {
        return if touched.is_empty() { vec![] } else { vec![0] };
    }
    let mut out: Vec<u32> = touched
        .iter()
        .map(|&u| {
            // Count the interior boundaries at or below u; the result is
            // already capped at the last shard index by slicing.
            // lint:allow(panic-propagation): the starts.len() < 2 early return keeps the interior slice in bounds
            let i = starts[1..starts.len() - 1].partition_point(|&s| s <= u);
            // lint:allow(narrowing-cast): shard counts are operator-configured small integers
            i as u32
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_mapping_clamps_and_dedups() {
        // starts = [0, 3, 6, 10]: shard 0 = 0..3, 1 = 3..6, 2 = 6..10.
        let starts = vec![0u32, 3, 6, 10];
        assert_eq!(shards_of(&[], &starts), Vec::<u32>::new());
        assert_eq!(shards_of(&[0, 2], &starts), vec![0]);
        assert_eq!(shards_of(&[5, 3], &starts), vec![1]);
        assert_eq!(shards_of(&[9, 0, 4], &starts), vec![0, 1, 2]);
        // Past-the-end ids (batch inserts) clamp to the last shard.
        assert_eq!(shards_of(&[25], &starts), vec![2]);
        // Degenerate manifest: everything is shard 0.
        assert_eq!(shards_of(&[7], &[0]), vec![0]);
    }
}
