//! `mc2ls-serve`: sharded snapshot persistence and a concurrent
//! scatter/gather query-serving subsystem for MC²LS.
//!
//! The crate splits into two halves:
//!
//! * **Snapshot persistence** ([`snapshot`], [`view`], [`delta`]): the
//!   versioned, little-endian `.mc2s` container bundling every index
//!   artifact a query needs — per user shard, the
//!   [`mc2ls_core::InfluenceSets`] CSR, the [`mc2ls_core::InvertedIndex`]
//!   and the [`mc2ls_influence::PositionBlocks`] SoA, plus the global
//!   [`mc2ls_index::IQuadTree`] — each in its own CRC-checked section.
//!   [`view::LoadedSnapshot`] loads it **zero-copy**: CSR arrays are
//!   borrowed straight from the file bytes (safe Rust, validated once), so
//!   cold start is I/O-dominated, with **zero** influence-set evaluations
//!   and no position/tree decode. [`delta`] ships only changed section
//!   groups, fingerprinted against a base container.
//! * **Query service** ([`server`]): a dependency-free thread-per-worker TCP
//!   server speaking length-prefixed JSON ([`protocol`]), with a bounded
//!   admission queue (connections beyond the bound are rejected with a
//!   typed `busy` error), a deterministic LRU result cache ([`cache`])
//!   keyed on canonicalised queries, single-flight request batching,
//!   live counters and a latency histogram ([`metrics`]), snapshot
//!   hot-reload (full or delta), and a graceful drain on shutdown.
//!
//! Answers are byte-identical to a direct [`mc2ls_core::algorithms::
//! solve_threaded`] run on the same instance: the engine ([`engine`])
//! replays the selection phase through the scatter/gather plan
//! ([`mc2ls_core::shard`]) over the persisted per-shard CSRs (or a
//! canonical candidate-subset slice of them), which the workspace
//! guarantees is bit-equal at every shard and thread count.
//!
//! Everything on a network or file error path returns a typed error
//! ([`ServeError`] / [`SnapshotError`]) — no panicking shortcuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod delta;
pub mod engine;
pub mod error;
pub mod live;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod view;

pub use cache::ResultCache;
pub use client::Client;
pub use engine::{ProposeError, QueryEngine, QueryError};
pub use error::{ServeError, SnapshotError};
pub use live::{LiveUpdater, UpdateBatchError};
pub use metrics::Metrics;
pub use protocol::{
    ProposeRequest, QueryAnswer, QueryRequest, Request, Response, StatsReport, UpdateReport,
    WireEvent,
};
pub use server::{Server, ServerConfig};
pub use snapshot::{ShardArtifacts, Snapshot, SnapshotMeta};
pub use view::LoadedSnapshot;
