//! `mc2ls-serve`: snapshot persistence and a concurrent query-serving
//! subsystem for MC²LS.
//!
//! The crate splits into two halves:
//!
//! * **Snapshot persistence** ([`snapshot`]): the versioned, little-endian
//!   `.mc2s` container bundling every index artifact a query needs — the
//!   [`mc2ls_core::InfluenceSets`] CSR, the [`mc2ls_core::InvertedIndex`],
//!   the [`mc2ls_influence::PositionBlocks`] SoA and the
//!   [`mc2ls_index::IQuadTree`] — each in its own CRC-checked section.
//!   Loading a snapshot restores the full serving state with **zero**
//!   influence-set evaluations.
//! * **Query service** ([`server`]): a dependency-free thread-per-worker TCP
//!   server speaking length-prefixed JSON ([`protocol`]), with a bounded
//!   admission queue (connections beyond the bound are rejected with a
//!   typed `busy` error), a deterministic LRU result cache ([`cache`]),
//!   live counters and a latency histogram ([`metrics`]), snapshot
//!   hot-reload, and a graceful drain on shutdown.
//!
//! Answers are byte-identical to a direct [`mc2ls_core::algorithms::
//! solve_threaded`] run on the same instance: the engine ([`engine`])
//! replays the selection phase over the persisted CSR (or a canonical
//! candidate-subset slice of it), which the workspace guarantees is
//! bit-equal at every thread count.
//!
//! Everything on a network or file error path returns a typed error
//! ([`ServeError`] / [`SnapshotError`]) — no panicking shortcuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use cache::ResultCache;
pub use client::Client;
pub use engine::{QueryEngine, QueryError};
pub use error::{ServeError, SnapshotError};
pub use metrics::Metrics;
pub use protocol::{QueryAnswer, QueryRequest, Request, Response, StatsReport};
pub use server::{Server, ServerConfig};
pub use snapshot::{Snapshot, SnapshotMeta};
