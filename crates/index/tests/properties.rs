//! Property-based tests: every index must agree with brute force, and the
//! IQuad-tree's IS/NIR classification must never contradict the exact
//! influence model.

use mc2ls_geo::{Point, Rect};
use mc2ls_index::{setops, GridIndex, IQuadTree, KdTree, QuadTree, RTree};
use mc2ls_influence::{influences, MovingUser, Sigmoid};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-30.0f64..30.0, -30.0f64..30.0).prop_map(|(x, y)| Point::new(x, y))
}

fn items() -> impl Strategy<Value = Vec<(u32, Point)>> {
    prop::collection::vec(pt(), 0..300).prop_map(|ps| {
        ps.into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect()
    })
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), pt()).prop_map(|(a, b)| Rect::new(a, b))
}

fn brute(items: &[(u32, Point)], r: &Rect) -> Vec<u32> {
    let mut v: Vec<u32> = items
        .iter()
        .filter(|(_, p)| r.contains(p))
        .map(|(id, _)| *id)
        .collect();
    v.sort_unstable();
    v
}

fn users() -> impl Strategy<Value = Vec<MovingUser>> {
    prop::collection::vec(prop::collection::vec(pt(), 1..15), 1..40)
        .prop_map(|us| us.into_iter().map(MovingUser::new).collect())
}

proptest! {
    #[test]
    fn rtree_bulk_matches_brute(items in items(), r in rect()) {
        let t = RTree::bulk_load(items.clone());
        prop_assert_eq!(t.range_rect(&r), brute(&items, &r));
    }

    #[test]
    fn rtree_insert_matches_brute(items in items(), r in rect()) {
        let mut t = RTree::new();
        for (id, p) in &items {
            t.insert(*id, *p);
        }
        prop_assert_eq!(t.range_rect(&r), brute(&items, &r));
    }

    #[test]
    fn rtree_nearest_matches_brute(items in items(), q in pt()) {
        let t = RTree::bulk_load(items.clone());
        match t.nearest(&q) {
            None => prop_assert!(items.is_empty()),
            Some((id, p)) => {
                let best = items.iter()
                    .map(|(i, pt)| (q.distance_sq(pt), *i))
                    .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .unwrap();
                prop_assert_eq!(q.distance_sq(&p), best.0);
                prop_assert_eq!(id, best.1);
            }
        }
    }

    #[test]
    fn quadtree_matches_brute(items in items(), r in rect()) {
        let t = QuadTree::build(items.clone());
        prop_assert_eq!(t.range_rect(&r), brute(&items, &r));
    }

    #[test]
    fn grid_matches_brute(items in items(), r in rect(), cell in 0.5f64..20.0) {
        let t = GridIndex::build(items.clone(), cell);
        prop_assert_eq!(t.range_rect(&r), brute(&items, &r));
    }

    #[test]
    fn kdtree_matches_brute(items in items(), r in rect(), q in pt()) {
        let t = KdTree::build(items.clone());
        prop_assert_eq!(t.range_rect(&r), brute(&items, &r));
        match t.nearest(&q) {
            None => prop_assert!(items.is_empty()),
            Some((id, p)) => {
                let best = items.iter()
                    .map(|(i, pt)| (q.distance_sq(pt), *i))
                    .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .unwrap();
                prop_assert_eq!(q.distance_sq(&p), best.0);
                prop_assert_eq!(id, best.1);
            }
        }
    }

    /// The IQuad-tree three-way classification is exact on both certain
    /// sides: `influenced` ⇒ truly influenced; pruned ⇒ truly not.
    #[test]
    fn iquadtree_classification_sound(us in users(), v in pt(),
                                      tau in 0.1f64..0.9, d_hat in 0.5f64..4.0) {
        let pf = Sigmoid::paper_default();
        let mut t = IQuadTree::build(&us, &pf, tau, d_hat);
        t.validate();
        let out = t.traverse(&v);
        // The traversal fills omega caches; the hierarchy must survive it.
        t.validate();
        prop_assert!(setops::intersect(&out.influenced, &out.to_verify).is_empty());
        for (uid, u) in us.iter().enumerate() {
            let truth = influences(&pf, &v, u.positions(), tau);
            let uid = uid as u32;
            if setops::contains(&out.influenced, uid) {
                prop_assert!(truth, "IS admitted user {} wrongly", uid);
            } else if !setops::contains(&out.to_verify, uid) {
                prop_assert!(!truth, "NIR pruned influenced user {}", uid);
            }
        }
    }

    /// Traversing twice (batch-wise cache) returns identical outcomes.
    #[test]
    fn iquadtree_traverse_idempotent(us in users(), v in pt(), tau in 0.1f64..0.9) {
        let pf = Sigmoid::paper_default();
        let mut t = IQuadTree::build(&us, &pf, tau, 2.0);
        let a = t.traverse(&v);
        let b = t.traverse(&v);
        t.validate();
        prop_assert_eq!(a.influenced, b.influenced);
        prop_assert_eq!(a.to_verify, b.to_verify);
    }

    /// Streaming inserts are equivalent to batch construction: traversals
    /// after interleaved inserts match a tree built with all users.
    #[test]
    fn iquadtree_incremental_matches_batch(us in users(), v in pt(),
                                           split in 1usize..10, tau in 0.2f64..0.8) {
        let pf = Sigmoid::paper_default();
        let split = split.min(us.len());
        let mut batch = IQuadTree::build(&us, &pf, tau, 2.0);
        let mut inc = IQuadTree::build(&us[..split], &pf, tau, 2.0);
        for u in &us[split..] {
            let _ = inc.traverse(&v); // populate caches mid-stream
            // The incremental tree's root region covers only the first
            // chunk; instances whose later users roam outside it are not
            // applicable to this property (the insert is a rejected no-op).
            let region = inc.root_region();
            if u.positions().iter().all(|p| region.contains(p)) {
                inc.insert_user(u, &pf, tau).unwrap();
            } else {
                return Ok(());
            }
        }
        let a = batch.traverse(&v);
        let b = inc.traverse(&v);
        prop_assert_eq!(a.influenced, b.influenced);
        prop_assert_eq!(a.to_verify, b.to_verify);
    }

    /// After removing a user, traversal stays sound and complete for the
    /// remaining users and never mentions the removed one — even with
    /// caches warmed before the removal. (Comparing against a rebuilt tree
    /// is NOT a valid oracle: removal can change the data extent, and a
    /// differently-rooted tree partitions decisions differently while
    /// remaining equally sound.)
    #[test]
    fn iquadtree_remove_stays_sound(us in users(), v in pt(),
                                    victim in 0usize..40, tau in 0.2f64..0.8) {
        let pf = Sigmoid::paper_default();
        let victim = victim % us.len();
        let mut t = IQuadTree::build(&us, &pf, tau, 2.0);
        let _ = t.traverse(&v); // warm caches before removal
        prop_assert_eq!(t.remove_user(victim as u32), us[victim].len());
        let out = t.traverse(&v);
        prop_assert!(!setops::contains(&out.influenced, victim as u32));
        prop_assert!(!setops::contains(&out.to_verify, victim as u32));
        for (uid, u) in us.iter().enumerate() {
            if uid == victim {
                continue;
            }
            let truth = influences(&pf, &v, u.positions(), tau);
            let uid = uid as u32;
            if setops::contains(&out.influenced, uid) {
                prop_assert!(truth, "IS admitted user {} wrongly after removal", uid);
            } else if !setops::contains(&out.to_verify, uid) {
                prop_assert!(!truth, "pruned influenced user {} after removal", uid);
            }
        }
    }

    /// Replacing a trajectory via move_user keeps the id stable and the
    /// classification sound and complete for the *new* trajectory — with
    /// caches warmed before and after the move.
    #[test]
    fn iquadtree_move_stays_sound(us in users(), v in pt(),
                                  mover in 0usize..40, tau in 0.2f64..0.8,
                                  to in pt()) {
        let pf = Sigmoid::paper_default();
        let mover = mover % us.len();
        let mut t = IQuadTree::build(&us, &pf, tau, 2.0);
        let _ = t.traverse(&v); // warm caches before the move
        let replacement = MovingUser::new(vec![to]);
        if !t.root_region().contains(&to) {
            // Out-of-region targets are a rejected no-op.
            prop_assert!(t.move_user(mover as u32, &replacement, &pf, tau).is_err());
            return Ok(());
        }
        prop_assert_eq!(
            t.move_user(mover as u32, &replacement, &pf, tau),
            Ok(us[mover].len())
        );
        t.validate();
        let out = t.traverse(&v);
        t.validate();
        for (uid, u) in us.iter().enumerate() {
            let positions = if uid == mover { replacement.positions() } else { u.positions() };
            let truth = influences(&pf, &v, positions, tau);
            let uid = uid as u32;
            if setops::contains(&out.influenced, uid) {
                prop_assert!(truth, "IS admitted user {} wrongly after move", uid);
            } else if !setops::contains(&out.to_verify, uid) {
                prop_assert!(!truth, "pruned influenced user {} after move", uid);
            }
        }
    }

    /// users_with_position_in agrees with a brute-force scan.
    #[test]
    fn iquadtree_user_query_matches_brute(us in users(), r in rect()) {
        let pf = Sigmoid::paper_default();
        let t = IQuadTree::build(&us, &pf, 0.5, 2.0);
        let got = t.users_with_position_in(&r);
        let mut want: Vec<u32> = us.iter().enumerate()
            .filter(|(_, u)| u.positions().iter().any(|p| r.contains(p)))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
