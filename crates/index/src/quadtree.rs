//! A classic region point quad-tree (Finkel & Bentley 1974).
//!
//! This is the structural ancestor of the paper's IQuad-tree: the same
//! four-way square subdivision, but storing raw points with a bucket
//! capacity instead of per-user count summaries. It serves as the indexing
//! comparator in the Table II-style experiments and as an ablation: what the
//! hierarchy alone buys without the η/NIR machinery.

use mc2ls_geo::{Point, Rect, Square};

/// Bucket capacity: a leaf holding more than this many points subdivides
/// (unless it has reached `MAX_DEPTH`).
pub const BUCKET_CAPACITY: usize = 32;
/// Hard depth cap to keep degenerate (duplicate-heavy) data from recursing
/// forever.
pub const MAX_DEPTH: usize = 24;

#[derive(Debug, Clone)]
struct QNode {
    square: Square,
    /// Indices of the four children in the arena, when subdivided.
    children: Option<[usize; 4]>,
    /// `(id, point)` entries; non-empty only in leaves.
    entries: Vec<(u32, Point)>,
}

/// A bucketed point quad-tree over a square region.
#[derive(Debug, Clone)]
pub struct QuadTree {
    nodes: Vec<QNode>,
    len: usize,
}

impl QuadTree {
    /// Creates an empty tree covering `region` (grown to a square).
    pub fn new(region: Rect) -> Self {
        let side = region.width().max(region.height()).max(f64::MIN_POSITIVE);
        let square = Square::new(region.min, side);
        QuadTree {
            nodes: vec![QNode {
                square,
                children: None,
                entries: Vec::new(),
            }],
            len: 0,
        }
    }

    /// Builds a tree from a point set, sizing the region automatically.
    pub fn build(items: Vec<(u32, Point)>) -> Self {
        let mut extent = mc2ls_geo::Extent::new();
        for (_, p) in &items {
            extent.add(*p);
        }
        let region = extent
            .padded_rect(1e-9)
            .unwrap_or_else(|| Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)));
        let mut tree = QuadTree::new(region);
        for (id, p) in items {
            tree.insert(id, p);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no point is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point. Points outside the region are clamped into it (the
    /// MC²LS loaders always size the region first, so this is a safety net,
    /// not a code path relied upon).
    pub fn insert(&mut self, id: u32, p: Point) {
        let sq = self.nodes[0].square;
        let rect = sq.rect();
        let clamped = Point::new(
            p.x.clamp(rect.min.x, rect.max.x),
            p.y.clamp(rect.min.y, rect.max.y),
        );
        self.len += 1;
        self.insert_rec(0, id, clamped, 0);
    }

    fn insert_rec(&mut self, idx: usize, id: u32, p: Point, depth: usize) {
        if let Some(children) = self.nodes[idx].children {
            let q = self.nodes[idx].square.quadrant_of(&p);
            self.insert_rec(children[q], id, p, depth + 1);
            return;
        }
        self.nodes[idx].entries.push((id, p));
        if self.nodes[idx].entries.len() > BUCKET_CAPACITY && depth < MAX_DEPTH {
            self.subdivide(idx, depth);
        }
    }

    fn subdivide(&mut self, idx: usize, depth: usize) {
        let quadrants = self.nodes[idx].square.quadrants();
        let first_child = self.nodes.len();
        for q in quadrants {
            self.nodes.push(QNode {
                square: q,
                children: None,
                entries: Vec::new(),
            });
        }
        let children = [
            first_child,
            first_child + 1,
            first_child + 2,
            first_child + 3,
        ];
        let entries = std::mem::take(&mut self.nodes[idx].entries);
        self.nodes[idx].children = Some(children);
        for (id, p) in entries {
            let q = self.nodes[idx].square.quadrant_of(&p);
            self.insert_rec(children[q], id, p, depth + 1);
        }
    }

    /// Calls `f(id, point)` for every entry inside `rect`.
    pub fn for_each_in_rect<F: FnMut(u32, Point)>(&self, rect: &Rect, mut f: F) {
        self.query_rec(0, rect, &mut f);
    }

    fn query_rec<F: FnMut(u32, Point)>(&self, idx: usize, rect: &Rect, f: &mut F) {
        let node = &self.nodes[idx];
        if !node.square.rect().intersects(rect) {
            return;
        }
        for (id, p) in &node.entries {
            if rect.contains(p) {
                f(*id, *p);
            }
        }
        if let Some(children) = node.children {
            for c in children {
                self.query_rec(c, rect, f);
            }
        }
    }

    /// Ids of entries inside `rect`, sorted.
    pub fn range_rect(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_rect(rect, |id, _| out.push(id));
        out.sort_unstable();
        out
    }

    /// Total node count (for index-size statistics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<(u32, Point)> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f64 / 10.0;
                let y = ((i * 40503) % 1000) as f64 / 10.0;
                (i as u32, Point::new(x, y))
            })
            .collect()
    }

    #[test]
    fn build_and_query_matches_brute_force() {
        let items = scatter(1000);
        let t = QuadTree::build(items.clone());
        assert_eq!(t.len(), 1000);
        let rect = Rect::new(Point::new(10.0, 20.0), Point::new(60.0, 80.0));
        let mut want: Vec<u32> = items
            .iter()
            .filter(|(_, p)| rect.contains(p))
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(t.range_rect(&rect), want);
    }

    #[test]
    fn empty_and_small_queries() {
        let t = QuadTree::build(vec![]);
        assert!(t.is_empty());
        let t = QuadTree::build(vec![(7, Point::new(1.0, 1.0))]);
        let hit = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let miss = Rect::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0));
        assert_eq!(t.range_rect(&hit), vec![7]);
        assert!(t.range_rect(&miss).is_empty());
    }

    #[test]
    fn subdivides_past_bucket_capacity() {
        let t = QuadTree::build(scatter(500));
        assert!(t.node_count() > 1, "expected subdivision");
    }

    #[test]
    fn duplicate_points_capped_by_depth() {
        // 100 identical points cannot be separated; the depth cap must stop
        // the recursion.
        let items: Vec<(u32, Point)> = (0..100).map(|i| (i, Point::new(5.0, 5.0))).collect();
        let t = QuadTree::build(items);
        assert_eq!(t.len(), 100);
        let rect = Rect::new(Point::new(4.0, 4.0), Point::new(6.0, 6.0));
        assert_eq!(t.range_rect(&rect).len(), 100);
    }
}
