//! Spatial index substrates for the MC²LS reproduction.
//!
//! * [`RTree`] — a from-scratch point R-tree (Guttman insert with quadratic
//!   split + STR bulk loading). The paper's Adapted k-CIFP baseline
//!   (Algorithm 1) indexes candidates and facilities in two R-trees `RT_C`
//!   and `RT_F` and runs IA/NIB range queries against them.
//! * [`QuadTree`] — a classic region point quad-tree (Finkel & Bentley),
//!   used as a structural comparator for the IQuad-tree ablation and for
//!   Table II-style indexing-cost experiments.
//! * [`GridIndex`] — a uniform grid, the simplest batch-wise baseline.
//! * [`KdTree`] — a balanced median-split kd-tree, a further comparator
//!   for the indexing-cost experiments.
//! * [`IQuadTree`] — the paper's contribution (§V-C): a user-MBR-free index
//!   whose nodes carry per-user position counts, with the `⟨diagonal, η⟩`
//!   hash and the batch-wise `Traverse` procedure (Algorithm 3) implementing
//!   the IS (Lemma 2) and NIR (Lemma 3) pruning rules.
//! * [`setops`] — merge-based operations on sorted id vectors, shared by the
//!   traversal and the algorithm layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
pub mod iquadtree;
mod kdtree;
mod quadtree;
pub mod rtree;
pub mod setops;

pub use grid::GridIndex;
pub use iquadtree::{IQuadTree, IqtStats, TraverseOutcome, TraverseScratch};
pub use kdtree::KdTree;
pub use quadtree::QuadTree;
pub use rtree::RTree;
