//! A uniform grid index over points.
//!
//! The simplest batch-wise spatial structure: cells of fixed side length,
//! each holding its entries. Used as an indexing-cost baseline next to the
//! R-tree/quad-tree in the Table II-style experiments, and by the dataset
//! generators for density estimation when sampling POI-like candidate and
//! facility sites.

use mc2ls_geo::{Point, Rect};

/// A fixed-resolution grid of point buckets.
#[derive(Debug, Clone)]
pub struct GridIndex {
    origin: Point,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<(u32, Point)>>,
    len: usize,
}

impl GridIndex {
    /// Builds a grid over `region` with cells of side `cell_size` km.
    pub fn new(region: Rect, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let cols = (region.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (region.height() / cell_size).ceil().max(1.0) as usize;
        GridIndex {
            origin: region.min,
            cell: cell_size,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Builds a grid sized to a point set.
    pub fn build(items: Vec<(u32, Point)>, cell_size: f64) -> Self {
        let mut extent = mc2ls_geo::Extent::new();
        for (_, p) in &items {
            extent.add(*p);
        }
        let region = extent
            .padded_rect(1e-9)
            .unwrap_or_else(|| Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)));
        let mut g = GridIndex::new(region, cell_size);
        for (id, p) in items {
            g.insert(id, p);
        }
        g
    }

    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell).floor();
        let cy = ((p.y - self.origin.y) / self.cell).floor();
        (
            (cx.max(0.0) as usize).min(self.cols - 1),
            (cy.max(0.0) as usize).min(self.rows - 1),
        )
    }

    /// Inserts a point (clamped to the grid region).
    pub fn insert(&mut self, id: u32, p: Point) {
        let (cx, cy) = self.cell_of(&p);
        self.buckets[cy * self.cols + cx].push((id, p));
        self.len += 1;
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no point is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Number of points per cell, row-major — the density histogram the
    /// data generators use for POI sampling.
    pub fn cell_counts(&self) -> Vec<usize> {
        self.buckets.iter().map(|b| b.len()).collect()
    }

    /// Calls `f(id, point)` for every entry inside `rect`.
    pub fn for_each_in_rect<F: FnMut(u32, Point)>(&self, rect: &Rect, mut f: F) {
        if self.len == 0 {
            return;
        }
        let (cx0, cy0) = self.cell_of(&rect.min);
        let (cx1, cy1) = self.cell_of(&rect.max);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for (id, p) in &self.buckets[cy * self.cols + cx] {
                    if rect.contains(p) {
                        f(*id, *p);
                    }
                }
            }
        }
    }

    /// Ids of entries inside `rect`, sorted.
    pub fn range_rect(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_rect(rect, |id, _| out.push(id));
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<(u32, Point)> {
        (0..n)
            .map(|i| {
                let x = ((i * 48271) % 997) as f64 / 10.0;
                let y = ((i * 16807) % 997) as f64 / 10.0;
                (i as u32, Point::new(x, y))
            })
            .collect()
    }

    #[test]
    fn range_query_matches_brute_force() {
        let items = scatter(800);
        let g = GridIndex::build(items.clone(), 5.0);
        let rect = Rect::new(Point::new(12.0, 30.0), Point::new(55.0, 71.0));
        let mut want: Vec<u32> = items
            .iter()
            .filter(|(_, p)| rect.contains(p))
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(g.range_rect(&rect), want);
    }

    #[test]
    fn query_outside_region_is_empty_or_clamped() {
        let g = GridIndex::build(scatter(100), 10.0);
        let far = Rect::new(Point::new(1000.0, 1000.0), Point::new(1001.0, 1001.0));
        assert!(g.range_rect(&far).is_empty());
    }

    #[test]
    fn cell_counts_sum_to_len() {
        let g = GridIndex::build(scatter(321), 7.0);
        assert_eq!(g.cell_counts().iter().sum::<usize>(), 321);
        assert_eq!(g.len(), 321);
    }

    #[test]
    fn single_cell_grid() {
        let g = GridIndex::build(vec![(1, Point::new(0.5, 0.5))], 100.0);
        assert_eq!(g.dims(), (1, 1));
        assert_eq!(
            g.range_rect(&Rect::new(Point::ORIGIN, Point::new(1.0, 1.0))),
            vec![1]
        );
    }
}
