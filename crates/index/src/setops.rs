//! Merge-based set operations over **sorted, deduplicated** id vectors.
//!
//! The pruning pipeline manipulates many user-id sets (`Ω_inf`, `Ω_vrf`,
//! `Ω_v`, `Ω_v^NIB`, …). Sorted vectors beat hash sets here: the sets are
//! built once, iterated many times, and merged pairwise — all linear scans
//! with no hashing or allocation churn.

/// Merges two sorted id slices into their sorted union.
pub fn union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Folds `b` into the sorted vector `a` in place (sorted union).
pub fn union_into(a: &mut Vec<u32>, b: &[u32]) {
    if b.is_empty() {
        return;
    }
    if a.is_empty() {
        a.extend_from_slice(b);
        return;
    }
    *a = union(a, b);
}

/// Sorted intersection of two sorted id slices.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Sorted difference `a \ b` of two sorted id slices.
pub fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// Binary-search membership test on a sorted slice.
#[inline]
pub fn contains(a: &[u32], x: u32) -> bool {
    a.binary_search(&x).is_ok()
}

/// Sorts and deduplicates in place, producing a canonical set vector.
pub fn normalize(v: &mut Vec<u32>) {
    v.sort_unstable();
    v.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_and_dedups() {
        assert_eq!(union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union(&[], &[1, 2]), vec![1, 2]);
        assert_eq!(union(&[1, 2], &[]), vec![1, 2]);
    }

    #[test]
    fn union_into_matches_union() {
        let mut a = vec![1, 4, 9];
        union_into(&mut a, &[2, 4, 10]);
        assert_eq!(a, vec![1, 2, 4, 9, 10]);
        let mut e: Vec<u32> = vec![];
        union_into(&mut e, &[7]);
        assert_eq!(e, vec![7]);
    }

    #[test]
    fn intersect_keeps_common() {
        assert_eq!(intersect(&[1, 2, 3, 5], &[2, 3, 4, 5]), vec![2, 3, 5]);
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<u32>::new());
    }

    #[test]
    fn difference_removes_members() {
        assert_eq!(difference(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(difference(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(difference(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn contains_binary_search() {
        assert!(contains(&[1, 5, 9], 5));
        assert!(!contains(&[1, 5, 9], 6));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut v = vec![5, 1, 5, 3, 1];
        normalize(&mut v);
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn set_algebra_identity() {
        // |A ∪ B| = |A| + |B| − |A ∩ B| on arbitrary sorted sets.
        let a = vec![1, 4, 6, 8, 11];
        let b = vec![2, 4, 8, 9];
        assert_eq!(
            union(&a, &b).len(),
            a.len() + b.len() - intersect(&a, &b).len()
        );
        // A = (A \ B) ∪ (A ∩ B)
        assert_eq!(union(&difference(&a, &b), &intersect(&a, &b)), a);
    }
}
