//! A from-scratch point R-tree (Guttman 1984).
//!
//! The Adapted k-CIFP baseline (paper Algorithm 1) indexes candidate and
//! facility positions in two R-trees and issues one IA and one NIB range
//! query per user against each. Only points are indexed (facilities and
//! candidates are stationary), which keeps entries compact while the node
//! layout, quadratic split and STR bulk loading follow the classic design.

mod node;
mod split;

use mc2ls_geo::{Circle, Point, Rect};
use node::{Node, NodeKind};

/// Maximum entries per node before a split.
pub const MAX_ENTRIES: usize = 16;
/// Minimum entries per node after a split (40% fill, Guttman's advice).
pub const MIN_ENTRIES: usize = 6;

/// A point R-tree mapping `u32` ids to positions.
///
/// # Examples
/// ```
/// use mc2ls_geo::{Point, Rect};
/// use mc2ls_index::RTree;
///
/// let tree = RTree::bulk_load(vec![
///     (0, Point::new(1.0, 1.0)),
///     (1, Point::new(5.0, 5.0)),
///     (2, Point::new(9.0, 1.0)),
/// ]);
/// let hits = tree.range_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(6.0, 6.0)));
/// assert_eq!(hits, vec![0, 1]);
/// assert_eq!(tree.nearest(&Point::new(8.0, 0.0)).unwrap().0, 2);
/// ```
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        let root = Node {
            mbr: Rect::point(Point::ORIGIN),
            kind: NodeKind::Leaf(Vec::new()),
        };
        RTree {
            nodes: vec![root],
            root: 0,
            len: 0,
        }
    }

    /// Bulk-loads a tree with Sort-Tile-Recursive packing — the standard way
    /// to index a static point set (all facilities/candidates are known up
    /// front in MC²LS).
    pub fn bulk_load(items: Vec<(u32, Point)>) -> Self {
        if items.is_empty() {
            return RTree::new();
        }
        let len = items.len();
        let mut tree = RTree {
            nodes: Vec::new(),
            root: 0,
            len,
        };
        // Pack leaves with STR, then build upper levels the same way over
        // node centres until a single root remains.
        let mut level: Vec<usize> = tree.pack_leaves(items);
        while level.len() > 1 {
            level = tree.pack_internal(level);
        }
        tree.root = level[0];
        tree
    }

    fn pack_leaves(&mut self, mut items: Vec<(u32, Point)>) -> Vec<usize> {
        let n = items.len();
        let leaves = n.div_ceil(MAX_ENTRIES);
        let slices = (leaves as f64).sqrt().ceil() as usize;
        let per_slice = n.div_ceil(slices);
        items.sort_by(|a, b| a.1.x.total_cmp(&b.1.x));
        let mut out = Vec::with_capacity(leaves);
        for slice in items.chunks_mut(per_slice.max(1)) {
            slice.sort_by(|a, b| a.1.y.total_cmp(&b.1.y));
            for run in slice.chunks(MAX_ENTRIES) {
                let mut mbr = Rect::point(run[0].1);
                for (_, p) in run {
                    mbr.expand_to(p);
                }
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Leaf(run.to_vec()),
                });
                out.push(idx);
            }
        }
        out
    }

    fn pack_internal(&mut self, mut children: Vec<usize>) -> Vec<usize> {
        let n = children.len();
        let parents = n.div_ceil(MAX_ENTRIES);
        let slices = (parents as f64).sqrt().ceil() as usize;
        let per_slice = n.div_ceil(slices);
        children.sort_by(|&a, &b| {
            self.nodes[a]
                .mbr
                .center()
                .x
                .total_cmp(&self.nodes[b].mbr.center().x)
        });
        let mut out = Vec::with_capacity(parents);
        let mut i = 0;
        while i < n {
            let end = (i + per_slice.max(1)).min(n);
            children[i..end].sort_by(|&a, &b| {
                self.nodes[a]
                    .mbr
                    .center()
                    .y
                    .total_cmp(&self.nodes[b].mbr.center().y)
            });
            let mut j = i;
            while j < end {
                let hi = (j + MAX_ENTRIES).min(end);
                let kids: Vec<usize> = children[j..hi].to_vec();
                let mut mbr = self.nodes[kids[0]].mbr;
                for &k in &kids[1..] {
                    mbr = mbr.union(&self.nodes[k].mbr);
                }
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Internal(kids),
                });
                out.push(idx);
                j = hi;
            }
            i = end;
        }
        out
    }

    /// Inserts one point (Guttman insert with quadratic split).
    pub fn insert(&mut self, id: u32, point: Point) {
        if self.len == 0 {
            // Reset the placeholder root MBR to the first real point.
            self.nodes[self.root].mbr = Rect::point(point);
        }
        self.len += 1;
        if let Some(sibling) = self.insert_rec(self.root, id, point) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let mbr = self.nodes[old_root].mbr.union(&self.nodes[sibling].mbr);
            let new_root = self.nodes.len();
            self.nodes.push(Node {
                mbr,
                kind: NodeKind::Internal(vec![old_root, sibling]),
            });
            self.root = new_root;
        }
    }

    /// Recursive insert; returns the index of a new sibling node when the
    /// visited node split.
    fn insert_rec(&mut self, node_idx: usize, id: u32, point: Point) -> Option<usize> {
        self.nodes[node_idx].mbr.expand_to(&point);
        match &self.nodes[node_idx].kind {
            NodeKind::Leaf(_) => {
                let NodeKind::Leaf(entries) = &mut self.nodes[node_idx].kind else {
                    // lint:allow(panic-propagation): the enclosing match arm just proved this node is a leaf
                    unreachable!()
                };
                entries.push((id, point));
                if entries.len() <= MAX_ENTRIES {
                    return None;
                }
                let (a, b) = split::split_leaf(std::mem::take(entries));
                let (mbr_a, entries_a) = a;
                let (mbr_b, entries_b) = b;
                self.nodes[node_idx] = Node {
                    mbr: mbr_a,
                    kind: NodeKind::Leaf(entries_a),
                };
                let sibling = self.nodes.len();
                self.nodes.push(Node {
                    mbr: mbr_b,
                    kind: NodeKind::Leaf(entries_b),
                });
                Some(sibling)
            }
            NodeKind::Internal(children) => {
                // Choose the child needing least area enlargement.
                let mut best = children[0];
                let mut best_enlargement = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for &c in children {
                    let m = &self.nodes[c].mbr;
                    let enlarged = m.union(&Rect::point(point));
                    let enlargement = enlarged.area() - m.area();
                    if enlargement < best_enlargement
                        || (enlargement == best_enlargement && m.area() < best_area)
                    {
                        best = c;
                        best_enlargement = enlargement;
                        best_area = m.area();
                    }
                }
                let new_child = self.insert_rec(best, id, point)?;
                let NodeKind::Internal(children) = &mut self.nodes[node_idx].kind else {
                    // lint:allow(panic-propagation): the enclosing match arm just proved this node is internal
                    unreachable!()
                };
                children.push(new_child);
                if children.len() <= MAX_ENTRIES {
                    return None;
                }
                let kids = std::mem::take(children);
                let (a, b) = split::split_internal(&self.nodes, kids);
                let (mbr_a, kids_a) = a;
                let (mbr_b, kids_b) = b;
                self.nodes[node_idx] = Node {
                    mbr: mbr_a,
                    kind: NodeKind::Internal(kids_a),
                };
                let sibling = self.nodes.len();
                self.nodes.push(Node {
                    mbr: mbr_b,
                    kind: NodeKind::Internal(kids_b),
                });
                Some(sibling)
            }
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no point is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 for a single leaf root).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Internal(children) => {
                    idx = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Calls `f(id, point)` for every entry whose point lies in `rect`
    /// (closed region). This is the `RangeQuery` primitive of Algorithm 1.
    pub fn for_each_in_rect<F: FnMut(u32, Point)>(&self, rect: &Rect, mut f: F) {
        if self.len == 0 {
            return;
        }
        self.query_rec(self.root, rect, &mut f);
    }

    fn query_rec<F: FnMut(u32, Point)>(&self, idx: usize, rect: &Rect, f: &mut F) {
        let node = &self.nodes[idx];
        if !node.mbr.intersects(rect) {
            return;
        }
        match &node.kind {
            NodeKind::Leaf(entries) => {
                for (id, p) in entries {
                    if rect.contains(p) {
                        f(*id, *p);
                    }
                }
            }
            NodeKind::Internal(children) => {
                for &c in children {
                    self.query_rec(c, rect, f);
                }
            }
        }
    }

    /// Ids of all entries inside `rect`, sorted.
    pub fn range_rect(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_rect(rect, |id, _| out.push(id));
        out.sort_unstable();
        out
    }

    /// Ids of all entries inside the circle, sorted (bounding-rect descent +
    /// exact distance filter).
    pub fn range_circle(&self, circle: &Circle) -> Vec<u32> {
        let mut out = Vec::new();
        let bound = circle.bounding_rect();
        self.for_each_in_rect(&bound, |id, p| {
            if circle.contains(&p) {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    /// The entry nearest to `q` (best-first branch-and-bound descent);
    /// `None` on an empty tree. Distance ties break toward the smaller id.
    pub fn nearest(&self, q: &Point) -> Option<(u32, Point)> {
        if self.len == 0 {
            return None;
        }
        use std::collections::BinaryHeap;

        /// Heap item ordered as a min-heap on (distance², kind, id); node
        /// items carry no point, entry items do.
        struct Item {
            dist_sq: f64,
            kind: u8, // 0 = node (expanded before equal-distance entries), 1 = entry
            id: u32,
            point: Option<Point>,
        }
        impl PartialEq for Item {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: BinaryHeap is a max-heap, we need the minimum.
                other
                    .dist_sq
                    .total_cmp(&self.dist_sq)
                    .then(other.kind.cmp(&self.kind))
                    .then(other.id.cmp(&self.id))
            }
        }

        let mut heap: BinaryHeap<Item> = BinaryHeap::new();
        heap.push(Item {
            dist_sq: self.nodes[self.root].mbr.min_distance_sq(q),
            kind: 0,
            id: self.root as u32,
            point: None,
        });
        while let Some(item) = heap.pop() {
            if item.kind == 1 {
                // lint:allow(panic-path): kind == 1 items are constructed with Some(point) in the push below
                return Some((item.id, item.point.expect("entries carry their point")));
            }
            match &self.nodes[item.id as usize].kind {
                NodeKind::Leaf(entries) => {
                    for &(eid, p) in entries {
                        heap.push(Item {
                            dist_sq: q.distance_sq(&p),
                            kind: 1,
                            id: eid,
                            point: Some(p),
                        });
                    }
                }
                NodeKind::Internal(children) => {
                    for &c in children {
                        heap.push(Item {
                            dist_sq: self.nodes[c].mbr.min_distance_sq(q),
                            kind: 0,
                            id: c as u32,
                            point: None,
                        });
                    }
                }
            }
        }
        unreachable!("non-empty tree must yield an entry")
    }
}

impl Default for RTree {
    fn default() -> Self {
        RTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(u32, Point)> {
        (0..n)
            .map(|i| {
                let x = (i % 17) as f64 * 0.7;
                let y = (i / 17) as f64 * 1.3;
                (i as u32, Point::new(x, y))
            })
            .collect()
    }

    fn brute_rect(items: &[(u32, Point)], rect: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = items
            .iter()
            .filter(|(_, p)| rect.contains(p))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert_eq!(
            t.range_rect(&Rect::new(Point::ORIGIN, Point::new(1.0, 1.0))),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = grid_points(500);
        let t = RTree::bulk_load(items.clone());
        assert_eq!(t.len(), 500);
        let rect = Rect::new(Point::new(1.0, 2.0), Point::new(7.5, 20.0));
        assert_eq!(t.range_rect(&rect), brute_rect(&items, &rect));
    }

    #[test]
    fn insert_matches_brute_force() {
        let items = grid_points(300);
        let mut t = RTree::new();
        for (id, p) in &items {
            t.insert(*id, *p);
        }
        assert_eq!(t.len(), 300);
        for rect in [
            Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0)),
            Rect::new(Point::new(5.0, 10.0), Point::new(12.0, 25.0)),
            Rect::new(Point::new(-5.0, -5.0), Point::new(-1.0, -1.0)),
        ] {
            assert_eq!(t.range_rect(&rect), brute_rect(&items, &rect));
        }
    }

    #[test]
    fn insert_and_bulk_agree() {
        let items = grid_points(200);
        let bulk = RTree::bulk_load(items.clone());
        let mut inc = RTree::new();
        for (id, p) in &items {
            inc.insert(*id, *p);
        }
        let rect = Rect::new(Point::new(2.0, 2.0), Point::new(9.0, 18.0));
        assert_eq!(bulk.range_rect(&rect), inc.range_rect(&rect));
    }

    #[test]
    fn circle_query_filters_exactly() {
        let items = grid_points(400);
        let t = RTree::bulk_load(items.clone());
        let c = Circle::new(Point::new(5.0, 10.0), 4.0);
        let got = t.range_circle(&c);
        let mut want: Vec<u32> = items
            .iter()
            .filter(|(_, p)| c.contains(p))
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // The circle result must be a subset of the bounding-rect result.
        let rect_ids = t.range_rect(&c.bounding_rect());
        for id in &got {
            assert!(rect_ids.contains(id));
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = RTree::bulk_load(grid_points(2000));
        // 2000 points at 16/leaf => 125 leaves => height 3.
        assert!(t.height() >= 2 && t.height() <= 4, "height={}", t.height());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let items = grid_points(500);
        let t = RTree::bulk_load(items.clone());
        for q in [
            Point::new(0.0, 0.0),
            Point::new(5.3, 17.1),
            Point::new(-4.0, 40.0),
            Point::new(100.0, -100.0),
        ] {
            let (id, p) = t.nearest(&q).unwrap();
            let best = items
                .iter()
                .map(|(i, pt)| (q.distance_sq(pt), *i, *pt))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .unwrap();
            assert_eq!(q.distance_sq(&p), best.0, "query {q:?}");
            assert_eq!(id, best.1, "query {q:?}");
        }
    }

    #[test]
    fn nearest_on_empty_tree_is_none() {
        assert!(RTree::new().nearest(&Point::ORIGIN).is_none());
    }

    #[test]
    fn nearest_breaks_distance_ties_by_smaller_id() {
        let mut t = RTree::new();
        t.insert(7, Point::new(1.0, 0.0));
        t.insert(3, Point::new(-1.0, 0.0));
        let (id, _) = t.nearest(&Point::ORIGIN).unwrap();
        assert_eq!(id, 3);
    }

    #[test]
    fn duplicate_points_are_kept() {
        let mut t = RTree::new();
        for i in 0..50 {
            t.insert(i, Point::new(1.0, 1.0));
        }
        let r = Rect::new(Point::new(0.5, 0.5), Point::new(1.5, 1.5));
        assert_eq!(t.range_rect(&r).len(), 50);
    }
}
