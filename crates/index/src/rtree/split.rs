//! Guttman's quadratic split for leaf entries and internal children.

use super::node::Node;
use super::MIN_ENTRIES;
use mc2ls_geo::{Point, Rect};

/// One split half: the covering MBR plus the leaf entries assigned to it.
type LeafGroup = (Rect, Vec<(u32, Point)>);

/// Splits an overflowing leaf entry list into two groups by quadratic split.
/// Returns `((mbr_a, entries_a), (mbr_b, entries_b))`.
pub(super) fn split_leaf(entries: Vec<(u32, Point)>) -> (LeafGroup, LeafGroup) {
    let rects: Vec<Rect> = entries.iter().map(|(_, p)| Rect::point(*p)).collect();
    let (ga, gb) = quadratic_partition(&rects);
    let pick = |idxs: &[usize]| -> LeafGroup {
        let picked: Vec<(u32, Point)> = idxs.iter().map(|&i| entries[i]).collect();
        let mut mbr = Rect::point(picked[0].1);
        for (_, p) in &picked {
            mbr.expand_to(p);
        }
        (mbr, picked)
    };
    (pick(&ga), pick(&gb))
}

/// Splits an overflowing internal child list into two groups.
pub(super) fn split_internal(
    nodes: &[Node],
    children: Vec<usize>,
) -> ((Rect, Vec<usize>), (Rect, Vec<usize>)) {
    let rects: Vec<Rect> = children.iter().map(|&c| nodes[c].mbr).collect();
    let (ga, gb) = quadratic_partition(&rects);
    let pick = |idxs: &[usize]| -> (Rect, Vec<usize>) {
        let picked: Vec<usize> = idxs.iter().map(|&i| children[i]).collect();
        let mut mbr = rects[idxs[0]];
        for &i in idxs {
            mbr = mbr.union(&rects[i]);
        }
        (mbr, picked)
    };
    (pick(&ga), pick(&gb))
}

/// Guttman's quadratic partition over item rectangles: pick the seed pair
/// wasting the most area, then repeatedly assign the item with the largest
/// preference difference to the group whose MBR grows least.
fn quadratic_partition(rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);

    // Seed selection: maximise dead space of the pair MBR.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = rects[seed_a];
    let mut mbr_b = rects[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while !remaining.is_empty() {
        // If one group must absorb the rest to reach the minimum, do so.
        if group_a.len() + remaining.len() == MIN_ENTRIES {
            for &i in &remaining {
                group_a.push(i);
            }
            break;
        }
        if group_b.len() + remaining.len() == MIN_ENTRIES {
            for &i in &remaining {
                group_b.push(i);
            }
            break;
        }
        // Pick the item with the greatest enlargement preference.
        let (mut best_pos, mut best_diff) = (0, f64::NEG_INFINITY);
        for (pos, &i) in remaining.iter().enumerate() {
            let da = mbr_a.union(&rects[i]).area() - mbr_a.area();
            let db = mbr_b.union(&rects[i]).area() - mbr_b.area();
            let diff = (da - db).abs();
            if diff > best_diff {
                best_diff = diff;
                best_pos = pos;
            }
        }
        let i = remaining.swap_remove(best_pos);
        let da = mbr_a.union(&rects[i]).area() - mbr_a.area();
        let db = mbr_b.union(&rects[i]).area() - mbr_b.area();
        let to_a = match da.partial_cmp(&db) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => group_a.len() <= group_b.len(),
        };
        if to_a {
            group_a.push(i);
            mbr_a = mbr_a.union(&rects[i]);
        } else {
            group_b.push(i);
            mbr_b = mbr_b.union(&rects[i]);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_items_once() {
        let rects: Vec<Rect> = (0..20)
            .map(|i| Rect::point(Point::new(i as f64, (i * 7 % 5) as f64)))
            .collect();
        let (a, b) = quadratic_partition(&rects);
        assert_eq!(a.len() + b.len(), rects.len());
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..rects.len()).collect::<Vec<_>>());
    }

    #[test]
    fn partition_respects_minimum_fill() {
        let rects: Vec<Rect> = (0..17)
            .map(|i| Rect::point(Point::new(i as f64, 0.0)))
            .collect();
        let (a, b) = quadratic_partition(&rects);
        assert!(a.len() >= MIN_ENTRIES || b.len() >= MIN_ENTRIES);
        assert!(a.len().min(b.len()) >= MIN_ENTRIES.min(rects.len() / 2));
    }

    #[test]
    fn split_leaf_mbrs_cover_groups() {
        let entries: Vec<(u32, Point)> = (0..17)
            .map(|i| (i, Point::new((i % 9) as f64, (i / 3) as f64)))
            .collect();
        let ((mbr_a, ea), (mbr_b, eb)) = split_leaf(entries.clone());
        assert_eq!(ea.len() + eb.len(), entries.len());
        for (_, p) in &ea {
            assert!(mbr_a.contains(p));
        }
        for (_, p) in &eb {
            assert!(mbr_b.contains(p));
        }
    }
}
