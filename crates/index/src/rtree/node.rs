use mc2ls_geo::{Point, Rect};

/// An R-tree node: the covering MBR plus either child node indices or point
/// entries. Nodes live in the tree's arena vector; children are indices into
/// it, which keeps the structure allocation-friendly and clone-cheap.
#[derive(Debug, Clone)]
pub(super) struct Node {
    pub mbr: Rect,
    pub kind: NodeKind,
}

#[derive(Debug, Clone)]
pub(super) enum NodeKind {
    /// Child node indices in the arena.
    Internal(Vec<usize>),
    /// `(id, position)` point entries.
    Leaf(Vec<(u32, Point)>),
}
