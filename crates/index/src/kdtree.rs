//! A static kd-tree over points (median split, bulk built).
//!
//! Another classic comparator for the indexing-cost experiments (Table II):
//! kd-trees partition by alternating coordinate medians rather than by
//! space (quad-tree) or by data rectangles (R-tree). Supports rectangular
//! range queries and nearest-neighbour search.

use mc2ls_geo::{Point, Rect};

/// Implicit-layout kd-tree node: the point at the split plus child indices.
#[derive(Debug, Clone)]
struct KdNode {
    id: u32,
    point: Point,
    left: Option<u32>,
    right: Option<u32>,
}

/// A bulk-built kd-tree mapping `u32` ids to positions.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    root: Option<u32>,
}

impl KdTree {
    /// Builds a balanced kd-tree by recursive median split.
    pub fn build(mut items: Vec<(u32, Point)>) -> Self {
        let mut tree = KdTree {
            nodes: Vec::with_capacity(items.len()),
            root: None,
        };
        tree.root = tree.build_rec(&mut items, 0);
        tree
    }

    fn build_rec(&mut self, items: &mut [(u32, Point)], depth: usize) -> Option<u32> {
        if items.is_empty() {
            return None;
        }
        let axis_x = depth.is_multiple_of(2);
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| {
            if axis_x {
                a.1.x.total_cmp(&b.1.x).then(a.0.cmp(&b.0))
            } else {
                a.1.y.total_cmp(&b.1.y).then(a.0.cmp(&b.0))
            }
        });
        let (id, point) = items[mid];
        let idx = self.nodes.len() as u32;
        self.nodes.push(KdNode {
            id,
            point,
            left: None,
            right: None,
        });
        let (lo, rest) = items.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = self.build_rec(lo, depth + 1);
        let right = self.build_rec(hi, depth + 1);
        let node = &mut self.nodes[idx as usize];
        node.left = left;
        node.right = right;
        Some(idx)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no point is indexed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of entries inside `rect`, sorted.
    pub fn range_rect(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_rec(root, rect, 0, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_rec(&self, idx: u32, rect: &Rect, depth: usize, out: &mut Vec<u32>) {
        let node = &self.nodes[idx as usize];
        if rect.contains(&node.point) {
            out.push(node.id);
        }
        let axis_x = depth.is_multiple_of(2);
        let coord = if axis_x { node.point.x } else { node.point.y };
        let (lo, hi) = if axis_x {
            (rect.min.x, rect.max.x)
        } else {
            (rect.min.y, rect.max.y)
        };
        if let Some(left) = node.left {
            if lo <= coord {
                self.range_rec(left, rect, depth + 1, out);
            }
        }
        if let Some(right) = node.right {
            if hi >= coord {
                self.range_rec(right, rect, depth + 1, out);
            }
        }
    }

    /// The entry nearest to `q`; ties break toward the smaller id.
    pub fn nearest(&self, q: &Point) -> Option<(u32, Point)> {
        let root = self.root?;
        let mut best: Option<(f64, u32, Point)> = None;
        self.nearest_rec(root, q, 0, &mut best);
        best.map(|(_, id, p)| (id, p))
    }

    fn nearest_rec(&self, idx: u32, q: &Point, depth: usize, best: &mut Option<(f64, u32, Point)>) {
        let node = &self.nodes[idx as usize];
        let d = q.distance_sq(&node.point);
        let better = match best {
            None => true,
            Some((bd, bid, _)) => d < *bd || (d == *bd && node.id < *bid),
        };
        if better {
            *best = Some((d, node.id, node.point));
        }
        let axis_x = depth.is_multiple_of(2);
        let delta = if axis_x {
            q.x - node.point.x
        } else {
            q.y - node.point.y
        };
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, q, depth + 1, best);
        }
        // Cross the split plane only when it could host something closer.
        if let Some(f) = far {
            if best.is_none_or(|(bd, _, _)| delta * delta <= bd) {
                self.nearest_rec(f, q, depth + 1, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<(u32, Point)> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f64 / 10.0;
                let y = ((i * 40503) % 1000) as f64 / 10.0;
                (i as u32, Point::new(x, y))
            })
            .collect()
    }

    fn brute_range(items: &[(u32, Point)], rect: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = items
            .iter()
            .filter(|(_, p)| rect.contains(p))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn range_matches_brute_force() {
        let items = scatter(700);
        let t = KdTree::build(items.clone());
        assert_eq!(t.len(), 700);
        for rect in [
            Rect::new(Point::new(10.0, 10.0), Point::new(50.0, 70.0)),
            Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            Rect::new(Point::new(-5.0, -5.0), Point::new(-1.0, -1.0)),
        ] {
            assert_eq!(t.range_rect(&rect), brute_range(&items, &rect));
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let items = scatter(400);
        let t = KdTree::build(items.clone());
        for q in [
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(120.0, -3.0),
        ] {
            let (id, p) = t.nearest(&q).unwrap();
            let want = items
                .iter()
                .map(|(i, pt)| (q.distance_sq(pt), *i, *pt))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .unwrap();
            assert_eq!(q.distance_sq(&p), want.0, "q={q:?}");
            assert_eq!(id, want.1, "q={q:?}");
        }
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = KdTree::build(vec![]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::ORIGIN).is_none());
        assert!(t
            .range_rect(&Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)))
            .is_empty());
    }

    #[test]
    fn duplicates_are_kept() {
        let items: Vec<(u32, Point)> = (0..40).map(|i| (i, Point::new(2.0, 2.0))).collect();
        let t = KdTree::build(items);
        let hits = t.range_rect(&Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0)));
        assert_eq!(hits.len(), 40);
        assert_eq!(t.nearest(&Point::new(2.1, 2.0)).unwrap().0, 0);
    }

    #[test]
    fn balanced_depth() {
        // A balanced kd-tree over n points has depth ~log2(n): verify via
        // nearest-path length indirectly by checking construction does not
        // stack-overflow on large inputs and queries stay correct.
        let items = scatter(20_000);
        let t = KdTree::build(items.clone());
        let (id, _) = t.nearest(&Point::new(33.0, 44.0)).unwrap();
        let want = items
            .iter()
            .map(|(i, pt)| (Point::new(33.0, 44.0).distance_sq(pt), *i))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .unwrap();
        assert_eq!(id, want.1);
    }
}
