use mc2ls_geo::{Point, Square};

/// One IQuad-tree node (paper §V-C).
///
/// The paper's entry forms are `⟨rect, 𝒫, Ω_inf, Ω_vrf⟩` for leaves and
/// `⟨rect, 𝒫, Ω_inf, visited⟩` for non-leaves. We keep one struct:
///
/// * `𝒫` is represented as [`IqtNode::counts`] — per-user **position
///   counts** inside the node square, sorted by user id. The IS rule
///   (Lemma 2) only ever needs counts, so non-leaf nodes do not replicate
///   point coordinates up the tree (the paper stores position sets at every
///   level; counts preserve the exact semantics at a fraction of the
///   memory).
/// * Leaves additionally keep the exact positions ([`IqtNode::points`]) so
///   the NIR rounded-square query can test partial leaf overlap exactly.
/// * `Ω_inf`/`Ω_vrf` are lazily computed on first traversal; `Option` doubles
///   as the paper's `visited` flag, which is what makes the index
///   batch-wise: every other abstract facility in the same node reuses them.
#[derive(Debug, Clone)]
pub(super) struct IqtNode {
    /// The node's square region.
    pub square: Square,
    /// Level in the tree: 0 = root, `depth` = leaf.
    pub level: usize,
    /// Sparse children (quadrant order SW, SE, NW, NE); `None` when the
    /// quadrant holds no position or the node is a leaf.
    pub children: [Option<u32>; 4],
    /// `𝒫`: `(user, #positions inside square)`, sorted by user id.
    pub counts: Vec<(u32, u32)>,
    /// Leaf only: the exact positions inside the square, grouped arbitrarily.
    pub points: Vec<(u32, Point)>,
    /// `Ω_inf`, computed on first visit (`None` = not yet visited).
    pub omega_inf: Option<Vec<u32>>,
    /// `Ω_vrf` (leaf only), computed on first visit.
    pub omega_vrf: Option<Vec<u32>>,
}

impl IqtNode {
    pub(super) fn is_leaf(&self) -> bool {
        self.children.iter().all(Option::is_none)
    }

    /// User ids present in this node (sorted, from `counts`).
    pub(super) fn user_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.counts.iter().map(|&(u, _)| u)
    }
}
