//! Byte codec for [`IQuadTree`] — the `IQTR` section payload of the
//! `.mc2s` snapshot container.
//!
//! The encoding pins the *built* shape of the tree: node squares, levels,
//! sparse child links (`u32::MAX` = no child), per-user position counts and
//! leaf position lists, plus the derived scalars (`depth`, `r_max`,
//! `n_users`, `NIR`, the per-level `⌈η⌉` table). The lazy traversal caches
//! (`Ω_inf`/`Ω_vrf`) and the dedup stamp are **runtime state** and are not
//! serialized — a loaded tree starts cold, exactly like a freshly built
//! one, and re-derives them on first traversal.
//!
//! Decoding re-checks every structural invariant the traversal code relies
//! on (child links strictly forward ⇒ acyclic, levels consistent, user ids
//! in range, counts consistent with children/points), so a corrupt snapshot
//! yields a typed [`CodecError`] instead of an out-of-bounds panic or an
//! infinite recursion.

use super::node::IqtNode;
use super::{IQuadTree, Stamp};
use mc2ls_geo::{ByteReader, ByteWriter, CodecError, Point, Square};

/// Child-slot sentinel for "no child" (node indices are dense and far
/// below `u32::MAX`).
const NO_CHILD: u32 = u32::MAX;

impl IQuadTree {
    /// Encodes the built tree into the pinned little-endian byte layout
    /// used by the `.mc2s` snapshot format. Lazy caches are not encoded,
    /// so the bytes depend only on the indexed data — encoding is
    /// deterministic across traversal histories.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64 + 64 * self.nodes.len());
        w.put_f64(self.root_square.origin.x);
        w.put_f64(self.root_square.origin.y);
        w.put_f64(self.root_square.side);
        w.put_len(self.depth);
        w.put_len(self.r_max);
        w.put_len(self.n_users);
        match self.nir {
            Some(nir) => {
                w.put_u8(1);
                w.put_f64(nir);
            }
            None => w.put_u8(0),
        }
        w.put_len(self.eta_by_level.len());
        for eta in &self.eta_by_level {
            match eta {
                Some(e) => {
                    w.put_u8(1);
                    w.put_len(*e);
                }
                None => w.put_u8(0),
            }
        }
        w.put_len(self.nodes.len());
        for node in &self.nodes {
            w.put_f64(node.square.origin.x);
            w.put_f64(node.square.origin.y);
            w.put_f64(node.square.side);
            w.put_len(node.level);
            for child in node.children {
                w.put_u32(child.unwrap_or(NO_CHILD));
            }
            w.put_len(node.counts.len());
            for &(u, c) in &node.counts {
                w.put_u32(u);
                w.put_u32(c);
            }
            w.put_len(node.points.len());
            for &(u, p) in &node.points {
                w.put_u32(u);
                w.put_f64(p.x);
                w.put_f64(p.y);
            }
        }
        w.into_bytes()
    }

    /// Decodes [`IQuadTree::to_bytes`] output, re-checking the structural
    /// invariants traversal relies on. The loaded tree carries fresh
    /// (empty) caches and a fresh dedup stamp.
    ///
    /// # Errors
    /// [`CodecError::Truncated`]/[`CodecError::BadLength`] on short or
    /// length-corrupt input, [`CodecError::Invalid`] when a decoded field
    /// violates a tree invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let root_square = read_square(&mut r)?;
        let depth = read_usize(&mut r, "IQuadTree.depth")?;
        if depth > 31 {
            return Err(CodecError::Invalid("depth exceeds the Morton budget"));
        }
        let r_max = read_usize(&mut r, "IQuadTree.r_max")?;
        let n_users = read_usize(&mut r, "IQuadTree.n_users")?;
        let nir = match r.get_u8()? {
            0 => None,
            1 => {
                let v = r.get_f64()?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(CodecError::Invalid("NIR must be finite and positive"));
                }
                Some(v)
            }
            _ => return Err(CodecError::Invalid("NIR flag must be 0 or 1")),
        };
        let n_eta = r.get_len("IQuadTree.eta_by_level", 1)?;
        if n_eta != depth + 1 {
            return Err(CodecError::Invalid("eta table must have depth + 1 entries"));
        }
        let mut eta_by_level = Vec::with_capacity(n_eta);
        for _ in 0..n_eta {
            eta_by_level.push(match r.get_u8()? {
                0 => None,
                1 => Some(read_usize(&mut r, "IQuadTree.eta")?),
                _ => return Err(CodecError::Invalid("eta flag must be 0 or 1")),
            });
        }

        // 44 bytes = the fixed prefix of a node (square + level + children).
        let n_nodes = r.get_len("IQuadTree.nodes", 44)?;
        if n_nodes == 0 {
            return Err(CodecError::Invalid("tree must have a root node"));
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for idx in 0..n_nodes {
            let square = read_square(&mut r)?;
            let level = read_usize(&mut r, "IqtNode.level")?;
            if level > depth {
                return Err(CodecError::Invalid("node level below the leaf level"));
            }
            let mut children = [None; 4];
            for slot in &mut children {
                let c = r.get_u32()?;
                if c != NO_CHILD {
                    // Child links point strictly forward (build order), so
                    // bounded indices imply an acyclic, finite hierarchy.
                    if c as usize >= n_nodes || c as usize <= idx {
                        return Err(CodecError::Invalid("child index out of order"));
                    }
                    *slot = Some(c);
                }
            }
            let n_counts = r.get_len("IqtNode.counts", 8)?;
            let mut counts = Vec::with_capacity(n_counts);
            for _ in 0..n_counts {
                let u = r.get_u32()?;
                let c = r.get_u32()?;
                if u as usize >= n_users {
                    return Err(CodecError::Invalid("count entry user out of range"));
                }
                if c == 0 {
                    return Err(CodecError::Invalid("zero count entry"));
                }
                if counts.last().is_some_and(|&(last, _)| last >= u) {
                    return Err(CodecError::Invalid("counts not sorted by user id"));
                }
                counts.push((u, c));
            }
            let n_points = r.get_len("IqtNode.points", 20)?;
            if level < depth && n_points != 0 {
                return Err(CodecError::Invalid("inner node stores points"));
            }
            let mut points = Vec::with_capacity(n_points);
            for _ in 0..n_points {
                let u = r.get_u32()?;
                if u as usize >= n_users {
                    return Err(CodecError::Invalid("leaf position user out of range"));
                }
                points.push((u, Point::new(r.get_f64()?, r.get_f64()?)));
            }
            nodes.push(IqtNode {
                square,
                level,
                children,
                counts,
                points,
                omega_inf: None,
                omega_vrf: None,
            });
        }
        r.expect_end()?;

        // Cross-node pass: child levels step by one, and every node's count
        // total matches its children (inner) or its stored points (leaf).
        for node in &nodes {
            let own_total: u64 = node.counts.iter().map(|&(_, c)| u64::from(c)).sum();
            if node.level == depth {
                if !node.is_leaf() {
                    return Err(CodecError::Invalid("leaf-level node with children"));
                }
                if own_total != node.points.len() as u64 {
                    return Err(CodecError::Invalid("leaf counts disagree with points"));
                }
                // Per-user multiplicities must match exactly: traversal
                // trusts counts for the IS rule and points for NIR.
                let mut by_user = std::collections::BTreeMap::new();
                for &(u, _) in &node.points {
                    *by_user.entry(u).or_insert(0u64) += 1;
                }
                if by_user.len() != node.counts.len()
                    || node
                        .counts
                        .iter()
                        .any(|&(u, c)| by_user.get(&u) != Some(&u64::from(c)))
                {
                    return Err(CodecError::Invalid("leaf counts disagree with points"));
                }
            } else {
                let mut child_total = 0u64;
                for child in node.children.into_iter().flatten() {
                    let child = &nodes[child as usize];
                    if child.level != node.level + 1 {
                        return Err(CodecError::Invalid("child skips a level"));
                    }
                    child_total += child.counts.iter().map(|&(_, c)| u64::from(c)).sum::<u64>();
                }
                if own_total != child_total {
                    return Err(CodecError::Invalid("node counts disagree with children"));
                }
            }
        }

        Ok(IQuadTree {
            nodes,
            root_square,
            depth,
            eta_by_level,
            nir,
            r_max,
            n_users,
            seen: std::sync::Mutex::new(Stamp {
                mark: vec![0; n_users],
                epoch: 0,
            }),
            last_removed_mbr: None,
        })
    }
}

fn read_square(r: &mut ByteReader<'_>) -> Result<Square, CodecError> {
    let x = r.get_f64()?;
    let y = r.get_f64()?;
    let side = r.get_f64()?;
    if !(x.is_finite() && y.is_finite() && side.is_finite() && side >= 0.0) {
        return Err(CodecError::Invalid("square must be finite with side >= 0"));
    }
    Ok(Square::new(Point::new(x, y), side))
}

fn read_usize(r: &mut ByteReader<'_>, what: &'static str) -> Result<usize, CodecError> {
    let v = r.get_u64()?;
    usize::try_from(v).map_err(|_| CodecError::BadLength { what, claimed: v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn users_grid() -> Vec<MovingUser> {
        (0..30)
            .map(|i| {
                let cx = (i % 6) as f64 * 3.0;
                let cy = (i / 6) as f64 * 3.0;
                MovingUser::new(
                    (0..5)
                        .map(|j| Point::new(cx + 0.1 * j as f64, cy + 0.07 * j as f64))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn byte_codec_round_trips_the_built_tree() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let tree = IQuadTree::build(&users, &pf, 0.5, 2.0);
        let bytes = tree.to_bytes();
        let loaded = IQuadTree::from_bytes(&bytes).expect("round trip");
        loaded.validate();
        assert_eq!(loaded.stats(), tree.stats());
        assert_eq!(loaded.nir(), tree.nir());
        assert_eq!(loaded.r_max(), tree.r_max());
        assert_eq!(loaded.eta_table(), tree.eta_table());
        // Re-encoding is bit-identical: the codec pins a canonical layout.
        assert_eq!(loaded.to_bytes(), bytes);
        // Traversal outcomes are identical for probes inside and outside
        // the indexed region.
        let mut a = tree;
        let mut b = loaded;
        for v in [
            Point::new(0.2, 0.2),
            Point::new(7.5, 7.5),
            Point::new(15.0, 12.0),
            Point::new(-3.0, -3.0),
        ] {
            let want = a.traverse(&v);
            let got = b.traverse(&v);
            assert_eq!(got.influenced, want.influenced, "probe {v:?}");
            assert_eq!(got.to_verify, want.to_verify, "probe {v:?}");
        }
    }

    #[test]
    fn encoding_ignores_traversal_caches() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let mut tree = IQuadTree::build(&users, &pf, 0.5, 2.0);
        let cold = tree.to_bytes();
        let _ = tree.traverse(&Point::new(0.2, 0.2));
        let _ = tree.traverse(&Point::new(7.5, 7.5));
        assert_eq!(tree.to_bytes(), cold, "caches must not leak into bytes");
    }

    #[test]
    fn byte_codec_rejects_corruption_without_panicking() {
        let users: Vec<MovingUser> = (0..4)
            .map(|i| {
                MovingUser::new(vec![
                    Point::new(i as f64, 0.0),
                    Point::new(i as f64 + 0.1, 0.2),
                ])
            })
            .collect();
        let pf = Sigmoid::paper_default();
        let tree = IQuadTree::build(&users, &pf, 0.5, 2.0);
        let bytes = tree.to_bytes();
        for cut in 0..bytes.len() {
            assert!(IQuadTree::from_bytes(&bytes[..cut]).is_err(), "{cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(IQuadTree::from_bytes(&trailing).is_err());
        // A cycle-forming child index is rejected (slot 0 of the root's
        // child array lives right after the root's square + level).
        let mut cyclic = bytes.clone();
        let mut root_children = 24 + 8 + 8 + 8 + 1; // header up to the NIR flag
        if tree.nir.is_some() {
            root_children += 8;
        }
        root_children += 8; // eta table length prefix
        for eta in &tree.eta_by_level {
            root_children += 1 + if eta.is_some() { 8 } else { 0 };
        }
        root_children += 8 + 24 + 8; // node count, root square, root level
        cyclic[root_children..root_children + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(IQuadTree::from_bytes(&cyclic).is_err());
        // Flipping the depth invalidates the eta table length.
        let mut bad_depth = bytes;
        bad_depth[24] ^= 0xFF;
        assert!(IQuadTree::from_bytes(&bad_depth).is_err());
    }
}
